#include "dist/dist_sim.h"

#include "obs/provenance.h"
#include "sim/local_routes.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <random>
#include <thread>

namespace hoyan {
namespace {

// Bucket upper bounds for the per-phase subtask duration histograms
// (`dist.subtask_duration_ms.<phase>`): 0.1ms .. 30s, log-spaced.
std::vector<double> subtaskDurationBoundsMs() {
  return {0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
          1000, 2500, 5000, 10000, 30000};
}

// Deterministic per-(subtask, attempt) crash decision for fault injection.
bool injectCrash(const DistSimOptions& options, const std::string& id, int attempt) {
  if (options.workerFailureProbability <= 0) return false;
  const size_t h = std::hash<std::string>{}(id) ^ (attempt * 0x9e3779b97f4a7c15ULL) ^
                   options.failureSeed;
  std::mt19937_64 rng(h);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng) < options.workerFailureProbability;
}

// A subtask descriptor as pushed onto the MQ: references to the input blob
// and the network snapshot are implicit (shared model), matching the paper's
// metadata message.
struct SubtaskMessage {
  std::string id;
  enum class Kind { kRouteInputs, kLocalRoutes, kTrafficInputs } kind;
  int attempt = 1;
};

size_t approxRouteBytes(size_t routes) { return routes * 96; }
size_t approxRibBytes(const NetworkRibs& ribs) { return ribs.routeCount() * 96; }
size_t approxFlowBytes(size_t flows) { return flows * 48; }

}  // namespace

DistributedSimulator::DistributedSimulator(const NetworkModel& model,
                                           DistSimOptions options)
    : model_(model), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.routeSubtasks == 0) options_.routeSubtasks = 1;
  if (options_.trafficSubtasks == 0) options_.trafficSubtasks = 1;
  telemetry_ = options_.telemetry ? options_.telemetry : obs::Telemetry::global();
  if (!telemetry_) telemetry_ = &obs::Telemetry::disabled();
  registry_ = options_.runRegistry ? options_.runRegistry : obs::RunRegistry::global();
  store_ = options_.store ? options_.store : &ownStore_;
  obs::MetricsRegistry& metrics = telemetry_->metrics();
  store_->bindTelemetry(
      &metrics.gauge("store.blobs", "Live blobs in the object store."),
      &metrics.gauge("store.live_bytes", "Bytes held by live object-store blobs."),
      &metrics.counter("store.bytes_read", "Bytes read from the object store."),
      &metrics.counter("store.bytes_written", "Bytes written to the object store."));
}

DistRouteResult DistributedSimulator::runRouteSimulation(
    std::span<const InputRoute> inputs) {
  obs::Telemetry& tel = *telemetry_;
  obs::Span taskSpan = tel.tracer().span("route.task", "dist");
  taskSpan.arg("inputs", std::to_string(inputs.size()));
  tel.log().info("route.task.start", {{"inputs", std::to_string(inputs.size())},
                                      {"workers", std::to_string(options_.workers)}});
  DistRouteResult result;
  routeResultKeys_.clear();
  // Master-side provenance sink (same resolution as the engine: explicit
  // option, else the process-global --explain hook). Subtasks record into
  // private recorders; the master appends them in subtask order below, so the
  // merged event log is identical for every worker count.
  obs::ProvenanceRecorder* prov = options_.routeOptions.provenance
                                      ? options_.routeOptions.provenance
                                      : obs::ProvenanceRecorder::global();
  if (prov && !prov->enabled()) prov = nullptr;
  // Result cache: recording runs participate too. Every executed subtask
  // stores its compressed event log under `<result key>#prov`, so a later
  // hit *replays* the original execution's events at merge time. A hit is
  // only served when a blob recorded under the same filter/caps is resident;
  // otherwise the subtask re-runs (never replaying mismatched events).
  SubtaskResultCache* cache = options_.cache;
  obs::RunJournal& journal = tel.journal();
  const uint64_t provFp =
      prov ? obs::provenanceOptionsFingerprint(prov->options()) : 0;
  // True when serving a hit on `resultKey` would not lose or corrupt this
  // run's provenance. A missing *result* blob is a plain miss, not a bypass.
  const auto provReplayable = [&](const std::string& resultKey) {
    if (!prov) return true;
    if (!store_->contains(resultKey)) return true;
    const std::string provKey = resultKey + "#prov";
    return store_->contains(provKey) &&
           store_->get<obs::CompressedRouteEvents>(provKey)->filterFp == provFp;
  };

  // --- master: prepare subtasks -------------------------------------------
  journal.phaseBegin("route.split");
  if (registry_) registry_->phase("route.split");
  obs::Span splitSpan = tel.tracer().span("route.split", "dist");
  // The sorted order is a pure function of the input set, so an unchanged set
  // reuses the previous run's copy instead of re-sorting (ordering strategy
  // only — the random shuffle is seeded per run).
  SplitPlanCache* splitCache =
      options_.strategy == SplitStrategy::kOrdering ? options_.splitCache : nullptr;
  std::shared_ptr<const std::vector<InputRoute>> orderedShared =
      splitCache ? splitCache->cachedRouteOrder(inputs) : nullptr;
  std::vector<InputRoute> orderedOwned;
  if (!orderedShared) {
    orderedOwned.assign(inputs.begin(), inputs.end());
    if (options_.strategy == SplitStrategy::kOrdering) {
      // Order by the last IP address of the prefix; keep same-prefix routes
      // adjacent (§3.2 — done offline by the input-route building service).
      std::stable_sort(orderedOwned.begin(), orderedOwned.end(),
                       [](const InputRoute& a, const InputRoute& b) {
                         const IpAddress lastA = a.route.prefix.lastAddress();
                         const IpAddress lastB = b.route.prefix.lastAddress();
                         if (!(lastA == lastB)) return lastA < lastB;
                         return a.route.prefix < b.route.prefix;
                       });
    } else {
      std::mt19937_64 rng(options_.failureSeed * 7919 + 13);
      std::shuffle(orderedOwned.begin(), orderedOwned.end(), rng);
    }
    if (splitCache) {
      orderedShared =
          std::make_shared<const std::vector<InputRoute>>(std::move(orderedOwned));
      splitCache->storeRouteOrder(orderedShared);
    }
  }
  const std::span<const InputRoute> ordered =
      orderedShared ? std::span<const InputRoute>(*orderedShared)
                    : std::span<const InputRoute>(orderedOwned);

  const size_t subtaskCount = std::min(options_.routeSubtasks,
                                       std::max<size_t>(ordered.size(), 1));
  MessageQueue<SubtaskMessage> queue;
  queue.bindTelemetry(
      &tel.metrics().gauge("mq.depth", "Subtask messages queued, not yet claimed."),
      &tel.metrics().histogram("mq.wait_seconds", {},
                               "Seconds a subtask message waited in the queue."));
  std::vector<std::string> subtaskIds;
  size_t cursor = 0;
  for (size_t i = 0; i < subtaskCount; ++i) {
    const size_t begin = cursor;
    size_t end = std::max(begin, ordered.size() * (i + 1) / subtaskCount);
    if (i + 1 == subtaskCount) end = ordered.size();
    // Keep routes with the same prefix in the same subtask.
    while (end > begin && end < ordered.size() &&
           ordered[end].route.prefix == ordered[end - 1].route.prefix)
      ++end;
    cursor = end;
    if (begin >= end) continue;
    const std::span<const InputRoute> slice(ordered.data() + begin, end - begin);
    SubtaskRecord record;
    record.id = "route-" + std::to_string(subtaskIds.size());
    record.inputKey = options_.keyPrefix + record.id + "/input";
    record.resultKey = options_.keyPrefix + record.id + "/result";
    // Record the address range the subtask's routes cover (§3.2).
    IpRange range{slice.front().route.prefix.firstAddress(),
                  slice.front().route.prefix.lastAddress()};
    for (const InputRoute& input : slice) range.extend(input.route.prefix);
    record.coverage = range;
    if (cache) {
      record.resultKey = cache->routeResultKey(slice, record.coverage);
      const bool provOk = provReplayable(record.resultKey);
      if (!provOk) {
        cache->noteBypass();
        journal.cacheBypass("prov_filter_mismatch", record.id, record.resultKey);
        if (registry_) registry_->cacheBypass();
      }
      if (provOk && cache->lookup(record.resultKey)) {
        // Served from the store at merge time — a cache read, not sim work.
        // The chunk is never materialized: nobody will load its inputs.
        journal.cacheHit("route", record.id, record.resultKey);
        if (registry_) {
          registry_->cacheHit();
          registry_->subtaskCached();
        }
        record.status = SubtaskStatus::kSucceeded;
        record.attempts = 0;
        record.fromCache = true;
        db_.upsert(std::move(record));
        subtaskIds.push_back("route-" + std::to_string(subtaskIds.size()));
        ++result.cacheHits;
        continue;
      }
      if (provOk) {
        journal.cacheMiss("route", record.id, record.resultKey);
        if (registry_) registry_->cacheMiss();
      }
    }
    store_->put(record.inputKey,
                std::vector<InputRoute>(slice.begin(), slice.end()),
                approxRouteBytes(end - begin));
    db_.upsert(record);
    queue.push(SubtaskMessage{record.id, SubtaskMessage::Kind::kRouteInputs, 1});
    journal.subtaskEnqueue("route", record.id);
    if (registry_) registry_->subtaskEnqueued();
    subtaskIds.push_back(record.id);
  }
  // The dedicated local-routes subtask (direct/static/IS-IS).
  {
    SubtaskRecord record;
    record.id = "route-local";
    record.resultKey = cache ? cache->localRoutesResultKey()
                             : options_.keyPrefix + record.id + "/result";
    bool provOk = true;
    if (cache) {
      provOk = provReplayable(record.resultKey);
      if (!provOk) {
        cache->noteBypass();
        journal.cacheBypass("prov_filter_mismatch", record.id, record.resultKey);
        if (registry_) registry_->cacheBypass();
      }
    }
    if (cache && provOk && cache->lookup(record.resultKey)) {
      journal.cacheHit("route", record.id, record.resultKey);
      if (registry_) {
        registry_->cacheHit();
        registry_->subtaskCached();
      }
      record.status = SubtaskStatus::kSucceeded;
      record.attempts = 0;
      record.fromCache = true;
      db_.upsert(std::move(record));
      ++result.cacheHits;
    } else {
      if (cache && provOk) {
        journal.cacheMiss("route", record.id, record.resultKey);
        if (registry_) registry_->cacheMiss();
      }
      db_.upsert(record);
      queue.push(SubtaskMessage{record.id, SubtaskMessage::Kind::kLocalRoutes, 1});
      journal.subtaskEnqueue("route", record.id);
      if (registry_) registry_->subtaskEnqueued();
    }
    subtaskIds.push_back("route-local");
  }
  splitSpan.arg("subtasks", std::to_string(subtaskIds.size()));
  splitSpan.finish();
  result.splitSeconds = splitSpan.seconds();
  journal.phaseEnd("route.split", splitSpan.seconds());
  tel.metrics().counter("dist.route.subtasks").add(subtaskIds.size());

  // --- workers --------------------------------------------------------------
  std::atomic<size_t> remaining{subtaskIds.size() - result.cacheHits};
  if (remaining.load() == 0) queue.close();  // Everything came from the cache.
  std::atomic<size_t> retries{0};
  std::atomic<bool> failed{false};
  std::mutex statsMutex;
  obs::Counter& retryCounter = tel.metrics().counter(
      "dist.retries", "Subtask attempts re-enqueued after a worker crash.");
  obs::Counter& completedCounter = tel.metrics().counter("dist.subtasks.completed");
  obs::Counter& crashCounter = tel.metrics().counter("dist.subtasks.crashed");
  obs::Counter& exhaustedCounter = tel.metrics().counter("dist.subtask_exhausted");
  obs::Histogram& subtaskSeconds = tel.metrics().histogram("dist.subtask_seconds");
  obs::Histogram& subtaskDurationMs = tel.metrics().histogram(
      "dist.subtask_duration_ms.route", subtaskDurationBoundsMs());
  const auto workerLoop = [&](int workerId) {
    while (auto message = queue.pop()) {
      obs::Span subtaskSpan = tel.tracer().span("route.subtask", "dist");
      subtaskSpan.arg("id", message->id);
      subtaskSpan.arg("attempt", std::to_string(message->attempt));
      journal.subtaskStart("route", message->id, message->attempt, workerId);
      if (registry_) registry_->subtaskStarted(workerId, message->id);
      db_.update(message->id, [&](SubtaskRecord& r) {
        r.status = SubtaskStatus::kRunning;
        r.attempts = message->attempt;
      });
      if (injectCrash(options_, message->id, message->attempt)) {
        // The working server dies mid-subtask; the master re-queues (§3.2).
        subtaskSpan.arg("outcome", "crashed");
        crashCounter.add(1);
        if (registry_) registry_->subtaskCrashed(workerId);
        db_.update(message->id,
                   [](SubtaskRecord& r) { r.status = SubtaskStatus::kFailed; });
        if (message->attempt >= options_.maxAttempts) {
          tel.log().error("route.subtask.exhausted", {{"id", message->id}});
          exhaustedCounter.add(1);
          journal.subtaskExhaust("route", message->id, message->attempt);
          if (registry_) registry_->subtaskExhausted();
          failed = true;
          {
            std::lock_guard lock(statsMutex);
            result.failedSubtasks.push_back(message->id);
          }
          if (remaining.fetch_sub(1) == 1) queue.close();
        } else {
          tel.log().warn("route.subtask.retry",
                         {{"id", message->id},
                          {"attempt", std::to_string(message->attempt)}});
          retries.fetch_add(1);
          retryCounter.add(1);
          journal.subtaskRetry("route", message->id, message->attempt);
          if (registry_) registry_->subtaskRetried();
          queue.push(SubtaskMessage{message->id, message->kind, message->attempt + 1});
        }
        continue;
      }
      obs::Span executeSpan = tel.tracer().span("route.subtask.execute", "dist");
      NetworkRibs ribs;
      RouteSimStats stats;
      // Private per-subtask recorder (same filter/caps as the master's):
      // concurrent subtasks must not interleave events in a shared sink.
      obs::ProvenanceRecorder subProv(prov ? prov->options() : obs::ProvenanceOptions{});
      if (message->kind == SubtaskMessage::Kind::kLocalRoutes) {
        installLocalRoutes(model_, ribs, prov ? &subProv : nullptr);
      } else {
        const auto record = db_.get(message->id);
        const auto chunk = store_->get<std::vector<InputRoute>>(record->inputKey);
        RouteSimOptions subOptions = options_.routeOptions;
        subOptions.includeLocalRoutes = false;
        subOptions.telemetry = telemetry_;
        subOptions.provenance = prov ? &subProv : nullptr;
        // Subtask-local selection is provisional (the master re-selects after
        // merging); selection events come from the merged RIBs below.
        subOptions.provenanceSelectionEvents = false;
        RouteSimResult subResult = simulateRoutes(model_, *chunk, subOptions);
        ribs = std::move(subResult.ribs);
        stats = subResult.stats;
      }
      executeSpan.finish();
      obs::Span uploadSpan = tel.tracer().span("route.subtask.upload", "dist");
      const auto record = db_.get(message->id);
      const size_t resultBytes = approxRibBytes(ribs);
      store_->put(record->resultKey, std::move(ribs), resultBytes);
      size_t provBytes = 0;
      if (prov) {
        // Compressed event log rides along under `<result key>#prov` so a
        // future recording run's hit replays these exact events.
        const std::vector<obs::RouteEvent> events = subProv.snapshot();
        obs::CompressedRouteEvents blob;
        blob.filterFp = provFp;
        blob.eventCount = events.size();
        blob.bytes = obs::compressRouteEvents(events);
        provBytes = blob.bytes.size() + 32;
        store_->put(record->resultKey + "#prov", std::move(blob), provBytes);
      }
      if (cache) {
        // Replayable stats ride along so a future hit merges identically.
        constexpr size_t kStatsBytes = 128;
        store_->put(record->resultKey + "#stats", stats, kStatsBytes);
        cache->stored(record->resultKey, resultBytes + kStatsBytes + provBytes);
      }
      uploadSpan.finish();
      subtaskSpan.finish();
      subtaskSeconds.observe(subtaskSpan.seconds());
      subtaskDurationMs.observe(subtaskSpan.seconds() * 1e3);
      journal.subtaskFinish("route", message->id, message->attempt, workerId,
                            subtaskSpan.seconds());
      if (registry_) registry_->subtaskFinished(workerId, subtaskSpan.seconds());
      completedCounter.add(1);
      // The span both *is* the trace record and feeds the public metric.
      db_.update(message->id, [&](SubtaskRecord& r) {
        r.status = SubtaskStatus::kSucceeded;
        r.runtimeSeconds = subtaskSpan.seconds();
      });
      {
        std::lock_guard lock(statsMutex);
        result.stats.simulatedInputs += stats.simulatedInputs;
        result.stats.messagesProcessed += stats.messagesProcessed;
        result.stats.rounds = std::max(result.stats.rounds, stats.rounds);
        result.stats.converged = result.stats.converged && stats.converged;
        result.stats.ec.inputRoutes += stats.ec.inputRoutes;
        result.stats.ec.classes += stats.ec.classes;
        result.stats.ec.prefixClasses += stats.ec.prefixClasses;
        result.stats.ecSeconds += stats.ecSeconds;
        result.stats.propagateSeconds += stats.propagateSeconds;
        result.stats.materializeSeconds += stats.materializeSeconds;
        result.stats.policy.add(stats.policy);
      }
      if (remaining.fetch_sub(1) == 1) queue.close();
    }
  };

  journal.phaseBegin("route.exec");
  if (registry_) registry_->phase("route.exec");
  const auto execStart = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i)
    workers.emplace_back(workerLoop, static_cast<int>(i));
  for (std::thread& worker : workers) worker.join();
  journal.phaseEnd("route.exec",
                   std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 execStart)
                       .count());

  result.retries = retries.load();
  result.succeeded = !failed.load();

  // --- master: collect results ----------------------------------------------
  journal.phaseBegin("route.merge");
  if (registry_) registry_->phase("route.merge");
  obs::Span mergeSpan = tel.tracer().span("route.merge", "dist");
  for (const std::string& id : subtaskIds) {
    const auto record = db_.get(id);
    if (!record || record->status != SubtaskStatus::kSucceeded) continue;
    const auto ribs = store_->get<NetworkRibs>(record->resultKey);
    result.ribs.merge(*ribs);
    if (record->fromCache) {
      // A cache hit replays the stats the original execution stored.
      const std::string statsKey = record->resultKey + "#stats";
      if (store_->contains(statsKey)) {
        const auto stats = store_->get<RouteSimStats>(statsKey);
        std::lock_guard lock(statsMutex);
        result.stats.simulatedInputs += stats->simulatedInputs;
        result.stats.messagesProcessed += stats->messagesProcessed;
        result.stats.rounds = std::max(result.stats.rounds, stats->rounds);
        result.stats.converged = result.stats.converged && stats->converged;
        result.stats.ec.inputRoutes += stats->ec.inputRoutes;
        result.stats.ec.classes += stats->ec.classes;
        result.stats.ec.prefixClasses += stats->ec.prefixClasses;
        result.stats.ecSeconds += stats->ecSeconds;
        result.stats.propagateSeconds += stats->propagateSeconds;
        result.stats.materializeSeconds += stats->materializeSeconds;
        result.stats.policy.add(stats->policy);
      }
    }
    // Ordered provenance merge: append each subtask's event log in subtask-id
    // order (not worker completion order), re-sequencing as we go. Cache hits
    // replay the blob their original execution stored.
    const std::string provKey = record->resultKey + "#prov";
    if (prov && store_->contains(provKey)) {
      const auto blob = store_->get<obs::CompressedRouteEvents>(provKey);
      prov->append(obs::decompressRouteEvents(blob->bytes));
    }
    result.subtasks.push_back(SubtaskMetric{id, record->runtimeSeconds,
                                            record->attempts, 0, 0,
                                            record->fromCache});
    routeResultKeys_.push_back(record->resultKey);
  }
  dedupeRoutes(result.ribs);
  reselectAll(result.ribs);
  // Authoritative selection events from the merged, re-selected RIBs.
  if (prov) recordSelectionEvents(result.ribs, prov);
  result.ribs.buildForwardingIndex();
  // One master-side kernel event per route phase: per-subtask sums are
  // deterministic (L1-level regex accounting), so the aggregate — and the
  // canonical journal — is byte-identical for any worker count. Cache-served
  // subtasks replay the stats their original execution stored.
  journal.policyKernel("route", result.stats.policy.memoHits,
                       result.stats.policy.memoMisses,
                       result.stats.policy.regexCacheHits,
                       result.stats.policy.regexCacheMisses);
  mergeSpan.finish();
  result.mergeSeconds = mergeSpan.seconds();
  journal.phaseEnd("route.merge", mergeSpan.seconds());
  result.stats.installedRoutes = result.ribs.routeCount();
  result.stats.inputRoutes = inputs.size();
  taskSpan.finish();
  result.elapsedSeconds = taskSpan.seconds();
  tel.log().info("route.task.done",
                 {{"seconds", std::to_string(result.elapsedSeconds)},
                  {"routes", std::to_string(result.stats.installedRoutes)},
                  {"retries", std::to_string(result.retries)},
                  {"succeeded", result.succeeded ? "true" : "false"}});
  return result;
}

DistTrafficResult DistributedSimulator::runTrafficSimulation(
    std::span<const Flow> flows) {
  obs::Telemetry& tel = *telemetry_;
  obs::Span taskSpan = tel.tracer().span("traffic.task", "dist");
  taskSpan.arg("flows", std::to_string(flows.size()));
  tel.log().info("traffic.task.start", {{"flows", std::to_string(flows.size())},
                                        {"workers", std::to_string(options_.workers)}});
  DistTrafficResult result;
  const size_t storeReadsBefore = store_->bytesRead();
  // Result cache: traffic subtasks record no provenance events, and with the
  // route phase keeping its content keys under recording (events replay from
  // `#prov` blobs), traffic content keys stay stable too — no bypass needed.
  SubtaskResultCache* cache = options_.cache;
  obs::RunJournal& journal = tel.journal();

  // Snapshot route-subtask coverage for the dependency check; the split loop
  // needs it too when the cache is on (a traffic subtask's content key names
  // exactly the route result files it would load).
  struct RouteFile {
    std::string resultKey;
    std::optional<IpRange> coverage;
    bool isLocal = false;
  };
  std::vector<RouteFile> routeFiles;
  for (const SubtaskRecord& record : db_.all()) {
    if (record.id.rfind("route-", 0) != 0 || record.status != SubtaskStatus::kSucceeded)
      continue;
    routeFiles.push_back(
        RouteFile{record.resultKey, record.coverage, record.id == "route-local"});
  }
  // Dependency pruning (§3.2): a route result file is needed when its
  // recorded coverage overlaps the subtask's destination range. The
  // local-routes file is always needed (nexthop/loopback routes).
  const auto ribNeeded = [&](const RouteFile& file,
                             const std::optional<IpRange>& dstRange) {
    return options_.loadAllRibs || file.isLocal || !file.coverage || !dstRange ||
           dstRange->overlaps(*file.coverage);
  };

  struct TrafficOutput {
    LinkLoadMap loads;
    TrafficSimStats stats;
  };
  std::mutex outputMutex;
  // Per-subtask outputs, merged by the master in subtask order after the
  // workers join: float addition is not associative, so merging in worker
  // *completion* order made link loads depend on the worker count.
  std::map<std::string, TrafficOutput> outputs;

  // --- master: prepare subtasks ----------------------------------------------
  journal.phaseBegin("traffic.split");
  if (registry_) registry_->phase("traffic.split");
  obs::Span splitSpan = tel.tracer().span("traffic.split", "dist");
  SplitPlanCache* splitCache =
      options_.strategy == SplitStrategy::kOrdering ? options_.splitCache : nullptr;
  std::shared_ptr<const std::vector<Flow>> orderedShared =
      splitCache ? splitCache->cachedFlowOrder(flows) : nullptr;
  std::vector<Flow> orderedOwned;
  if (!orderedShared) {
    orderedOwned.assign(flows.begin(), flows.end());
    if (options_.strategy == SplitStrategy::kOrdering) {
      // Order by destination address (§3.2 — done offline by the input-flow
      // building service).
      std::stable_sort(orderedOwned.begin(), orderedOwned.end(),
                       [](const Flow& a, const Flow& b) { return a.dst < b.dst; });
    } else {
      std::mt19937_64 rng(options_.failureSeed * 104729 + 41);
      std::shuffle(orderedOwned.begin(), orderedOwned.end(), rng);
    }
    if (splitCache) {
      orderedShared = std::make_shared<const std::vector<Flow>>(std::move(orderedOwned));
      splitCache->storeFlowOrder(orderedShared);
    }
  }
  const std::span<const Flow> ordered =
      orderedShared ? std::span<const Flow>(*orderedShared)
                    : std::span<const Flow>(orderedOwned);

  const size_t subtaskCount =
      std::min(options_.trafficSubtasks, std::max<size_t>(ordered.size(), 1));
  MessageQueue<SubtaskMessage> queue;
  queue.bindTelemetry(
      &tel.metrics().gauge("mq.depth", "Subtask messages queued, not yet claimed."),
      &tel.metrics().histogram("mq.wait_seconds", {},
                               "Seconds a subtask message waited in the queue."));
  std::vector<std::string> subtaskIds;
  for (size_t i = 0; i < subtaskCount; ++i) {
    const size_t begin = ordered.size() * i / subtaskCount;
    const size_t end = ordered.size() * (i + 1) / subtaskCount;
    if (begin >= end) continue;
    const std::span<const Flow> slice(ordered.data() + begin, end - begin);
    SubtaskRecord record;
    record.id = "traffic-" + std::to_string(subtaskIds.size());
    record.inputKey = options_.keyPrefix + record.id + "/input";
    record.resultKey = options_.keyPrefix + record.id + "/result";
    if (cache) {
      std::optional<IpRange> dstRange;
      for (const Flow& flow : slice) {
        if (!dstRange)
          dstRange = IpRange{flow.dst, flow.dst};
        else
          dstRange->extend(flow.dst);
      }
      std::vector<std::string> ribKeys;
      for (const RouteFile& file : routeFiles)
        if (ribNeeded(file, dstRange)) ribKeys.push_back(file.resultKey);
      record.resultKey = cache->trafficResultKey(slice, ribKeys);
      if (cache->lookup(record.resultKey)) {
        journal.cacheHit("traffic", record.id, record.resultKey);
        if (registry_) {
          registry_->cacheHit();
          registry_->subtaskCached();
        }
        const auto blob = store_->get<TrafficSubtaskResult>(record.resultKey);
        record.status = SubtaskStatus::kSucceeded;
        record.attempts = 0;
        record.fromCache = true;
        record.ribFilesLoaded = blob->ribFilesLoaded;
        record.ribFilesTotal = blob->ribFilesTotal;
        outputs[record.id] = TrafficOutput{blob->linkLoads, blob->stats};
        db_.upsert(std::move(record));
        subtaskIds.push_back("traffic-" + std::to_string(subtaskIds.size()));
        ++result.cacheHits;
        continue;
      }
      journal.cacheMiss("traffic", record.id, record.resultKey);
      if (registry_) registry_->cacheMiss();
    }
    store_->put(record.inputKey, std::vector<Flow>(slice.begin(), slice.end()),
                approxFlowBytes(end - begin));
    db_.upsert(record);
    queue.push(SubtaskMessage{record.id, SubtaskMessage::Kind::kTrafficInputs, 1});
    journal.subtaskEnqueue("traffic", record.id);
    if (registry_) registry_->subtaskEnqueued();
    subtaskIds.push_back(record.id);
  }

  splitSpan.arg("subtasks", std::to_string(subtaskIds.size()));
  splitSpan.finish();
  result.splitSeconds = splitSpan.seconds();
  journal.phaseEnd("traffic.split", splitSpan.seconds());
  tel.metrics().counter("dist.traffic.subtasks").add(subtaskIds.size());

  // --- workers -----------------------------------------------------------------
  std::atomic<size_t> remaining{subtaskIds.size() - result.cacheHits};
  if (remaining.load() == 0) queue.close();  // Everything came from the cache.
  std::atomic<size_t> retries{0};
  std::atomic<bool> failed{false};
  obs::Counter& retryCounter = tel.metrics().counter(
      "dist.retries", "Subtask attempts re-enqueued after a worker crash.");
  obs::Counter& completedCounter = tel.metrics().counter("dist.subtasks.completed");
  obs::Counter& crashCounter = tel.metrics().counter("dist.subtasks.crashed");
  obs::Counter& exhaustedCounter = tel.metrics().counter("dist.subtask_exhausted");
  obs::Histogram& subtaskSeconds = tel.metrics().histogram("dist.subtask_seconds");
  obs::Histogram& subtaskDurationMs = tel.metrics().histogram(
      "dist.subtask_duration_ms.traffic", subtaskDurationBoundsMs());
  obs::Counter& ribFilesLoaded = tel.metrics().counter("dist.traffic.rib_files_loaded");
  obs::Counter& ribFilesSkipped = tel.metrics().counter("dist.traffic.rib_files_skipped");

  const auto workerLoop = [&](int workerId) {
    while (auto message = queue.pop()) {
      obs::Span subtaskSpan = tel.tracer().span("traffic.subtask", "dist");
      subtaskSpan.arg("id", message->id);
      subtaskSpan.arg("attempt", std::to_string(message->attempt));
      journal.subtaskStart("traffic", message->id, message->attempt, workerId);
      if (registry_) registry_->subtaskStarted(workerId, message->id);
      db_.update(message->id, [&](SubtaskRecord& r) {
        r.status = SubtaskStatus::kRunning;
        r.attempts = message->attempt;
      });
      if (injectCrash(options_, message->id, message->attempt)) {
        subtaskSpan.arg("outcome", "crashed");
        crashCounter.add(1);
        if (registry_) registry_->subtaskCrashed(workerId);
        db_.update(message->id,
                   [](SubtaskRecord& r) { r.status = SubtaskStatus::kFailed; });
        if (message->attempt >= options_.maxAttempts) {
          tel.log().error("traffic.subtask.exhausted", {{"id", message->id}});
          exhaustedCounter.add(1);
          journal.subtaskExhaust("traffic", message->id, message->attempt);
          if (registry_) registry_->subtaskExhausted();
          failed = true;
          {
            std::lock_guard lock(outputMutex);
            result.failedSubtasks.push_back(message->id);
          }
          if (remaining.fetch_sub(1) == 1) queue.close();
        } else {
          tel.log().warn("traffic.subtask.retry",
                         {{"id", message->id},
                          {"attempt", std::to_string(message->attempt)}});
          retries.fetch_add(1);
          retryCounter.add(1);
          journal.subtaskRetry("traffic", message->id, message->attempt);
          if (registry_) registry_->subtaskRetried();
          queue.push(SubtaskMessage{message->id, message->kind, message->attempt + 1});
        }
        continue;
      }
      const auto record = db_.get(message->id);
      const auto chunk = store_->get<std::vector<Flow>>(record->inputKey);
      // Destination range of this subtask's flows.
      std::optional<IpRange> dstRange;
      for (const Flow& flow : *chunk) {
        if (!dstRange)
          dstRange = IpRange{flow.dst, flow.dst};
        else
          dstRange->extend(flow.dst);
      }
      obs::Span loadSpan = tel.tracer().span("traffic.subtask.load_ribs", "dist");
      NetworkRibs ribs;
      size_t loaded = 0;
      for (const RouteFile& file : routeFiles) {
        if (!ribNeeded(file, dstRange)) continue;
        const auto part = store_->get<NetworkRibs>(file.resultKey);
        ribs.merge(*part);
        ++loaded;
      }
      dedupeRoutes(ribs);
      reselectAll(ribs);
      ribs.buildForwardingIndex();
      loadSpan.arg("loaded", std::to_string(loaded));
      loadSpan.finish();
      ribFilesLoaded.add(loaded);
      ribFilesSkipped.add(routeFiles.size() - loaded);
      obs::Span executeSpan = tel.tracer().span("traffic.subtask.execute", "dist");
      TrafficSimOptions subOptions = options_.trafficOptions;
      subOptions.telemetry = telemetry_;
      const TrafficSimResult subResult =
          simulateTraffic(model_, ribs, *chunk, subOptions);
      executeSpan.finish();
      {
        std::lock_guard lock(outputMutex);
        outputs[message->id] = TrafficOutput{subResult.linkLoads, subResult.stats};
      }
      obs::Span uploadSpan = tel.tracer().span("traffic.subtask.upload", "dist");
      const size_t resultBytes = subResult.linkLoads.size() * 24 + 128;
      store_->put(record->resultKey,
                  TrafficSubtaskResult{subResult.linkLoads, subResult.stats,
                                       loaded, routeFiles.size()},
                  resultBytes);
      if (cache) cache->stored(record->resultKey, resultBytes);
      uploadSpan.finish();
      subtaskSpan.finish();
      subtaskSeconds.observe(subtaskSpan.seconds());
      subtaskDurationMs.observe(subtaskSpan.seconds() * 1e3);
      journal.subtaskFinish("traffic", message->id, message->attempt, workerId,
                            subtaskSpan.seconds());
      if (registry_) registry_->subtaskFinished(workerId, subtaskSpan.seconds());
      completedCounter.add(1);
      db_.update(message->id, [&](SubtaskRecord& r) {
        r.status = SubtaskStatus::kSucceeded;
        r.runtimeSeconds = subtaskSpan.seconds();
        r.ribFilesLoaded = loaded;
        r.ribFilesTotal = routeFiles.size();
      });
      if (remaining.fetch_sub(1) == 1) queue.close();
    }
  };

  journal.phaseBegin("traffic.exec");
  if (registry_) registry_->phase("traffic.exec");
  const auto execStart = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i)
    workers.emplace_back(workerLoop, static_cast<int>(i));
  for (std::thread& worker : workers) worker.join();
  journal.phaseEnd("traffic.exec",
                   std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 execStart)
                       .count());

  result.retries = retries.load();
  result.succeeded = !failed.load();
  // --- master: merge in fixed subtask order (determinism) -------------------
  journal.phaseBegin("traffic.merge");
  if (registry_) registry_->phase("traffic.merge");
  obs::Span mergeSpan = tel.tracer().span("traffic.merge", "dist");
  for (const std::string& id : subtaskIds) {
    const auto it = outputs.find(id);
    if (it == outputs.end()) continue;
    const TrafficOutput& output = it->second;
    result.linkLoads.merge(output.loads);
    result.stats.inputFlows += output.stats.inputFlows;
    result.stats.simulatedFlows += output.stats.simulatedFlows;
    result.stats.delivered += output.stats.delivered;
    result.stats.exited += output.stats.exited;
    result.stats.blackholed += output.stats.blackholed;
    result.stats.looped += output.stats.looped;
    result.stats.deniedAcl += output.stats.deniedAcl;
    result.stats.ec.inputFlows += output.stats.ec.inputFlows;
    result.stats.ec.classes += output.stats.ec.classes;
    result.stats.ecSeconds += output.stats.ecSeconds;
    result.stats.forwardSeconds += output.stats.forwardSeconds;
  }
  for (const std::string& id : subtaskIds) {
    const auto record = db_.get(id);
    if (!record) continue;
    result.subtasks.push_back(SubtaskMetric{id, record->runtimeSeconds, record->attempts,
                                            record->ribFilesLoaded,
                                            record->ribFilesTotal, record->fromCache});
  }
  mergeSpan.finish();
  journal.phaseEnd("traffic.merge", mergeSpan.seconds());
  result.storeBytesRead = store_->bytesRead() - storeReadsBefore;
  taskSpan.finish();
  result.elapsedSeconds = taskSpan.seconds();
  tel.log().info("traffic.task.done",
                 {{"seconds", std::to_string(result.elapsedSeconds)},
                  {"links", std::to_string(result.linkLoads.size())},
                  {"retries", std::to_string(result.retries)},
                  {"succeeded", result.succeeded ? "true" : "false"}});
  return result;
}

}  // namespace hoyan
