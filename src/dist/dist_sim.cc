#include "dist/dist_sim.h"

#include "sim/local_routes.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>

namespace hoyan {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Deterministic per-(subtask, attempt) crash decision for fault injection.
bool injectCrash(const DistSimOptions& options, const std::string& id, int attempt) {
  if (options.workerFailureProbability <= 0) return false;
  const size_t h = std::hash<std::string>{}(id) ^ (attempt * 0x9e3779b97f4a7c15ULL) ^
                   options.failureSeed;
  std::mt19937_64 rng(h);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(rng) < options.workerFailureProbability;
}

// A subtask descriptor as pushed onto the MQ: references to the input blob
// and the network snapshot are implicit (shared model), matching the paper's
// metadata message.
struct SubtaskMessage {
  std::string id;
  enum class Kind { kRouteInputs, kLocalRoutes, kTrafficInputs } kind;
  int attempt = 1;
};

size_t approxRouteBytes(size_t routes) { return routes * 96; }
size_t approxRibBytes(const NetworkRibs& ribs) { return ribs.routeCount() * 96; }
size_t approxFlowBytes(size_t flows) { return flows * 48; }

}  // namespace

DistributedSimulator::DistributedSimulator(const NetworkModel& model,
                                           DistSimOptions options)
    : model_(model), options_(std::move(options)) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.routeSubtasks == 0) options_.routeSubtasks = 1;
  if (options_.trafficSubtasks == 0) options_.trafficSubtasks = 1;
}

DistRouteResult DistributedSimulator::runRouteSimulation(
    std::span<const InputRoute> inputs) {
  const auto start = Clock::now();
  DistRouteResult result;
  routeResultKeys_.clear();

  // --- master: prepare subtasks -------------------------------------------
  std::vector<InputRoute> ordered(inputs.begin(), inputs.end());
  if (options_.strategy == SplitStrategy::kOrdering) {
    // Order by the last IP address of the prefix; keep same-prefix routes
    // adjacent (§3.2 — done offline by the input-route building service).
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const InputRoute& a, const InputRoute& b) {
                       const IpAddress lastA = a.route.prefix.lastAddress();
                       const IpAddress lastB = b.route.prefix.lastAddress();
                       if (!(lastA == lastB)) return lastA < lastB;
                       return a.route.prefix < b.route.prefix;
                     });
  } else {
    std::mt19937_64 rng(options_.failureSeed * 7919 + 13);
    std::shuffle(ordered.begin(), ordered.end(), rng);
  }

  const size_t subtaskCount = std::min(options_.routeSubtasks,
                                       std::max<size_t>(ordered.size(), 1));
  MessageQueue<SubtaskMessage> queue;
  std::vector<std::string> subtaskIds;
  size_t cursor = 0;
  for (size_t i = 0; i < subtaskCount; ++i) {
    const size_t begin = cursor;
    size_t end = std::max(begin, ordered.size() * (i + 1) / subtaskCount);
    if (i + 1 == subtaskCount) end = ordered.size();
    // Keep routes with the same prefix in the same subtask.
    while (end > begin && end < ordered.size() &&
           ordered[end].route.prefix == ordered[end - 1].route.prefix)
      ++end;
    cursor = end;
    if (begin >= end) continue;
    std::vector<InputRoute> chunk(ordered.begin() + begin, ordered.begin() + end);
    SubtaskRecord record;
    record.id = "route-" + std::to_string(subtaskIds.size());
    record.inputKey = record.id + "/input";
    record.resultKey = record.id + "/result";
    // Record the address range the subtask's routes cover (§3.2).
    if (!chunk.empty()) {
      IpRange range{chunk.front().route.prefix.firstAddress(),
                    chunk.front().route.prefix.lastAddress()};
      for (const InputRoute& input : chunk) range.extend(input.route.prefix);
      record.coverage = range;
    }
    store_.put(record.inputKey, std::move(chunk), approxRouteBytes(end - begin));
    db_.upsert(record);
    queue.push(SubtaskMessage{record.id, SubtaskMessage::Kind::kRouteInputs, 1});
    subtaskIds.push_back(record.id);
  }
  // The dedicated local-routes subtask (direct/static/IS-IS).
  {
    SubtaskRecord record;
    record.id = "route-local";
    record.resultKey = record.id + "/result";
    db_.upsert(record);
    queue.push(SubtaskMessage{record.id, SubtaskMessage::Kind::kLocalRoutes, 1});
    subtaskIds.push_back(record.id);
  }
  result.splitSeconds = secondsSince(start);

  // --- workers --------------------------------------------------------------
  std::atomic<size_t> remaining{subtaskIds.size()};
  std::atomic<size_t> retries{0};
  std::atomic<bool> failed{false};
  std::mutex statsMutex;
  const auto workerLoop = [&] {
    while (auto message = queue.pop()) {
      const auto subtaskStart = Clock::now();
      db_.update(message->id, [&](SubtaskRecord& r) {
        r.status = SubtaskStatus::kRunning;
        r.attempts = message->attempt;
      });
      if (injectCrash(options_, message->id, message->attempt)) {
        // The working server dies mid-subtask; the master re-queues (§3.2).
        db_.update(message->id,
                   [](SubtaskRecord& r) { r.status = SubtaskStatus::kFailed; });
        if (message->attempt >= options_.maxAttempts) {
          failed = true;
          if (remaining.fetch_sub(1) == 1) queue.close();
        } else {
          retries.fetch_add(1);
          queue.push(SubtaskMessage{message->id, message->kind, message->attempt + 1});
        }
        continue;
      }
      NetworkRibs ribs;
      RouteSimStats stats;
      if (message->kind == SubtaskMessage::Kind::kLocalRoutes) {
        installLocalRoutes(model_, ribs);
      } else {
        const auto record = db_.get(message->id);
        const auto chunk = store_.get<std::vector<InputRoute>>(record->inputKey);
        RouteSimOptions subOptions = options_.routeOptions;
        subOptions.includeLocalRoutes = false;
        RouteSimResult subResult = simulateRoutes(model_, *chunk, subOptions);
        ribs = std::move(subResult.ribs);
        stats = subResult.stats;
      }
      const auto record = db_.get(message->id);
      const size_t resultBytes = approxRibBytes(ribs);
      store_.put(record->resultKey, std::move(ribs), resultBytes);
      db_.update(message->id, [&](SubtaskRecord& r) {
        r.status = SubtaskStatus::kSucceeded;
        r.runtimeSeconds = secondsSince(subtaskStart);
      });
      {
        std::lock_guard lock(statsMutex);
        result.stats.simulatedInputs += stats.simulatedInputs;
        result.stats.messagesProcessed += stats.messagesProcessed;
        result.stats.rounds = std::max(result.stats.rounds, stats.rounds);
        result.stats.converged = result.stats.converged && stats.converged;
        result.stats.ec.inputRoutes += stats.ec.inputRoutes;
        result.stats.ec.classes += stats.ec.classes;
        result.stats.ec.prefixClasses += stats.ec.prefixClasses;
      }
      if (remaining.fetch_sub(1) == 1) queue.close();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) workers.emplace_back(workerLoop);
  for (std::thread& worker : workers) worker.join();

  result.retries = retries.load();
  result.succeeded = !failed.load();

  // --- master: collect results ----------------------------------------------
  const auto mergeStart = Clock::now();
  for (const std::string& id : subtaskIds) {
    const auto record = db_.get(id);
    if (!record || record->status != SubtaskStatus::kSucceeded) continue;
    const auto ribs = store_.get<NetworkRibs>(record->resultKey);
    result.ribs.merge(*ribs);
    result.subtasks.push_back(
        SubtaskMetric{id, record->runtimeSeconds, record->attempts, 0, 0});
    routeResultKeys_.push_back(record->resultKey);
  }
  dedupeRoutes(result.ribs);
  reselectAll(result.ribs);
  result.ribs.buildForwardingIndex();
  result.mergeSeconds = secondsSince(mergeStart);
  result.stats.installedRoutes = result.ribs.routeCount();
  result.stats.inputRoutes = inputs.size();
  result.elapsedSeconds = secondsSince(start);
  return result;
}

DistTrafficResult DistributedSimulator::runTrafficSimulation(
    std::span<const Flow> flows) {
  const auto start = Clock::now();
  DistTrafficResult result;
  const size_t storeReadsBefore = store_.bytesRead();

  // --- master: prepare subtasks ----------------------------------------------
  std::vector<Flow> ordered(flows.begin(), flows.end());
  if (options_.strategy == SplitStrategy::kOrdering) {
    // Order by destination address (§3.2 — done offline by the input-flow
    // building service).
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const Flow& a, const Flow& b) { return a.dst < b.dst; });
  } else {
    std::mt19937_64 rng(options_.failureSeed * 104729 + 41);
    std::shuffle(ordered.begin(), ordered.end(), rng);
  }

  const size_t subtaskCount =
      std::min(options_.trafficSubtasks, std::max<size_t>(ordered.size(), 1));
  MessageQueue<SubtaskMessage> queue;
  std::vector<std::string> subtaskIds;
  for (size_t i = 0; i < subtaskCount; ++i) {
    const size_t begin = ordered.size() * i / subtaskCount;
    const size_t end = ordered.size() * (i + 1) / subtaskCount;
    if (begin >= end) continue;
    std::vector<Flow> chunk(ordered.begin() + begin, ordered.begin() + end);
    SubtaskRecord record;
    record.id = "traffic-" + std::to_string(subtaskIds.size());
    record.inputKey = record.id + "/input";
    record.resultKey = record.id + "/result";
    store_.put(record.inputKey, std::move(chunk), approxFlowBytes(end - begin));
    db_.upsert(record);
    queue.push(SubtaskMessage{record.id, SubtaskMessage::Kind::kTrafficInputs, 1});
    subtaskIds.push_back(record.id);
  }

  result.splitSeconds = secondsSince(start);

  // Snapshot route-subtask coverage for the dependency check.
  struct RouteFile {
    std::string resultKey;
    std::optional<IpRange> coverage;
    bool isLocal = false;
  };
  std::vector<RouteFile> routeFiles;
  for (const SubtaskRecord& record : db_.all()) {
    if (record.id.rfind("route-", 0) != 0 || record.status != SubtaskStatus::kSucceeded)
      continue;
    routeFiles.push_back(
        RouteFile{record.resultKey, record.coverage, record.id == "route-local"});
  }

  // --- workers -----------------------------------------------------------------
  struct TrafficOutput {
    LinkLoadMap loads;
    TrafficSimStats stats;
  };
  std::atomic<size_t> remaining{subtaskIds.size()};
  std::atomic<size_t> retries{0};
  std::atomic<bool> failed{false};
  std::mutex outputMutex;
  TrafficOutput merged;

  const auto workerLoop = [&] {
    while (auto message = queue.pop()) {
      const auto subtaskStart = Clock::now();
      db_.update(message->id, [&](SubtaskRecord& r) {
        r.status = SubtaskStatus::kRunning;
        r.attempts = message->attempt;
      });
      if (injectCrash(options_, message->id, message->attempt)) {
        db_.update(message->id,
                   [](SubtaskRecord& r) { r.status = SubtaskStatus::kFailed; });
        if (message->attempt >= options_.maxAttempts) {
          failed = true;
          if (remaining.fetch_sub(1) == 1) queue.close();
        } else {
          retries.fetch_add(1);
          queue.push(SubtaskMessage{message->id, message->kind, message->attempt + 1});
        }
        continue;
      }
      const auto record = db_.get(message->id);
      const auto chunk = store_.get<std::vector<Flow>>(record->inputKey);
      // Destination range of this subtask's flows.
      std::optional<IpRange> dstRange;
      for (const Flow& flow : *chunk) {
        if (!dstRange)
          dstRange = IpRange{flow.dst, flow.dst};
        else
          dstRange->extend(flow.dst);
      }
      // Dependency pruning (§3.2): load only route result files whose
      // recorded coverage overlaps our destination range. The local-routes
      // file is always needed (nexthop/loopback routes).
      NetworkRibs ribs;
      size_t loaded = 0;
      for (const RouteFile& file : routeFiles) {
        const bool needed = options_.loadAllRibs || file.isLocal || !file.coverage ||
                            !dstRange || dstRange->overlaps(*file.coverage);
        if (!needed) continue;
        const auto part = store_.get<NetworkRibs>(file.resultKey);
        ribs.merge(*part);
        ++loaded;
      }
      dedupeRoutes(ribs);
      reselectAll(ribs);
      ribs.buildForwardingIndex();
      const TrafficSimResult subResult =
          simulateTraffic(model_, ribs, *chunk, options_.trafficOptions);
      {
        std::lock_guard lock(outputMutex);
        merged.loads.merge(subResult.linkLoads);
        merged.stats.inputFlows += subResult.stats.inputFlows;
        merged.stats.simulatedFlows += subResult.stats.simulatedFlows;
        merged.stats.delivered += subResult.stats.delivered;
        merged.stats.exited += subResult.stats.exited;
        merged.stats.blackholed += subResult.stats.blackholed;
        merged.stats.looped += subResult.stats.looped;
        merged.stats.deniedAcl += subResult.stats.deniedAcl;
        merged.stats.ec.inputFlows += subResult.stats.ec.inputFlows;
        merged.stats.ec.classes += subResult.stats.ec.classes;
      }
      store_.put(record->resultKey, subResult.linkLoads,
                 subResult.linkLoads.size() * 24);
      db_.update(message->id, [&](SubtaskRecord& r) {
        r.status = SubtaskStatus::kSucceeded;
        r.runtimeSeconds = secondsSince(subtaskStart);
        r.ribFilesLoaded = loaded;
        r.ribFilesTotal = routeFiles.size();
      });
      if (remaining.fetch_sub(1) == 1) queue.close();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) workers.emplace_back(workerLoop);
  for (std::thread& worker : workers) worker.join();

  result.retries = retries.load();
  result.succeeded = !failed.load();
  result.linkLoads = std::move(merged.loads);
  result.stats = merged.stats;
  for (const std::string& id : subtaskIds) {
    const auto record = db_.get(id);
    if (!record) continue;
    result.subtasks.push_back(SubtaskMetric{id, record->runtimeSeconds, record->attempts,
                                            record->ribFilesLoaded,
                                            record->ribFilesTotal});
  }
  result.storeBytesRead = store_.bytesRead() - storeReadsBefore;
  result.elapsedSeconds = secondsSince(start);
  return result;
}

}  // namespace hoyan
