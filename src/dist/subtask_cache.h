// The result-cache seam of the distributed simulator.
//
// `DistributedSimulator` consults an optional `SubtaskResultCache` at split
// time: the cache maps each subtask's inputs to a content-addressed result
// key; when the keyed result is already resident in the (shared, cross-run)
// ObjectStore, the subtask is marked succeeded without being queued and the
// master merges the stored blob — a cache read, not simulation work. The
// implementation lives in src/incr (`incr::SubtaskCache`); dist only defines
// the seam so the layering stays dist ← incr ← core.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/flow.h"
#include "net/ip.h"
#include "net/route.h"
#include "sim/traffic_sim.h"

namespace hoyan {

// The cached payload of one traffic subtask (the store blob under its
// content key). Route subtasks store their `NetworkRibs` under the content
// key and their `RouteSimStats` under `<key>#stats`.
struct TrafficSubtaskResult {
  LinkLoadMap linkLoads;
  TrafficSimStats stats;
  size_t ribFilesLoaded = 0;
  size_t ribFilesTotal = 0;
};

class SubtaskResultCache {
 public:
  virtual ~SubtaskResultCache() = default;

  // Content-addressed result key for a route subtask over `chunk` with the
  // recorded §3.2 coverage range.
  virtual std::string routeResultKey(std::span<const InputRoute> chunk,
                                     const std::optional<IpRange>& coverage) = 0;
  // Key for the dedicated local-routes subtask.
  virtual std::string localRoutesResultKey() = 0;
  // Key for a traffic subtask over `chunk` that would load exactly the route
  // result files named by `ribKeys` (content keys, in snapshot order) — route
  // dirtiness composes into traffic keys through them.
  virtual std::string trafficResultKey(std::span<const Flow> chunk,
                                       std::span<const std::string> ribKeys) = 0;

  // True when `key`'s result blob is resident (counted as a hit; a false
  // return counts as a miss).
  virtual bool lookup(const std::string& key) = 0;
  // Tells the cache a worker stored `bytes` under `key` this run (for LRU
  // byte accounting). Called from worker threads; must be thread-safe.
  virtual void stored(const std::string& key, size_t bytes) = 0;
  // The run skipped the cache entirely (e.g. provenance recording is active,
  // which cached subtasks cannot replay).
  virtual void noteBypass() = 0;
};

// Master-side split-plan cache seam: memoizes the sorted input order across
// runs so an unchanged route/flow input set is not re-sorted (and its chunks
// not re-fingerprinted) per run — on fully-warm runs the sort is the master's
// largest fixed cost. Only consulted under the ordering strategy: a random
// shuffle is seeded per run and must not be reused. Implemented in src/incr
// (`incr::SplitCache`); dist only defines the seam.
class SplitPlanCache {
 public:
  virtual ~SplitPlanCache() = default;

  // Returns the cached sorted copy when `inputs` matches — by content
  // fingerprint — the sequence the cached order was built from; null means
  // the caller must sort and hand the result to the matching store method.
  virtual std::shared_ptr<const std::vector<InputRoute>> cachedRouteOrder(
      std::span<const InputRoute> inputs) = 0;
  virtual void storeRouteOrder(
      std::shared_ptr<const std::vector<InputRoute>> ordered) = 0;
  virtual std::shared_ptr<const std::vector<Flow>> cachedFlowOrder(
      std::span<const Flow> flows) = 0;
  virtual void storeFlowOrder(std::shared_ptr<const std::vector<Flow>> ordered) = 0;
};

}  // namespace hoyan
