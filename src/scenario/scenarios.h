// Executable change scenarios: the 12 change types of Table 2 (safe
// versions whose intents must verify) and the Table-6 risk suite (changes
// carrying a planted risk that Hoyan must flag, with the paper's root-cause
// mix).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/hoyan.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"

namespace hoyan {

// Root-cause labels of Table 6.
enum class RiskRootCause : uint8_t {
  kNone,  // Safe change.
  kIncorrectCommands,
  kDesignFlaw,
  kExistingMisconfiguration,
  kTopologyIssue,
  kOther,
};

std::string riskRootCauseName(RiskRootCause cause);

struct Scenario {
  std::string name;
  std::string changeType;  // Table 2 change type.
  std::string description;
  ChangePlan plan;
  IntentSet intents;
  RiskRootCause risk = RiskRootCause::kNone;
  // Extra data-plane probes: flows that must be blocked after the change
  // (ACL modification intent: "all matching flows should be blocked").
  std::vector<Flow> mustBeBlocked;
  // Flows that must remain deliverable after the change.
  std::vector<Flow> mustRemainReachable;

  bool expectViolation() const { return risk != RiskRootCause::kNone; }
};

// The shared environment scenarios run against.
struct ScenarioEnvironment {
  GeneratedWan wan;
  std::vector<InputRoute> inputs;
  std::vector<Flow> flows;
};

ScenarioEnvironment makeStandardEnvironment(unsigned seed = 1);

// Creates a preprocessed Hoyan instance over the environment.
Hoyan makeHoyan(const ScenarioEnvironment& environment);

// The 12 Table-2 change types, safe versions (all intents must hold).
std::vector<Scenario> table2ChangeScenarios(const ScenarioEnvironment& environment);

// 32 risky changes mixing root causes per Table 6 (12 incorrect commands,
// 11 design flaws, 5 existing misconfigurations, 2 topology issues, 2
// others). Every scenario's risk must be flagged by verification.
std::vector<Scenario> table6RiskScenarios(const ScenarioEnvironment& environment);

struct ScenarioOutcome {
  std::string name;
  RiskRootCause risk = RiskRootCause::kNone;
  ChangeVerificationResult verification;
  bool probeViolations = false;  // mustBeBlocked / mustRemainReachable failed.
  bool flagged = false;          // Verification reported a violation.
  bool asExpected = false;       // flagged == scenario.expectViolation().

  std::string str() const;
};

// Runs one scenario end to end against a preprocessed Hoyan instance.
ScenarioOutcome runScenario(Hoyan& hoyan, const Scenario& scenario);

}  // namespace hoyan
