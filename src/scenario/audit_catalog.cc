#include "scenario/audit_catalog.h"

namespace hoyan {

std::vector<AuditTask> buildAuditCatalog(const GeneratedWan& wan) {
  std::vector<AuditTask> catalog;
  const size_t regions = wan.spec.regions;

  // --- network-wide hygiene ---------------------------------------------------
  catalog.push_back({"no-bogons-rfc1918",
                     "POST || prefix = 192.168.0.0/16 |> count() = 0"});
  catalog.push_back({"no-bogons-loopback-space",
                     "POST || prefix = 127.0.0.0/8 |> count() = 0"});
  catalog.push_back({"no-default-route-leak",
                     "POST || prefix = 0.0.0.0/0 |> count() = 0"});
  catalog.push_back({"every-best-route-unique",
                     "forall device: forall prefix: "
                     "POST || routeType = BEST || protocol = bgp |> "
                     "distCnt(nexthop) >= 0"});
  catalog.push_back({"bgp-routes-carry-origin-community",
                     // Every eBGP-learned ISP route carries some 100:x or
                     // 300:x marking (region tag or upstream tag).
                     "prefix = 100.0.1.0/24 and routeType = BEST and "
                     "not device in {ISP-0-0-0} => "
                     "POST || (communities contains 100:0) |> count() >= 1"});

  // --- per-region group consistency ("prefixes on all routers in a router
  // group should be the same", §6.2) ------------------------------------------
  for (size_t r = 0; r + 1 < wan.spec.coresPerRegion; ++r) {
    // Core groups within region 0: same BGP prefix sets.
    catalog.push_back(
        {"core-group-parity-0-" + std::to_string(r),
         "protocol = bgp => forall prefix: "
         "(POST || device = CORE-0-" + std::to_string(r) + " |> count() >= 1) imply "
         "(POST || device = CORE-0-" + std::to_string(r + 1) + " |> count() >= 1)"});
  }
  for (size_t r = 0; r < regions; ++r) {
    const std::string rs = std::to_string(r);
    // The region RR must know every DC aggregate.
    catalog.push_back({"rr-" + rs + "-has-dc-aggregates",
                       "device = RR-" + rs + " => "
                       "POST || prefix = 20.0.0.0/16 |> count() >= 1"});
    // Region borders tag ISP routes with the region community.
    catalog.push_back({"border-" + rs + "-tags-region-community",
                       "device = BR-" + rs + "-0 and prefix = 100." + rs +
                       ".1.0/24 => POST || (communities contains 100:" + rs +
                       ") |> count() >= 1"});
    // The region's own DC aggregate is visible across all regions.
    catalog.push_back({"dc-aggregate-" + rs + "-network-wide",
                       "POST || prefix = 20." + std::to_string(r * wan.spec.dcsPerRegion) +
                       ".0.0/16 |> distCnt(device) >= " +
                       std::to_string(regions * 2)});
    // Every region core holds the region's ISP routes (group reachability).
    catalog.push_back({"core-" + rs + "-0-knows-region-isp",
                       "device = CORE-" + rs + "-0 => "
                       "POST || prefix = 100." + rs + ".1.0/24 |> count() >= 1"});
    // Borders never install bogons (the BOGONS filter is effective).
    catalog.push_back({"border-" + rs + "-bogon-free",
                       "device = BR-" + rs + "-0 => "
                       "POST || prefix = 192.168.0.0/16 |> count() = 0"});
  }

  // --- reachability floors ------------------------------------------------------
  catalog.push_back({"every-router-has-routes",
                     "forall device: POST |> count() >= 1"});
  catalog.push_back({"isp-prefix-everywhere",
                     "POST || prefix = 100.0.1.0/24 |> distCnt(device) >= " +
                         std::to_string(regions * 3)});

  return catalog;
}

std::string AuditReport::str() const {
  if (clean()) return "audit clean (" + std::to_string(tasksRun) + " tasks)";
  std::string out = "audit found " + std::to_string(findings.size()) +
                    " violation(s) across " + std::to_string(tasksRun) + " tasks:";
  for (const auto& [task, result] : findings) {
    out += "\n  [" + task.name + "] " + task.specification;
    if (!result.violations.empty()) out += "\n    " + result.violations[0].message;
  }
  return out;
}

AuditReport runAuditCatalog(Hoyan& hoyan, const std::vector<AuditTask>& catalog) {
  AuditReport report;
  std::vector<std::string> specifications;
  specifications.reserve(catalog.size());
  for (const AuditTask& task : catalog) specifications.push_back(task.specification);
  const std::vector<RclOutcome> outcomes = hoyan.runAuditTasks(specifications);
  report.tasksRun = outcomes.size();
  for (size_t i = 0; i < outcomes.size(); ++i)
    if (!outcomes[i].result.satisfied)
      report.findings.emplace_back(catalog[i], outcomes[i].result);
  return report;
}

}  // namespace hoyan
