#include "scenario/net_builder.h"

namespace hoyan {

NameId NetBuilder::device(const std::string& name, Asn asn, const VendorProfile& vendor,
                          DeviceRole role, bool inIgp) {
  if (igpDomain_ == kInvalidName) igpDomain_ = Names::id("nb-igp");
  Device d;
  d.name = Names::id(name);
  d.role = role;
  d.loopback = IpAddress::v4(nextLoopback_++);
  d.igpDomain = inIgp ? igpDomain_ : kInvalidName;
  topology_.addDevice(d);
  DeviceConfig config;
  config.hostname = d.name;
  config.vendor = vendor.name;
  config.routerId = d.loopback;
  config.bgp.asn = asn;
  configs_.mutableDevices().emplace(d.name, std::move(config));
  return d.name;
}

std::pair<IpAddress, IpAddress> NetBuilder::link(NameId a, NameId b, uint32_t isisCost,
                                                 double bandwidthBps) {
  Device* deviceA = topology_.findDevice(a);
  Device* deviceB = topology_.findDevice(b);
  const uint32_t base = nextLink_;
  nextLink_ += 4;
  const bool isis = deviceA->igpDomain != kInvalidName &&
                    deviceA->igpDomain == deviceB->igpDomain;
  Interface itfA;
  itfA.name = Names::id(Names::str(a) + ":p" + std::to_string(deviceA->interfaces.size()));
  itfA.address = IpAddress::v4(base + 1);
  itfA.prefixLength = 30;
  itfA.isisEnabled = isis;
  itfA.isisCost = isisCost;
  itfA.bandwidthBps = bandwidthBps;
  deviceA->interfaces.push_back(itfA);
  Interface itfB;
  itfB.name = Names::id(Names::str(b) + ":p" + std::to_string(deviceB->interfaces.size()));
  itfB.address = IpAddress::v4(base + 2);
  itfB.prefixLength = 30;
  itfB.isisEnabled = isis;
  itfB.isisCost = isisCost;
  itfB.bandwidthBps = bandwidthBps;
  deviceB->interfaces.push_back(itfB);
  topology_.addLink(a, itfA.name, b, itfB.name);
  return {itfA.address, itfB.address};
}

NameId NetBuilder::passPolicy(NameId deviceName) {
  const NameId name = Names::id("PASS");
  RoutePolicy& policy = configs_.device(deviceName).routePolicy(name);
  if (policy.nodes.empty()) {
    PolicyNode node;
    node.sequence = 10;
    node.action = PolicyAction::kPermit;
    policy.upsertNode(node);
  }
  return name;
}

void NetBuilder::ibgp(NameId a, NameId b, bool bIsClientOfA) {
  BgpNeighbor toB;
  toB.peerAddress = loopback(b);
  toB.remoteAs = configs_.device(b).bgp.asn;
  toB.importPolicy = passPolicy(a);
  toB.exportPolicy = passPolicy(a);
  toB.routeReflectorClient = bIsClientOfA;
  configs_.device(a).bgp.neighbors.push_back(toB);
  BgpNeighbor toA;
  toA.peerAddress = loopback(a);
  toA.remoteAs = configs_.device(a).bgp.asn;
  toA.importPolicy = passPolicy(b);
  toA.exportPolicy = passPolicy(b);
  configs_.device(b).bgp.neighbors.push_back(toA);
}

void NetBuilder::ebgp(NameId a, NameId b, std::optional<NameId> aImport,
                      std::optional<NameId> aExport) {
  const auto [aAddr, bAddr] = lastLinkAddresses(a, b);
  BgpNeighbor toB;
  toB.peerAddress = bAddr;
  toB.remoteAs = configs_.device(b).bgp.asn;
  toB.importPolicy = aImport;
  toB.exportPolicy = aExport;
  configs_.device(a).bgp.neighbors.push_back(toB);
  BgpNeighbor toA;
  toA.peerAddress = aAddr;
  toA.remoteAs = configs_.device(a).bgp.asn;
  configs_.device(b).bgp.neighbors.push_back(toA);
}

IpAddress NetBuilder::loopback(NameId deviceName) const {
  const Device* found = topology_.findDevice(deviceName);
  return found ? found->loopback : IpAddress{};
}

InputRoute NetBuilder::originate(NameId deviceName, const std::string& prefix) const {
  InputRoute input;
  input.device = deviceName;
  input.route.prefix = *Prefix::parse(prefix);
  input.route.protocol = Protocol::kBgp;
  input.route.attrs.origin = BgpOrigin::kIgp;
  input.route.nexthop = loopback(deviceName);
  input.route.nexthopDevice = deviceName;
  return input;
}

std::pair<IpAddress, IpAddress> NetBuilder::lastLinkAddresses(NameId a, NameId b) const {
  const Device* deviceA = topology_.findDevice(a);
  const Device* deviceB = topology_.findDevice(b);
  for (auto linkIt = topology_.links().rbegin(); linkIt != topology_.links().rend();
       ++linkIt) {
    if (!((linkIt->deviceA == a && linkIt->deviceB == b) ||
          (linkIt->deviceA == b && linkIt->deviceB == a)))
      continue;
    const NameId aItf = linkIt->deviceA == a ? linkIt->interfaceA : linkIt->interfaceB;
    const NameId bItf = linkIt->deviceA == a ? linkIt->interfaceB : linkIt->interfaceA;
    return {deviceA->findInterface(aItf)->address, deviceB->findInterface(bItf)->address};
  }
  return {};
}

}  // namespace hoyan
