#include "scenario/case_studies.h"

#include "core/hoyan.h"
#include "diag/root_cause.h"
#include "diag/validation.h"
#include "monitor/monitoring.h"
#include "obs/provenance.h"
#include "scenario/net_builder.h"
#include "sim/route_sim.h"
#include "sim/traffic_sim.h"

namespace hoyan {
namespace {

Flow makeFlow(NameId ingress, const std::string& src, const std::string& dst,
              double volumeBps, uint16_t port = 80) {
  Flow flow;
  flow.ingressDevice = ingress;
  flow.src = *IpAddress::parse(src);
  flow.dst = *IpAddress::parse(dst);
  flow.dstPort = port;
  flow.volumeBps = volumeBps;
  return flow;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fig. 10(a): shifting traffic to the new WAN.
// ---------------------------------------------------------------------------
CaseStudyResult runNewWanTrafficShiftCase() {
  CaseStudyResult result;
  NetBuilder nb;
  // M1/M2 are parallel routers of AS 65100 (not directly connected — they
  // meet only through old-WAN router A, as in Fig. 10(a)); A is the old WAN
  // (AS 65200), B the new WAN (AS 65300). DC traffic enters at M1 and M2.
  const NameId m1 = nb.device("cs-M1", 65100, vendorB());
  const NameId m2 = nb.device("cs-M2", 65100, vendorB());
  const NameId a = nb.device("cs-A", 65200, vendorB(), DeviceRole::kCore, false);
  const NameId b = nb.device("cs-B", 65300, vendorB(), DeviceRole::kCore, false);

  const IpAddress aToM1 = nb.link(m1, a).second;
  nb.link(m2, a, 10, /*bandwidthBps=*/1e9);  // The link that will overload.
  nb.link(m1, b);
  nb.link(m2, b);

  // The pre-installed ingress policies toward new-WAN router B: node 10
  // denies everything from B; node 20 (the permit for route R) was installed
  // on M2 only — the dormant misconfiguration.
  const NameId newWanIn = Names::id("NEWWAN-IN");
  for (const NameId border : {m1, m2}) {
    RoutePolicy& policy = nb.config(border).routePolicy(newWanIn);
    PolicyNode denyAll;
    denyAll.sequence = 10;
    denyAll.action = PolicyAction::kDeny;
    policy.upsertNode(denyAll);
  }
  {
    DeviceConfig& m2Config = nb.config(m2);
    PrefixList rList;
    rList.name = Names::id("R-LIST");
    rList.family = IpFamily::kV4;
    rList.entries.push_back({true, *Prefix::parse("1.0.0.0/24"), 0, 0});
    m2Config.prefixLists.emplace(rList.name, rList);
    PolicyNode permitR;
    permitR.sequence = 20;
    permitR.action = PolicyAction::kPermit;
    permitR.match.prefixList = rList.name;
    m2Config.routePolicy(newWanIn).upsertNode(permitR);
  }

  nb.ebgp(m1, a, nb.passPolicy(m1), nb.passPolicy(m1));
  nb.ebgp(m2, a, nb.passPolicy(m2), nb.passPolicy(m2));
  nb.ebgp(m1, b, newWanIn, nb.passPolicy(m1));
  nb.ebgp(m2, b, newWanIn, nb.passPolicy(m2));

  // M1's pre-configured default route 1.0.0.0/8 toward A.
  StaticRouteConfig defaultToA;
  defaultToA.prefix = *Prefix::parse("1.0.0.0/8");
  defaultToA.nexthop = aToM1;
  nb.config(m1).staticRoutes.push_back(defaultToA);

  // Inputs: the old WAN (A) and the new WAN (B) both announce 1.0.0.0/24.
  std::vector<InputRoute> inputs = {nb.originate(a, "1.0.0.0/24"),
                                    nb.originate(b, "1.0.0.0/24")};
  // DC traffic to 1.0.0.0/24 enters at M1 and M2: 0.9 Gbps each side.
  std::vector<Flow> flows;
  for (int i = 0; i < 3; ++i) {
    flows.push_back(makeFlow(m1, "20.0.0." + std::to_string(i + 2),
                             "1.0.0." + std::to_string(i + 10), 0.3e9));
    flows.push_back(makeFlow(m2, "20.0.1." + std::to_string(i + 2),
                             "1.0.0." + std::to_string(i + 20), 0.3e9));
  }

  Hoyan hoyan(nb.topologyCopy(), nb.configsCopy());
  hoyan.setInputRoutes(inputs);
  hoyan.setInputFlows(flows);
  hoyan.preprocess();

  // The change (Fig. 10(a)): delete policy node 10 on M1 and M2 so route R
  // from B is permitted; the old WAN (A) withdraws its announcement.
  ChangePlan plan;
  plan.name = "shift-traffic-to-new-wan";
  plan.commands = "device cs-M1\n"
                  "no route-policy NEWWAN-IN node 10\n"
                  "device cs-M2\n"
                  "no route-policy NEWWAN-IN node 10\n";
  plan.withdrawnInputs.push_back({a, *Prefix::parse("1.0.0.0/24")});

  IntentSet intents;
  // (1) Route R installed as best on both M1 and M2.
  intents.rclIntents = {
      "forall device in {cs-M1, cs-M2}: "
      "POST || prefix = 1.0.0.0/24 |> count() >= 1"};
  // (2) Traffic successfully shifted without overloading any link.
  intents.maxLinkUtilization = 0.8;

  const ChangeVerificationResult verification = hoyan.verifyChange(plan, intents);
  result.riskDetected = !verification.satisfied();

  // Narrative: trace one M1-ingress flow on the post-change network.
  NetworkModel updated = hoyan.buildUpdatedModel(plan);
  const FlowPath trace =
      simulateSingleFlow(updated, verification.updatedRibs, flows.front());
  result.narrative = "Change verification: " + verification.report();
  result.narrative += "\nPost-change forwarding of a DC flow: " + trace.str();
  const bool detourObserved = trace.usesLink(m1, a) && trace.usesLink(a, m2) &&
                              trace.usesLink(m2, b);
  result.narrative += detourObserved
                          ? "\n=> The M1-A-M2-B detour of Fig. 10(a) reproduced."
                          : "\n=> WARNING: expected detour not observed.";
  result.riskDetected = result.riskDetected && detourObserved;
  return result;
}

// ---------------------------------------------------------------------------
// Fig. 10(b): changing ISP exits (the ip-prefix/ipv6-prefix VSB).
// ---------------------------------------------------------------------------
CaseStudyResult runIspExitChangeCase() {
  CaseStudyResult result;
  NetBuilder nb;
  const NameId rr = nb.device("cs-RR", 64600, vendorB(), DeviceRole::kRouteReflector);
  const NameId core = nb.device("cs-CORE", 64600, vendorB());
  // Border C runs the vendor whose `ip-prefix` permits all IPv6 by default.
  const NameId c = nb.device("cs-C", 64600, vendorC(), DeviceRole::kBorder);
  const NameId d = nb.device("cs-D", 64600, vendorB(), DeviceRole::kBorder);
  const NameId isp1 = nb.device("cs-ISP1", 65201, vendorB(),
                                DeviceRole::kExternalPeer, false);
  const NameId isp2 = nb.device("cs-ISP2", 65202, vendorB(),
                                DeviceRole::kExternalPeer, false);

  nb.link(core, rr);
  nb.link(core, c);
  nb.link(core, d);
  nb.link(c, isp2, 10, /*bandwidthBps=*/1e9);  // The exit that will overload.
  nb.link(d, isp1, 10, /*bandwidthBps=*/10e9);

  nb.ibgp(rr, core, true);
  nb.ibgp(rr, c, true);
  nb.ibgp(rr, d, true);
  for (const NameId border : {c, d})
    for (BgpNeighbor& neighbor : nb.config(border).bgp.neighbors)
      if (neighbor.remoteAs == 64600) neighbor.nextHopSelf = true;

  // D prefers ISP1 (localPref 120); C takes ISP2 at default preference.
  const NameId isp1In = Names::id("ISP1-IN");
  {
    RoutePolicy& policy = nb.config(d).routePolicy(isp1In);
    PolicyNode node;
    node.sequence = 10;
    node.action = PolicyAction::kPermit;
    node.sets.localPref = 120;
    policy.upsertNode(node);
  }
  const NameId isp2In = Names::id("ISP2-IN");
  {
    RoutePolicy& policy = nb.config(c).routePolicy(isp2In);
    PolicyNode node;
    node.sequence = 10;
    node.action = PolicyAction::kPermit;
    policy.upsertNode(node);
  }
  nb.ebgp(d, isp1, isp1In, nb.passPolicy(d));
  nb.ebgp(c, isp2, isp2In, nb.passPolicy(c));

  // Both ISPs announce the same IPv6 prefixes: one target to be moved and
  // four that must stay on ISP1.
  const std::vector<std::string> prefixes = {"2400:1::/32", "2400:2::/32",
                                             "2400:3::/32", "2400:4::/32",
                                             "2400:5::/32"};
  std::vector<InputRoute> inputs;
  for (const std::string& prefix : prefixes) {
    inputs.push_back(nb.originate(isp1, prefix));
    inputs.push_back(nb.originate(isp2, prefix));
  }
  // IPv6 traffic from the core: 0.6 Gbps per prefix (3 Gbps total).
  std::vector<Flow> flows;
  for (size_t i = 0; i < prefixes.size(); ++i) {
    Flow flow;
    flow.ingressDevice = core;
    flow.src = *IpAddress::parse("2400:f::1");
    flow.dst = *IpAddress::parse("2400:" + std::to_string(i + 1) + "::99");
    flow.dstPort = 443;
    flow.volumeBps = 0.6e9;
    flows.push_back(flow);
  }

  Hoyan hoyan(nb.topologyCopy(), nb.configsCopy());
  hoyan.setInputRoutes(inputs);
  hoyan.setInputFlows(flows);
  hoyan.preprocess();

  // The change: steer the target prefix to exit via ISP2 by raising its
  // local preference at C. The operator mistypes `ip-prefix` instead of
  // `ipv6-prefix` — on C's vendor the v4 list then permits ALL IPv6 routes.
  ChangePlan plan;
  plan.name = "change-isp-exit";
  plan.commands = "device cs-C\n"
                  "ip-prefix EXIT-TARGETS index 10 permit 2400:1::/32\n"
                  "route-policy ISP2-IN node 5 permit\n"
                  " match ip-prefix EXIT-TARGETS\n"
                  " apply local-pref 150\n";

  IntentSet intents;
  const std::string cLoopback = nb.loopback(c).str();
  intents.rclIntents = {
      // The target prefix must move its nexthop to C on all region routers.
      "prefix = 2400:1::/32 and device in {cs-CORE, cs-RR} and routeType = BEST => "
      "POST |> distVals(nexthop) = {" + cLoopback + "}",
      // Other prefixes must remain unchanged.
      "not prefix = 2400:1::/32 => PRE = POST",
  };
  intents.maxLinkUtilization = 0.8;

  const ChangeVerificationResult verification = hoyan.verifyChange(plan, intents);
  result.riskDetected = !verification.satisfied();
  result.narrative = "Change verification: " + verification.report();

  // Confirm the signature of the incident: the steering intent itself
  // verified, but other prefixes moved and the exit overloaded.
  const bool steeringSatisfied =
      !verification.rclOutcomes.empty() && verification.rclOutcomes[0].result.satisfied;
  const bool othersChanged = verification.rclOutcomes.size() > 1 &&
                             !verification.rclOutcomes[1].result.satisfied;
  const bool overloaded = !verification.loadViolations.empty();
  result.narrative += steeringSatisfied
                          ? "\n=> Steering intent verified (as in the paper)."
                          : "\n=> WARNING: steering intent unexpectedly failed.";
  result.narrative += othersChanged
                          ? "\n=> All other IPv6 prefixes changed exit: the "
                            "ip-prefix/ipv6-prefix VSB reproduced."
                          : "\n=> WARNING: other prefixes did not move.";
  result.narrative += overloaded ? "\n=> C->ISP2 overload detected."
                                 : "\n=> WARNING: no overload detected.";
  result.riskDetected = steeringSatisfied && othersChanged && overloaded;
  return result;
}

// ---------------------------------------------------------------------------
// Fig. 9: root-cause analysis of the SR/IGP-cost VSB.
// ---------------------------------------------------------------------------
CaseStudyResult runSrIgpCostDiagnosisCase() {
  CaseStudyResult result;
  // The live network: router A's real vendor treats the IGP cost of
  // SR-reached destinations as 0 (VendorA). Hoyan's model (before the fix)
  // simulated A with generic semantics (VendorB): the faulty model.
  const auto buildNet = [](const VendorProfile& aVendor) {
    NetBuilder nb;
    const NameId ingress = nb.device("f9-IN", 64700, vendorB(), DeviceRole::kDcGateway);
    const NameId a = nb.device("f9-A", 64700, aVendor);
    const NameId b = nb.device("f9-B", 64700, vendorB());
    const NameId c = nb.device("f9-C", 64700, vendorB());
    nb.link(ingress, a, 10, 1e9);
    nb.link(a, b, 10, 1e9);
    nb.link(a, c, 10, 1e9);  // Equal IS-IS costs A-B and A-C.
    nb.ibgp(a, b, /*bIsClientOfA=*/true);
    nb.ibgp(a, c, /*bIsClientOfA=*/true);
    nb.ibgp(a, ingress, /*bIsClientOfA=*/true);
    // Both B and C originate the destination prefix with themselves as
    // nexthop: A sees two candidate routes, equal through IGP cost.
    // A has an SR policy tunnelling traffic for B's loopback.
    SrPolicyConfig sr;
    sr.name = Names::id("SR-TO-B");
    sr.endpoint = nb.loopback(b);
    nb.config(a).srPolicies.push_back(sr);
    return nb;
  };

  NetBuilder liveNet = buildNet(vendorA());
  NetBuilder modelNet = buildNet(vendorB());
  const NameId a = Names::id("f9-A");
  const NameId b = Names::id("f9-B");
  const NameId ingress = Names::id("f9-IN");

  const std::vector<InputRoute> inputs = {liveNet.originate(b, "77.0.0.0/16"),
                                          liveNet.originate(Names::id("f9-C"),
                                                            "77.0.0.0/16")};
  std::vector<Flow> flows = {makeFlow(ingress, "20.0.0.5", "77.0.1.1", 0.8e9)};

  // Record route-decision provenance for the destination prefix in both
  // runs: the Hoyan run's recorder drives §5.2's propagation-graph walk and
  // explain chains; the live run's recorder demonstrates the VSB firing.
  const Prefix dstPrefix = *Prefix::parse("77.0.0.0/16");
  obs::ProvenanceOptions provOptions;
  provOptions.enabled = true;
  provOptions.prefixes.push_back(dstPrefix);
  obs::ProvenanceRecorder liveProv(provOptions);
  obs::ProvenanceRecorder hoyanProv(provOptions);

  RouteSimOptions options;
  options.includeLocalRoutes = true;
  // Ground truth (the live network's converged state).
  options.provenance = &liveProv;
  NetworkModel liveModel = liveNet.build();
  RouteSimResult liveRoutes = simulateRoutes(liveModel, inputs, options);
  liveRoutes.ribs.buildForwardingIndex();
  const TrafficSimResult liveTraffic =
      simulateTraffic(liveModel, liveRoutes.ribs, flows);
  // Hoyan's (mis-modelled) simulation.
  options.provenance = &hoyanProv;
  NetworkModel hoyanModel = modelNet.build();
  RouteSimResult hoyanRoutes = simulateRoutes(hoyanModel, inputs, options);
  hoyanRoutes.ribs.buildForwardingIndex();
  const TrafficSimResult hoyanTraffic =
      simulateTraffic(hoyanModel, hoyanRoutes.ribs, flows);

  // §5.1 automatic accuracy validation: compare simulated loads with SNMP.
  const std::vector<MonitoredLinkLoad> monitored =
      collectMonitoredLinkLoads(liveTraffic.linkLoads);
  const LoadAccuracyReport loadReport = compareLinkLoads(
      hoyanModel.topology, hoyanTraffic.linkLoads, monitored, /*threshold=*/0.10);

  result.narrative = "Accuracy validation found " +
                     std::to_string(loadReport.inaccurateLinks.size()) +
                     " link(s) with load deltas > 10% of bandwidth";
  bool abLinkReported = false;
  for (const LinkLoadDelta& delta : loadReport.inaccurateLinks) {
    result.narrative += "\n  " + delta.str();
    if ((delta.from == a && delta.to == b) || (delta.from == b && delta.to == a))
      abLinkReported = true;
  }

  // §5.2 root-cause analysis.
  const std::vector<RootCauseFinding> findings = analyzeLoadInaccuracies(
      hoyanModel, hoyanRoutes.ribs, liveRoutes.ribs, flows, loadReport,
      /*maxFindings=*/8, &hoyanProv);
  bool vsbLocalised = false;
  for (const RootCauseFinding& finding : findings) {
    result.narrative += "\n" + finding.str();
    if (finding.classification == IssueCategory::kVendorSpecificBehavior &&
        finding.divergence && finding.divergence->device == a)
      vsbLocalised = true;
  }
  // The expert's confirmation: replaying A with the vendor's real semantics,
  // the explain chain for (A, 77.0.0.0/16) names the VSB as the point where
  // the decision diverges from the generic model.
  const std::string liveExplain = liveProv.explainJson(a, dstPrefix);
  const bool vsbExplained =
      liveExplain.find("vsb-applied") != std::string::npos &&
      liveExplain.find("igp-cost-zero-via-sr-tunnel") != std::string::npos;
  result.narrative += "\nExplain(f9-A, 77.0.0.0/16) on the live semantics:\n  " +
                      liveExplain;
  result.riskDetected = abLinkReported && vsbLocalised && vsbExplained;
  result.narrative += result.riskDetected
                          ? "\n=> The Fig. 9 'IGP cost for SR' VSB localised at A "
                            "and named by the explain chain."
                          : "\n=> WARNING: VSB not localised.";
  return result;
}

}  // namespace hoyan
