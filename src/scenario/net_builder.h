// A small fluent builder for hand-crafted topologies+configs (case studies,
// examples, tests). Complements the statistical generator in src/gen.
#pragma once

#include <string>
#include <utility>

#include "config/device_config.h"
#include "config/vendor.h"
#include "proto/network_model.h"
#include "topo/topology.h"

namespace hoyan {

class NetBuilder {
 public:
  NetBuilder() = default;

  // Adds a device with an auto-allocated loopback (10.90.0.x). Returns its
  // interned name.
  NameId device(const std::string& name, Asn asn,
                const VendorProfile& vendor = vendorB(),
                DeviceRole role = DeviceRole::kCore, bool inIgp = true);

  // Connects two devices with a /30; IS-IS enabled when both are in the IGP.
  // Returns (address on a, address on b).
  std::pair<IpAddress, IpAddress> link(NameId a, NameId b, uint32_t isisCost = 10,
                                       double bandwidthBps = 100e9);

  // iBGP over loopbacks, permit-all policies; `bIsClientOfA` marks b as a's
  // route-reflector client.
  void ibgp(NameId a, NameId b, bool bIsClientOfA = false);

  // eBGP over the (last) link between a and b; optional policies on a's side.
  void ebgp(NameId a, NameId b, std::optional<NameId> aImport = std::nullopt,
            std::optional<NameId> aExport = std::nullopt);

  // A permit-all policy named PASS on `device` (created on demand).
  NameId passPolicy(NameId device);

  DeviceConfig& config(NameId device) { return configs_.device(device); }
  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }
  IpAddress loopback(NameId device) const;

  // An input route locally originated at `device`.
  InputRoute originate(NameId device, const std::string& prefix) const;

  NetworkModel build() const { return NetworkModel::build(topology_, configs_); }
  Topology topologyCopy() const { return topology_; }
  NetworkConfig configsCopy() const { return configs_; }

 private:
  // The /30 link addresses between a and b (last link), needed for eBGP.
  std::pair<IpAddress, IpAddress> lastLinkAddresses(NameId a, NameId b) const;

  Topology topology_;
  NetworkConfig configs_;
  uint32_t nextLoopback_ = (10u << 24) | (90u << 16) | 1;  // 10.90.0.1...
  uint32_t nextLink_ = (172u << 24) | (28u << 16);         // 172.28.0.0/30s.
  NameId igpDomain_ = kInvalidName;
};

}  // namespace hoyan
