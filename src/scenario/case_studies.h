// The paper's real-world case studies as executable reproductions:
//   * §6.1 Fig. 10(a) — shifting traffic to the new WAN, where a
//     pre-existing policy gap on M1 black-holes the shift and overloads A-M2;
//   * §6.1 Fig. 10(b) — changing ISP exits, where the ip-prefix/ipv6-prefix
//     vendor behaviour steers *all* IPv6 prefixes to the new exit;
//   * §5.2 Fig. 9   — the accuracy-diagnosis workflow localising the
//     "IGP cost for SR" vendor-specific behaviour.
#pragma once

#include <string>

namespace hoyan {

struct CaseStudyResult {
  bool riskDetected = false;  // Did Hoyan flag the planted problem?
  std::string narrative;      // Human-readable walk-through of what happened.
};

// Fig. 10(a): the traffic shift to new-WAN router B. Expected detections:
// route R missing on M1, and the M1-A-M2-B detour overloading link A-M2.
CaseStudyResult runNewWanTrafficShiftCase();

// Fig. 10(b): the ISP exit change. Expected detections: the
// "others do not change" intent fails (every IPv6 prefix moved to C) and the
// C->ISP2 links overload.
CaseStudyResult runIspExitChangeCase();

// Fig. 9: daily accuracy validation reports link A-B under-simulated; the
// root-cause workflow walks the suspect flow and localises the divergence to
// router A's BGP/IGP/SR interaction (a vendor-specific behaviour).
CaseStudyResult runSrIgpCostDiagnosisCase();

}  // namespace hoyan
