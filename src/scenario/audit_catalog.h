// The daily configuration-auditing catalogue (§6.2): "each day, Hoyan ...
// executes dozens of auditing tasks on the simulated RIBs and traffic
// loads, each defining a high-level invariant that the network should
// hold". This module derives such a catalogue for a generated WAN — group
// consistency, policy hygiene, bogon absence, community tagging, aggregate
// presence, reachability floors — as RCL audit specifications plus a few
// load/topology checks.
#pragma once

#include <string>
#include <vector>

#include "core/hoyan.h"
#include "gen/wan_gen.h"

namespace hoyan {

struct AuditTask {
  std::string name;
  std::string specification;  // RCL, evaluated with PRE=POST=base RIBs.
};

// Builds the RCL audit catalogue for `wan` (two dozen and growing with
// network size: per-region and per-group instantiations).
std::vector<AuditTask> buildAuditCatalog(const GeneratedWan& wan);

struct AuditReport {
  size_t tasksRun = 0;
  std::vector<std::pair<AuditTask, rcl::CheckResult>> findings;  // Violations only.

  bool clean() const { return findings.empty(); }
  std::string str() const;
};

// Runs the catalogue against a preprocessed Hoyan instance.
AuditReport runAuditCatalog(Hoyan& hoyan, const std::vector<AuditTask>& catalog);

}  // namespace hoyan
