#include "scenario/scenarios.h"

#include <algorithm>

#include "sim/traffic_sim.h"

namespace hoyan {
namespace {

// --- small helpers over the generated WAN -----------------------------------

std::string loopbackOf(const ScenarioEnvironment& environment, const std::string& device) {
  const Device* found = environment.wan.topology.findDevice(Names::id(device));
  return found ? found->loopback.str() : "0.0.0.0";
}

// The address of `device`'s interface on its link to `peer`.
std::string linkAddressOf(const ScenarioEnvironment& environment,
                          const std::string& device, const std::string& peer) {
  const Topology& topology = environment.wan.topology;
  for (const Adjacency& adj : topology.adjacenciesOf(Names::id(device))) {
    if (adj.neighbor != Names::id(peer)) continue;
    const Device* self = topology.findDevice(Names::id(device));
    const Interface* itf = self ? self->findInterface(adj.localInterface) : nullptr;
    if (itf) return itf->address.str();
  }
  return "0.0.0.0";
}

Flow probeFlow(const std::string& ingress, const std::string& src, const std::string& dst,
               uint16_t port) {
  Flow flow;
  flow.ingressDevice = Names::id(ingress);
  flow.src = *IpAddress::parse(src);
  flow.dst = *IpAddress::parse(dst);
  flow.dstPort = port;
  flow.volumeBps = 1000;
  return flow;
}

}  // namespace

std::string riskRootCauseName(RiskRootCause cause) {
  switch (cause) {
    case RiskRootCause::kNone: return "none";
    case RiskRootCause::kIncorrectCommands: return "incorrect-commands";
    case RiskRootCause::kDesignFlaw: return "change-plan-design-flaw";
    case RiskRootCause::kExistingMisconfiguration: return "existing-misconfiguration";
    case RiskRootCause::kTopologyIssue: return "topology-issue";
    case RiskRootCause::kOther: return "other";
  }
  return "?";
}

ScenarioEnvironment makeStandardEnvironment(unsigned seed) {
  ScenarioEnvironment environment;
  WanSpec spec;
  spec.regions = 4;
  spec.coresPerRegion = 2;
  spec.bordersPerRegion = 1;
  spec.dcsPerRegion = 2;
  spec.ispsPerBorder = 1;
  spec.seed = seed;
  environment.wan = generateWan(spec);
  WorkloadSpec workload;
  workload.prefixesPerIsp = 16;
  workload.prefixesPerDc = 8;
  workload.attrGroupSize = 4;
  workload.v6Share = 0;
  workload.seed = seed + 7;
  environment.inputs = generateInputRoutes(environment.wan, workload);
  environment.flows = generateFlows(environment.wan, workload, 1500);
  return environment;
}

Hoyan makeHoyan(const ScenarioEnvironment& environment) {
  Hoyan hoyan(environment.wan.topology, environment.wan.configs);
  hoyan.setInputRoutes(environment.inputs);
  hoyan.setInputFlows(environment.flows);
  DistSimOptions options;
  options.workers = 4;
  options.routeSubtasks = 16;
  options.trafficSubtasks = 8;
  hoyan.setSimulationOptions(options);
  hoyan.preprocess();
  return hoyan;
}

// ---------------------------------------------------------------------------
// Table 2: the 12 change types, safe versions.
// ---------------------------------------------------------------------------
std::vector<Scenario> table2ChangeScenarios(const ScenarioEnvironment& environment) {
  std::vector<Scenario> scenarios;

  // 1. OS upgrade: router software replaced; configuration semantics must be
  // identical, so every route remains unchanged.
  {
    Scenario s;
    s.name = "os-upgrade-CORE-1-0";
    s.changeType = "OS upgrade";
    s.description = "Upgrade CORE-1-0's OS; all routes must remain unchanged";
    s.plan.name = s.name;
    s.intents.rclIntents = {"PRE = POST"};
    scenarios.push_back(std::move(s));
  }

  // 2. OS patch: hot patch with a config no-op re-assert.
  {
    Scenario s;
    s.name = "os-patch-BR-1-0";
    s.changeType = "OS patch";
    s.description = "Patch BR-1-0; re-assert an existing session option";
    s.plan.name = s.name;
    s.plan.commands = "device BR-1-0\n"
                      "router bgp 64512\n"
                      " neighbor " + loopbackOf(environment, "RR-1") + " next-hop-self\n";
    s.intents.rclIntents = {"PRE = POST"};
    scenarios.push_back(std::move(s));
  }

  // 3. Route attributes modification: routes for 100.0.3.0/24 get localPref
  // 200 at the region-0 border; everything else stays.
  {
    Scenario s;
    s.name = "route-attr-mod-lp200";
    s.changeType = "Route attributes modification";
    s.description = "Raise localPref of 100.0.3.0/24 at BR-0-0";
    s.plan.name = s.name;
    s.plan.commands =
        "device BR-0-0\n"
        "ip-prefix LP-TARGET index 10 permit 100.0.3.0/24\n"
        "route-policy ISP-IN-0 node 8 permit\n"
        " match ip-prefix LP-TARGET\n"
        " apply local-pref 200\n"
        " apply community add 100:0\n";
    s.intents.rclIntents = {
        "prefix = 100.0.3.0/24 and not device in {ISP-0-0-0} => "
        "POST |> distVals(localPref) = {200}",
        "not prefix = 100.0.3.0/24 => PRE = POST",
    };
    scenarios.push_back(std::move(s));
  }

  // 4. Static route modification: new static on CORE-0-0 must exist exactly
  // on the given set of routers.
  {
    Scenario s;
    s.name = "static-route-add";
    s.changeType = "Static route modification";
    s.description = "Install a static route on CORE-0-0 toward CORE-0-1";
    s.plan.name = s.name;
    s.plan.commands = "device CORE-0-0\n"
                      "static-route 50.0.0.0/16 nexthop " +
                      loopbackOf(environment, "CORE-0-1") + "\n";
    s.intents.rclIntents = {
        // Static routes are not BGP-carried; only CORE-0-0 holds it. (The
        // global RIB includes all protocols.)
        "prefix = 50.0.0.0/16 => POST |> distVals(device) = {CORE-0-0}",
        "prefix = 50.0.0.0/16 => POST |> distVals(protocol) = {static}",
        "not prefix = 50.0.0.0/16 => PRE = POST",
    };
    scenarios.push_back(std::move(s));
  }

  // 5. PBR modification: flows from DCGW-0-0 through CORE-0-0 toward ISP-1
  // prefixes are steered via RR-0.
  {
    Scenario s;
    s.name = "pbr-steer-via-rr";
    s.changeType = "PBR modification";
    s.description = "PBR on CORE-0-0 steers ISP-1-bound flows via RR-0";
    s.plan.name = s.name;
    const Topology& topology = environment.wan.topology;
    std::string inInterface;
    for (const Adjacency& adj : topology.adjacenciesOf(Names::id("CORE-0-0")))
      if (adj.neighbor == Names::id("DCGW-0-0")) inInterface = Names::str(adj.localInterface);
    s.plan.commands = "device CORE-0-0\n"
                      "pbr-policy STEER rule dst 100.1.0.0/16 nexthop " +
                      loopbackOf(environment, "RR-0") + "\n" +
                      "apply pbr STEER interface " + inInterface + "\n";
    PathChangeIntent intent;
    intent.fromPath = {Names::id("DCGW-0-0"), Names::id("CORE-0-0")};
    intent.toPath = {Names::id("CORE-0-0"), Names::id("RR-0")};
    intent.dstFilter = *Prefix::parse("100.1.0.0/16");
    intent.requireLeaveOldPath = false;
    s.intents.pathIntents.push_back(intent);
    scenarios.push_back(std::move(s));
  }

  // 6. ACL modification: flows to 100.2.0.0/16:443 passing CORE-0-0 from
  // DCGW-0-1 must be blocked; port 80 must keep working.
  {
    Scenario s;
    s.name = "acl-block-443";
    s.changeType = "ACL modification";
    s.description = "Block port 443 toward ISP-2 prefixes at CORE-0-0";
    s.plan.name = s.name;
    const Topology& topology = environment.wan.topology;
    std::string inInterface;
    for (const Adjacency& adj : topology.adjacenciesOf(Names::id("CORE-0-0")))
      if (adj.neighbor == Names::id("DCGW-0-1")) inInterface = Names::str(adj.localInterface);
    s.plan.commands = "device CORE-0-0\n"
                      "acl BLOCK-443 rule deny dst 100.2.0.0/16 port 443\n"
                      "acl BLOCK-443 rule permit\n"
                      "apply acl BLOCK-443 interface " + inInterface + "\n";
    s.mustBeBlocked.push_back(probeFlow("DCGW-0-1", "20.1.5.5", "100.2.1.9", 443));
    s.mustRemainReachable.push_back(probeFlow("DCGW-0-1", "20.1.5.5", "100.2.1.9", 80));
    scenarios.push_back(std::move(s));
  }

  // 7. Adding new links: a second BR-0-0 <-> ISP-0-0-0 link with a second
  // eBGP session; the border's nexthop count for ISP-0 prefixes increases.
  {
    Scenario s;
    s.name = "add-link-br0-isp0";
    s.changeType = "Adding new links";
    s.description = "Parallel link + session between BR-0-0 and ISP-0-0-0";
    s.plan.name = s.name;
    s.plan.topologyChange.addLinks.push_back(
        {Names::id("BR-0-0"), Names::id("BR-0-0:new0"), Names::id("ISP-0-0-0"),
         Names::id("ISP-0-0-0:new0")});
    s.plan.commands =
        "device BR-0-0\n"
        "interface BR-0-0:new0\n"
        " address 172.31.0.1/30\n"
        "router bgp 64512\n"
        " neighbor 172.31.0.2 remote-as 65000\n"
        " neighbor 172.31.0.2 import-policy ISP-IN-0\n"
        " neighbor 172.31.0.2 export-policy ISP-OUT\n"
        "device ISP-0-0-0\n"
        "interface ISP-0-0-0:new0\n"
        " address 172.31.0.2/30\n"
        "router bgp 65000\n"
        " neighbor 172.31.0.1 remote-as 64512\n";
    s.intents.rclIntents = {
        "device = BR-0-0 and prefix = 100.0.1.0/24 => POST |> distCnt(nexthop) >= 2",
        "device = BR-0-0 and prefix = 100.0.1.0/24 => PRE |> distCnt(nexthop) = 1",
    };
    scenarios.push_back(std::move(s));
  }

  // 8. Adding new routers: CORE-0-2 joins region 0; its BGP routes must
  // mirror CORE-0-1's.
  {
    Scenario s;
    s.name = "add-router-core-0-2";
    s.changeType = "Adding new routers";
    s.description = "Add CORE-0-2 with iBGP to RR-0 and IS-IS into the WAN";
    s.plan.name = s.name;
    Device newCore;
    newCore.name = Names::id("CORE-0-2");
    newCore.role = DeviceRole::kCore;
    newCore.loopback = *IpAddress::parse("9.9.9.9");
    newCore.igpDomain = Names::id("igp-wan");
    s.plan.topologyChange.addDevices.push_back(newCore);
    s.plan.topologyChange.addLinks.push_back(
        {Names::id("CORE-0-2"), Names::id("CORE-0-2:e0"), Names::id("CORE-0-0"),
         Names::id("CORE-0-0:new1")});
    s.plan.topologyChange.addLinks.push_back(
        {Names::id("CORE-0-2"), Names::id("CORE-0-2:e1"), Names::id("RR-0"),
         Names::id("RR-0:new1")});
    const std::string rrLoopback = loopbackOf(environment, "RR-0");
    s.plan.commands =
        "device CORE-0-2\n"
        "vendor VendorA\n"
        "hostname CORE-0-2\n"
        "router-id 9.9.9.9\n"
        "interface CORE-0-2:e0\n"
        " address 172.31.1.1/30\n"
        " isis enable\n"
        "interface CORE-0-2:e1\n"
        " address 172.31.1.5/30\n"
        " isis enable\n"
        "route-policy PASS node 10 permit\n"
        "router bgp 64512\n"
        " neighbor " + rrLoopback + " remote-as 64512\n"
        " neighbor " + rrLoopback + " import-policy PASS\n"
        " neighbor " + rrLoopback + " export-policy PASS\n"
        "device CORE-0-0\n"
        "interface CORE-0-0:new1\n"
        " address 172.31.1.2/30\n"
        " isis enable\n"
        "device RR-0\n"
        "interface RR-0:new1\n"
        " address 172.31.1.6/30\n"
        " isis enable\n"
        "router bgp 64512\n"
        " neighbor 9.9.9.9 remote-as 64512\n"
        " neighbor 9.9.9.9 import-policy PASS\n"
        " neighbor 9.9.9.9 export-policy PASS\n"
        " neighbor 9.9.9.9 reflect-client\n";
    s.intents.rclIntents = {
        // The new router carries BGP routes...
        "POST || device = CORE-0-2 || protocol = bgp |> count() >= 1",
        // ...and for every prefix CORE-0-1 knows via BGP, CORE-0-2 knows too.
        "protocol = bgp => forall prefix: "
        "(POST || device = CORE-0-1 |> count() >= 1) imply "
        "(POST || device = CORE-0-2 |> count() >= 1)",
    };
    scenarios.push_back(std::move(s));
  }

  // 9. Topology adjustment: retire the CORE-0-0 <-> CORE-1-0 inter-region
  // link; region-0-to-ISP-1 flows must move to the CORE-0-1/CORE-1-1 pair.
  {
    Scenario s;
    s.name = "topology-retire-link";
    s.changeType = "Topology adjustment";
    s.description = "Remove the CORE-0-0<->CORE-1-0 link for maintenance";
    s.plan.name = s.name;
    s.plan.topologyChange.removeLinks.push_back(
        {Names::id("CORE-0-0"), Names::id("CORE-1-0")});
    PathChangeIntent intent;
    intent.fromPath = {Names::id("CORE-0-0"), Names::id("CORE-1-0")};
    intent.toPath = {Names::id("CORE-0-1"), Names::id("CORE-1-1")};
    intent.dstFilter = *Prefix::parse("100.1.0.0/16");
    s.intents.pathIntents.push_back(intent);
    scenarios.push_back(std::move(s));
  }

  // 10. New prefix announcement: ISP-0 announces 100.77.0.0/16; it must be
  // installed network-wide.
  {
    Scenario s;
    s.name = "new-prefix-announcement";
    s.changeType = "New prefix announcement";
    s.description = "ISP-0-0-0 announces 100.77.0.0/16";
    s.plan.name = s.name;
    InputRoute announcement;
    announcement.device = Names::id("ISP-0-0-0");
    announcement.route.prefix = *Prefix::parse("100.77.0.0/16");
    announcement.route.protocol = Protocol::kBgp;
    announcement.route.attrs.origin = BgpOrigin::kIgp;
    announcement.route.nexthop =
        environment.wan.topology.findDevice(Names::id("ISP-0-0-0"))->loopback;
    announcement.route.nexthopDevice = announcement.device;
    s.plan.newInputRoutes.push_back(announcement);
    s.intents.rclIntents = {
        "POST || prefix = 100.77.0.0/16 |> distCnt(device) >= 20",
        "PRE || prefix = 100.77.0.0/16 |> count() = 0",
    };
    scenarios.push_back(std::move(s));
  }

  // 11. Prefix reclamation: DC prefix 20.0.3.0/24 is withdrawn; it must not
  // appear on any router afterwards.
  {
    Scenario s;
    s.name = "prefix-reclamation";
    s.changeType = "Prefix reclamation";
    s.description = "Reclaim DC prefix 20.0.3.0/24";
    s.plan.name = s.name;
    s.plan.withdrawnPrefixes.push_back(*Prefix::parse("20.0.3.0/24"));
    s.intents.rclIntents = {
        "POST || prefix = 20.0.3.0/24 |> count() = 0",
        "PRE || prefix = 20.0.3.0/24 |> count() >= 1",
    };
    scenarios.push_back(std::move(s));
  }

  // 12. Traffic steering: an SR policy on CORE-0-0 tunnels BR-1-0-bound
  // traffic via the CORE-2-0 chord; BGP nexthops stay, flows detour, links
  // stay unloaded.
  {
    Scenario s;
    s.name = "traffic-steering-sr";
    s.changeType = "Traffic steering";
    s.description = "SR-TE tunnel on CORE-0-0 toward BR-1-0 via CORE-2-0";
    s.plan.name = s.name;
    s.plan.commands = "device CORE-0-0\n"
                      "sr-policy TE1 endpoint " + loopbackOf(environment, "BR-1-0") +
                      " color 100 segments " + loopbackOf(environment, "CORE-2-0") + "\n";
    PathChangeIntent intent;
    intent.fromPath = {Names::id("CORE-0-0"), Names::id("CORE-1-0")};
    intent.toPath = {Names::id("CORE-0-0"), Names::id("CORE-2-0")};
    intent.dstFilter = *Prefix::parse("100.1.0.0/16");
    s.intents.pathIntents.push_back(intent);
    s.intents.rclIntents = {
        "prefix = 100.1.2.0/24 and device = CORE-0-0 => "
        "PRE |> distVals(nexthop) = POST |> distVals(nexthop)",
    };
    s.intents.maxLinkUtilization = 0.8;
    scenarios.push_back(std::move(s));
  }

  return scenarios;
}

// ---------------------------------------------------------------------------
// Table 6: risky changes.
// ---------------------------------------------------------------------------
namespace {

// A1: typo in the target router name — the change never lands.
Scenario riskDeviceNameTypo(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-device-typo-r" + r;
  s.changeType = "Route attributes modification";
  s.description = "Commands target BR-" + r + "-9 which does not exist";
  s.risk = RiskRootCause::kIncorrectCommands;
  s.plan.name = s.name;
  s.plan.commands = "device BR-" + r + "-9\n"
                    "ip-prefix LP-TARGET index 10 permit 100." + r + ".3.0/24\n"
                    "route-policy ISP-IN-" + r + " node 8 permit\n"
                    " match ip-prefix LP-TARGET\n"
                    " apply local-pref 200\n"
                    " apply community add 100:" + r + "\n";
  s.intents.rclIntents = {
      "prefix = 100." + r + ".3.0/24 and not device in {ISP-" + r + "-0-0} => "
      "POST |> distVals(localPref) = {200}",
  };
  return s;
}

// A2: wrong prefix mask — the policy hits a whole /16 instead of one /24.
Scenario riskWrongPrefixMask(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-wrong-mask-r" + r;
  s.changeType = "Route attributes modification";
  s.description = "Prefix list written /16 instead of /24: unintended scope";
  s.risk = RiskRootCause::kIncorrectCommands;
  s.plan.name = s.name;
  s.plan.commands = "device BR-" + r + "-0\n"
                    "ip-prefix LP-TARGET index 10 permit 100." + r + ".0.0/16 le 32\n"
                    "route-policy ISP-IN-" + r + " node 8 permit\n"
                    " match ip-prefix LP-TARGET\n"
                    " apply local-pref 200\n"
                    " apply community add 100:" + r + "\n";
  s.intents.rclIntents = {
      "prefix = 100." + r + ".3.0/24 and not device in {ISP-" + r + "-0-0} => "
      "POST |> distVals(localPref) = {200}",
      // The critical "others do not change" catches the bad mask.
      "not prefix = 100." + r + ".3.0/24 => PRE = POST",
  };
  return s;
}

// A3: typo in the filter name — on this border's vendor an undefined filter
// matches everything.
Scenario riskFilterNameTypo(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-filter-typo-r" + r;
  s.changeType = "Route attributes modification";
  s.description = "match references LP-TARGETS (undefined); VendorC matches all";
  s.risk = RiskRootCause::kIncorrectCommands;
  s.plan.name = s.name;
  s.plan.commands = "device BR-" + r + "-0\n"
                    "ip-prefix LP-TARGET index 10 permit 100." + r + ".3.0/24\n"
                    "route-policy ISP-IN-" + r + " node 8 permit\n"
                    " match ip-prefix LP-TARGETS\n"  // <-- typo
                    " apply local-pref 200\n"
                    " apply community add 100:" + r + "\n";
  s.intents.rclIntents = {
      "not prefix = 100." + r + ".3.0/24 => PRE = POST",
  };
  return s;
}

// A4: wrong community value in the command.
Scenario riskWrongCommunity(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-wrong-community-r" + r;
  s.changeType = "Route attributes modification";
  s.description = "Operator applies 100:99 instead of the intended 100:9";
  s.risk = RiskRootCause::kIncorrectCommands;
  s.plan.name = s.name;
  s.plan.commands = "device BR-" + r + "-0\n"
                    "ip-prefix LP-TARGET index 10 permit 100." + r + ".3.0/24\n"
                    "route-policy ISP-IN-" + r + " node 8 permit\n"
                    " match ip-prefix LP-TARGET\n"
                    " apply community add 100:99\n"  // Intended: 100:9.
                    " apply community add 100:" + r + "\n";
  s.intents.rclIntents = {
      "prefix = 100." + r + ".3.0/24 and not device in {ISP-" + r + "-0-0} => "
      "POST || (communities contains 100:9) |> count() >= 1",
  };
  return s;
}

// B1: steering local-pref too low to take effect.
Scenario riskIneffectiveLocalPref(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-lp-too-low-r" + r;
  s.changeType = "Traffic steering";
  s.description = "localPref 100 (the default) cannot move the best path";
  s.risk = RiskRootCause::kDesignFlaw;
  s.plan.name = s.name;
  // Intended: make BR's route win with lp 200; actually sets 100 == default.
  s.plan.commands = "device BR-" + r + "-0\n"
                    "ip-prefix LP-TARGET index 10 permit 100." + r + ".3.0/24\n"
                    "route-policy ISP-IN-" + r + " node 8 permit\n"
                    " match ip-prefix LP-TARGET\n"
                    " apply local-pref 100\n"
                    " apply community add 100:" + r + "\n";
  s.intents.rclIntents = {
      "prefix = 100." + r + ".3.0/24 and not device in {ISP-" + r + "-0-0} => "
      "POST |> distVals(localPref) = {200}",
  };
  return s;
}

// B2: undersized link chosen for steered traffic (overload).
Scenario riskUndersizedLink(const ScenarioEnvironment& environment, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-undersized-link-r" + r;
  s.changeType = "Traffic steering";
  s.description = "Steered traffic exceeds the chosen link's bandwidth";
  s.risk = RiskRootCause::kDesignFlaw;
  s.plan.name = s.name;
  // The design squeezes DCGW uplink bandwidth (planned migration to a small
  // interim circuit) — flows now overload it.
  const Topology& topology = environment.wan.topology;
  std::string uplink;
  for (const Adjacency& adj : topology.adjacenciesOf(Names::id("DCGW-" + r + "-0")))
    if (adj.neighbor == Names::id("CORE-" + r + "-0"))
      uplink = Names::str(adj.localInterface);
  s.plan.commands = "device DCGW-" + r + "-0\n"
                    "interface " + uplink + "\n"
                    " bandwidth 10000\n";  // 10 kbps interim circuit.
  s.intents.maxLinkUtilization = 0.8;
  return s;
}

// B3: MED misconfiguration flips the intended primary path.
Scenario riskBadMed(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-bad-med-r" + r;
  s.changeType = "Route attributes modification";
  s.description = "MED applied to the wrong node changes best-path selection";
  s.risk = RiskRootCause::kDesignFlaw;
  s.plan.name = s.name;
  // Intent says nothing changes for other prefixes, but the operator applies
  // the MED on the catch-all node 10 (design flaw), touching every route
  // from this ISP.
  s.plan.commands = "device BR-" + r + "-0\n"
                    "route-policy ISP-IN-" + r + " node 10 permit\n"
                    " apply med 500\n"
                    " apply community add 100:" + r + "\n";
  s.intents.rclIntents = {
      "prefix = 100." + r + ".3.0/24 and not device in {ISP-" + r + "-0-0} => "
      "POST |> distVals(med) = {500}",
      "not prefix = 100." + r + ".3.0/24 => PRE = POST",
  };
  return s;
}

// B4: a deny node sequenced before the permit node kills the session's
// routes.
Scenario riskDenySequencedFirst(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-deny-first-r" + r;
  s.changeType = "Configuration maintenance";
  s.description = "New deny node lands before the permit node; routes vanish";
  s.risk = RiskRootCause::kDesignFlaw;
  s.plan.name = s.name;
  s.plan.commands = "device BR-" + r + "-0\n"
                    "route-policy ISP-IN-" + r + " node 7 deny\n";
  s.intents.rclIntents = {
      "PRE || prefix = 100." + r + ".1.0/24 = POST || prefix = 100." + r + ".1.0/24",
  };
  return s;
}

// B5: removing next-hop-self leaves reflected routes unresolvable.
Scenario riskRemoveNextHopSelf(const ScenarioEnvironment& environment, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-no-nhs-r" + r;
  s.changeType = "Configuration maintenance";
  s.description = "next-hop-self removed on the border; eBGP nexthops become "
                  "unresolvable inside the WAN";
  s.risk = RiskRootCause::kDesignFlaw;
  s.plan.name = s.name;
  s.plan.commands = "device BR-" + r + "-0\n"
                    "router bgp 64512\n"
                    " no neighbor " + loopbackOf(environment, "RR-" + r) +
                    " next-hop-self\n";
  s.intents.rclIntents = {
      "PRE || prefix = 100." + r + ".1.0/24 |> distCnt(device) = "
      "POST || prefix = 100." + r + ".1.0/24 |> distCnt(device)",
  };
  return s;
}

// C1: Fig. 10(a)-style — a pre-existing policy gap on one of two parallel
// routers is triggered by the change.
Scenario riskExistingPolicyGap(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-existing-policy-gap-r" + r;
  s.changeType = "Traffic steering";
  s.description = "Pre-existing misconfig: CORE-" + r + "-0's import policy "
                  "denies routes tagged 250:1 (a fat-fingered node installed "
                  "long ago, harmless until now); the change starts tagging "
                  "the steered prefix with 250:1";
  s.risk = RiskRootCause::kExistingMisconfiguration;
  s.plan.name = s.name;
  // Phase 1 (pre-existing state, installed earlier and dormant): the stray
  // deny node on CORE-r-0 only. Phase 2 (the change): the border tags the
  // steered prefix with 250:1, triggering the dormant deny.
  s.plan.commands =
      "device CORE-" + r + "-0\n"
      "community-list STEERED index 10 permit 250:1\n"
      "route-policy PASS node 5 deny\n"
      " match community-list STEERED\n"
      "device BR-" + r + "-0\n"
      "ip-prefix LP-TARGET index 10 permit 100." + r + ".3.0/24\n"
      "route-policy ISP-IN-" + r + " node 8 permit\n"
      " match ip-prefix LP-TARGET\n"
      " apply community add 250:1\n"
      " apply community add 100:" + r + "\n";
  s.intents.rclIntents = {
      // Both parallel cores must install the steered route (Fig. 10(a)'s
      // "route R installed as best on both M1 and M2").
      "forall device in {CORE-" + r + "-0, CORE-" + r + "-1}: "
      "POST || prefix = 100." + r + ".3.0/24 |> count() >= 1",
  };
  return s;
}

// C2: a stale discard static hijacks a newly announced prefix.
Scenario riskStaleDiscardStatic(const ScenarioEnvironment& environment, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-stale-discard-r" + r;
  s.changeType = "New prefix announcement";
  s.description = "A forgotten discard static on CORE-" + r + "-0 blackholes "
                  "the newly announced prefix";
  s.risk = RiskRootCause::kExistingMisconfiguration;
  s.plan.name = s.name;
  // Pre-existing: the stale discard route (installed long ago).
  s.plan.commands = "device CORE-" + r + "-0\n"
                    "static-route 100.88.0.0/16 discard preference 1\n";
  InputRoute announcement;
  announcement.device = Names::id("ISP-" + r + "-0-0");
  announcement.route.prefix = *Prefix::parse("100.88.0.0/16");
  announcement.route.protocol = Protocol::kBgp;
  announcement.route.attrs.origin = BgpOrigin::kIgp;
  announcement.route.nexthop =
      environment.wan.topology.findDevice(Names::id("ISP-" + r + "-0-0"))->loopback;
  announcement.route.nexthopDevice = announcement.device;
  s.plan.newInputRoutes.push_back(announcement);
  s.intents.rclIntents = {
      // The new prefix's best route must be BGP everywhere it appears.
      "prefix = 100.88.0.0/16 and routeType = BEST => "
      "POST |> distVals(protocol) = {bgp}",
  };
  return s;
}

// C3: a session that always pointed at an undefined policy starts mattering.
Scenario riskUndefinedPolicyReference(const ScenarioEnvironment& environment,
                                      int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-undefined-policy-r" + r;
  s.changeType = "Adding new links";
  s.description = "The new session references a policy that was never "
                  "defined on this VendorB RR; VendorB rejects all updates";
  s.risk = RiskRootCause::kExistingMisconfiguration;
  s.plan.name = s.name;
  // The change: DCGW-r-1 is re-homed to the RR with a (long-missing) policy
  // name GOLD-IN that nobody ever defined on the RR.
  s.plan.commands = "device RR-" + r + "\n"
                    "router bgp 64512\n"
                    " neighbor " + loopbackOf(environment, "DCGW-" + r + "-1") +
                    " import-policy GOLD-IN\n";
  s.intents.rclIntents = {
      // The DC's aggregate must still be present on the RR.
      "device = RR-" + r + " and prefix = 20." + std::to_string(region * 2 + 1) +
      ".0.0/16 => POST |> count() >= 1",
  };
  return s;
}

// D1: maintenance removes a link while the redundant path is already gone.
Scenario riskMaintenanceWithoutRedundancy(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-topology-isolation-r" + r;
  s.changeType = "Topology adjustment";
  s.description = "BR-" + r + "-0's CORE-" + r + "-0 uplink is removed while "
                  "CORE-" + r + "-1 is already down: the border is isolated";
  s.risk = RiskRootCause::kTopologyIssue;
  s.plan.name = s.name;
  s.plan.topologyChange.removeDevices.push_back(Names::id("CORE-" + r + "-1"));
  s.plan.topologyChange.removeLinks.push_back(
      {Names::id("BR-" + r + "-0"), Names::id("CORE-" + r + "-0")});
  s.intents.rclIntents = {
      "POST || prefix = 100." + r + ".1.0/24 |> distCnt(device) >= 10",
  };
  return s;
}

// E1: the specification is incomplete — intents pass but a canary probe
// catches the side effect (the §7 "correct specification" lesson).
Scenario riskIncompleteSpecification(const ScenarioEnvironment&, int region) {
  Scenario s;
  const std::string r = std::to_string(region);
  s.name = "risk-incomplete-spec-r" + r;
  s.changeType = "ACL modification";
  s.description = "The ACL blocks more than intended; the written intents "
                  "pass but the canary probe fails";
  s.risk = RiskRootCause::kOther;
  s.plan.name = s.name;
  // Intended: block only port 443 to 100.<r>.1.0/24. Actual: the rule's dst
  // is the whole /16 (and the operator's intents never check other ports).
  s.plan.commands = "device BR-" + r + "-0\n"
                    "acl OOPS rule deny dst 100." + r + ".0.0/16\n"
                    "acl OOPS rule permit\n";
  // Apply on every BR interface facing CORE-r-0/1:
  s.plan.commands += "apply acl OOPS interface BR-" + r + "-0:eth0\n";
  s.intents.rclIntents = {"PRE = POST"};  // Control plane indeed unchanged.
  s.mustRemainReachable.push_back(
      probeFlow("DCGW-" + r + "-0", "20." + std::to_string(region * 2) + ".5.5",
                "100." + r + ".2.9", 80));
  return s;
}

}  // namespace

std::vector<Scenario> table6RiskScenarios(const ScenarioEnvironment& environment) {
  std::vector<Scenario> scenarios;
  // Incorrect commands: 12 (37.5%).
  for (int region = 0; region < 3; ++region) {
    scenarios.push_back(riskDeviceNameTypo(environment, region));
    scenarios.push_back(riskWrongPrefixMask(environment, region));
    scenarios.push_back(riskFilterNameTypo(environment, region));
    scenarios.push_back(riskWrongCommunity(environment, region));
  }
  // Change-plan design flaws: 11 (34.4%).
  for (int region = 0; region < 3; ++region)
    scenarios.push_back(riskIneffectiveLocalPref(environment, region));
  for (int region = 0; region < 2; ++region) {
    scenarios.push_back(riskUndersizedLink(environment, region));
    scenarios.push_back(riskBadMed(environment, region));
    scenarios.push_back(riskDenySequencedFirst(environment, region));
    scenarios.push_back(riskRemoveNextHopSelf(environment, region));
  }
  // Existing misconfigurations: 5 (15.6%).
  scenarios.push_back(riskExistingPolicyGap(environment, 0));
  scenarios.push_back(riskExistingPolicyGap(environment, 1));
  scenarios.push_back(riskStaleDiscardStatic(environment, 0));
  scenarios.push_back(riskStaleDiscardStatic(environment, 2));
  scenarios.push_back(riskUndefinedPolicyReference(environment, 0));
  // Topology issues: 2 (6.3%).
  scenarios.push_back(riskMaintenanceWithoutRedundancy(environment, 1));
  scenarios.push_back(riskMaintenanceWithoutRedundancy(environment, 2));
  // Others: 2 (6.2%).
  scenarios.push_back(riskIncompleteSpecification(environment, 0));
  scenarios.push_back(riskIncompleteSpecification(environment, 3));
  return scenarios;
}

std::string ScenarioOutcome::str() const {
  std::string out = name + " [" + riskRootCauseName(risk) + "] ";
  out += flagged ? "FLAGGED" : "clean";
  out += asExpected ? " (as expected)" : " (UNEXPECTED)";
  return out;
}

ScenarioOutcome runScenario(Hoyan& hoyan, const Scenario& scenario) {
  ScenarioOutcome outcome;
  outcome.name = scenario.name;
  outcome.risk = scenario.risk;
  outcome.verification = hoyan.verifyChange(scenario.plan, scenario.intents);

  // Data-plane probes on the post-change network.
  if (!scenario.mustBeBlocked.empty() || !scenario.mustRemainReachable.empty()) {
    NetworkModel updated = hoyan.buildUpdatedModel(scenario.plan);
    for (const Flow& flow : scenario.mustBeBlocked) {
      const FlowPath path = simulateSingleFlow(updated, outcome.verification.updatedRibs, flow);
      if (path.outcome != FlowOutcome::kDeniedAcl) outcome.probeViolations = true;
    }
    for (const Flow& flow : scenario.mustRemainReachable) {
      const FlowPath path = simulateSingleFlow(updated, outcome.verification.updatedRibs, flow);
      if (path.outcome != FlowOutcome::kDelivered && path.outcome != FlowOutcome::kExited)
        outcome.probeViolations = true;
    }
  }
  outcome.flagged = !outcome.verification.satisfied() || outcome.probeViolations;
  outcome.asExpected = outcome.flagged == scenario.expectViolation();
  return outcome;
}

}  // namespace hoyan
