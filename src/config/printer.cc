#include "config/printer.h"

namespace hoyan {
namespace {

void printPolicyNode(std::string& out, const RoutePolicy& policy, const PolicyNode& node) {
  out += "route-policy " + Names::str(policy.name) + " node " + std::to_string(node.sequence);
  if (node.action == PolicyAction::kPermit) out += " permit";
  if (node.action == PolicyAction::kDeny) out += " deny";
  out += '\n';
  if (node.match.prefixList)
    out += " match ip-prefix " + Names::str(*node.match.prefixList) + "\n";
  if (node.match.communityList)
    out += " match community-list " + Names::str(*node.match.communityList) + "\n";
  if (node.match.asPathList)
    out += " match as-path-list " + Names::str(*node.match.asPathList) + "\n";
  if (node.match.nexthop) out += " match nexthop " + node.match.nexthop->str() + "\n";
  if (node.match.protocol) {
    out += " match protocol ";
    switch (*node.match.protocol) {
      case Protocolish::kDirect: out += "direct"; break;
      case Protocolish::kStatic: out += "static"; break;
      case Protocolish::kIsis: out += "isis"; break;
      case Protocolish::kBgp: out += "bgp"; break;
      case Protocolish::kAggregate: out += "bgp"; break;
    }
    out += '\n';
  }
  if (node.sets.clearCommunities) out += " apply community none\n";
  if (node.sets.localPref) out += " apply local-pref " + std::to_string(*node.sets.localPref) + "\n";
  if (node.sets.med) out += " apply med " + std::to_string(*node.sets.med) + "\n";
  if (node.sets.weight) out += " apply weight " + std::to_string(*node.sets.weight) + "\n";
  if (node.sets.nexthop) out += " apply nexthop " + node.sets.nexthop->str() + "\n";
  for (const Community c : node.sets.addCommunities)
    out += " apply community add " + c.str() + "\n";
  for (const Community c : node.sets.deleteCommunities)
    out += " apply community delete " + c.str() + "\n";
  if (node.sets.prepend)
    out += " apply as-path prepend " + std::to_string(node.sets.prepend->first) + " " +
           std::to_string(node.sets.prepend->second) + "\n";
  if (node.sets.overwriteAsPath) {
    out += " apply as-path overwrite";
    for (const Asn asn : *node.sets.overwriteAsPath) out += " " + std::to_string(asn);
    out += '\n';
  }
  out += "!\n";
}

std::string routeTargetStr(uint64_t rt) {
  return std::to_string(rt >> 32) + ":" + std::to_string(rt & 0xffffffffULL);
}

}  // namespace

std::string printDeviceConfig(const DeviceConfig& config, const Device* device) {
  std::string out;
  if (config.vendor != kInvalidName) out += "vendor " + Names::str(config.vendor) + "\n";
  if (config.hostname != kInvalidName) out += "hostname " + Names::str(config.hostname) + "\n";
  out += "router-id " + config.routerId.str() + "\n";
  if (config.isolated) out += "isolate\n";

  for (const auto& [name, vrf] : config.vrfs) {
    out += "vrf " + Names::str(name) + "\n";
    for (const uint64_t rt : vrf.importRouteTargets)
      out += " import-rt " + routeTargetStr(rt) + "\n";
    for (const uint64_t rt : vrf.exportRouteTargets)
      out += " export-rt " + routeTargetStr(rt) + "\n";
    if (vrf.exportPolicy) out += " export-policy " + Names::str(*vrf.exportPolicy) + "\n";
    out += "!\n";
  }

  if (device) {
    for (const Interface& itf : device->interfaces) {
      out += "interface " + Names::str(itf.name) + "\n";
      out += " address " + itf.address.str() + "/" + std::to_string(itf.prefixLength) + "\n";
      if (itf.vrf != kInvalidName) out += " vrf " + Names::str(itf.vrf) + "\n";
      if (itf.isisEnabled) {
        out += " isis enable\n";
        out += " isis cost " + std::to_string(itf.isisCost) + "\n";
      }
      out += " bandwidth " + std::to_string(static_cast<uint64_t>(itf.bandwidthBps)) + "\n";
      if (itf.shutdown) out += " shutdown\n";
      out += "!\n";
    }
  }

  for (const auto& [name, list] : config.prefixLists) {
    const std::string keyword = list.family == IpFamily::kV6 ? "ipv6-prefix" : "ip-prefix";
    int index = 10;
    for (const PrefixListEntry& entry : list.entries) {
      out += keyword + " " + Names::str(name) + " index " + std::to_string(index) + " " +
             (entry.permit ? "permit " : "deny ") + entry.prefix.str();
      if (entry.ge) out += " ge " + std::to_string(entry.ge);
      if (entry.le) out += " le " + std::to_string(entry.le);
      out += '\n';
      index += 10;
    }
  }
  for (const auto& [name, list] : config.communityLists) {
    int index = 10;
    for (const CommunityListEntry& entry : list.entries) {
      out += "community-list " + Names::str(name) + " index " + std::to_string(index) + " " +
             (entry.permit ? "permit " : "deny ") + entry.community.str() + "\n";
      index += 10;
    }
  }
  for (const auto& [name, list] : config.asPathLists) {
    int index = 10;
    for (const AsPathListEntry& entry : list.entries) {
      out += "as-path-list " + Names::str(name) + " index " + std::to_string(index) + " " +
             (entry.permit ? "permit" : "deny") + " \"" + entry.regex + "\"\n";
      index += 10;
    }
  }

  for (const auto& [name, policy] : config.routePolicies)
    for (const PolicyNode& node : policy.nodes) printPolicyNode(out, policy, node);

  if (config.bgp.asn != 0) {
    out += "router bgp " + std::to_string(config.bgp.asn) + "\n";
    for (const BgpPeerGroup& group : config.bgp.peerGroups) {
      const std::string head = " peer-group " + Names::str(group.name) + " ";
      if (group.importPolicy) out += head + "import-policy " + Names::str(*group.importPolicy) + "\n";
      if (group.exportPolicy) out += head + "export-policy " + Names::str(*group.exportPolicy) + "\n";
      if (group.routeReflectorClient) out += head + "reflect-client\n";
      if (group.nextHopSelf) out += head + "next-hop-self\n";
      if (group.addPathSend) out += head + "add-path-send\n";
    }
    for (const BgpNeighbor& neighbor : config.bgp.neighbors) {
      const std::string head = " neighbor " + neighbor.peerAddress.str() + " ";
      out += head + "remote-as " + std::to_string(neighbor.remoteAs) + "\n";
      if (neighbor.vrf != kInvalidName) out += head + "vrf " + Names::str(neighbor.vrf) + "\n";
      if (neighbor.peerGroup) out += head + "peer-group " + Names::str(*neighbor.peerGroup) + "\n";
      if (neighbor.importPolicy)
        out += head + "import-policy " + Names::str(*neighbor.importPolicy) + "\n";
      if (neighbor.exportPolicy)
        out += head + "export-policy " + Names::str(*neighbor.exportPolicy) + "\n";
      if (neighbor.routeReflectorClient) out += head + "reflect-client\n";
      if (neighbor.nextHopSelf) out += head + "next-hop-self\n";
      if (neighbor.addPathSend) out += head + "add-path-send\n";
      if (neighbor.shutdown) out += head + "shutdown\n";
    }
    for (const Redistribution& redist : config.bgp.redistributions) {
      out += " redistribute ";
      switch (redist.from) {
        case Protocolish::kStatic: out += "static"; break;
        case Protocolish::kDirect: out += "direct"; break;
        case Protocolish::kIsis: out += "isis"; break;
        default: out += "static"; break;
      }
      if (redist.policy) out += " policy " + Names::str(*redist.policy);
      out += '\n';
    }
    for (const AggregateConfig& aggregate : config.bgp.aggregates) {
      out += " aggregate " + aggregate.prefix.str();
      if (aggregate.asSet) out += " as-set";
      if (!aggregate.summaryOnly) out += " advertise-all";
      if (aggregate.vrf != kInvalidName) out += " vrf " + Names::str(aggregate.vrf);
      out += '\n';
    }
    out += "!\n";
  }

  for (const StaticRouteConfig& route : config.staticRoutes) {
    out += "static-route " + route.prefix.str();
    out += route.discard ? " discard" : " nexthop " + route.nexthop.str();
    if (route.vrf != kInvalidName) out += " vrf " + Names::str(route.vrf);
    if (route.preference != 1) out += " preference " + std::to_string(route.preference);
    out += '\n';
  }
  for (const SrPolicyConfig& policy : config.srPolicies) {
    out += "sr-policy " + Names::str(policy.name) + " endpoint " + policy.endpoint.str();
    if (policy.color) out += " color " + std::to_string(policy.color);
    if (!policy.segments.empty()) {
      out += " segments";
      for (const IpAddress& segment : policy.segments) out += " " + segment.str();
    }
    out += '\n';
  }
  for (const auto& [name, policy] : config.pbrPolicies) {
    for (const PbrRule& rule : policy.rules) {
      out += "pbr-policy " + Names::str(name) + " rule";
      if (rule.srcPrefix) out += " src " + rule.srcPrefix->str();
      if (rule.dstPrefix) out += " dst " + rule.dstPrefix->str();
      if (rule.dstPort) out += " port " + std::to_string(*rule.dstPort);
      out += " nexthop " + rule.setNexthop.str() + "\n";
    }
    for (const NameId itf : policy.appliedInterfaces)
      out += "apply pbr " + Names::str(name) + " interface " + Names::str(itf) + "\n";
  }
  for (const auto& [name, acl] : config.acls) {
    for (const AclRule& rule : acl.rules) {
      out += "acl " + Names::str(name) + " rule " + (rule.permit ? "permit" : "deny");
      if (rule.srcPrefix) out += " src " + rule.srcPrefix->str();
      if (rule.dstPrefix) out += " dst " + rule.dstPrefix->str();
      if (rule.dstPort) out += " port " + std::to_string(*rule.dstPort);
      if (rule.ipProtocol) out += " proto " + std::to_string(*rule.ipProtocol);
      out += '\n';
    }
    for (const NameId itf : acl.appliedInterfaces)
      out += "apply acl " + Names::str(name) + " interface " + Names::str(itf) + "\n";
  }
  return out;
}

}  // namespace hoyan
