// The parsed configuration model of one device (Hoyan's "router model").
//
// The network-model building service parses every router's vendor
// configuration text into this structure once a day (§2.2); change
// verification then patches a copy incrementally with the change commands.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/as_path.h"
#include "net/community.h"
#include "net/ip.h"
#include "net/names.h"
#include "topo/topology.h"

namespace hoyan {

// ---------------------------------------------------------------------------
// Filters referenced by route-policy match clauses.
// ---------------------------------------------------------------------------

struct PrefixListEntry {
  bool permit = true;
  Prefix prefix;
  // Mask-length bounds: a route matches if its prefix is covered by `prefix`
  // and its length is within [ge, le]. Defaults collapse to exact match.
  uint8_t ge = 0;
  uint8_t le = 0;

  bool matches(const Prefix& candidate) const;
};

struct PrefixList {
  NameId name = kInvalidName;
  IpFamily family = IpFamily::kV4;  // `ip-prefix` vs `ipv6-prefix`.
  std::vector<PrefixListEntry> entries;

  // First-match semantics; no entry matching means "not matched".
  bool permits(const Prefix& candidate) const;
};

struct CommunityListEntry {
  bool permit = true;
  Community community;
};

struct CommunityList {
  NameId name = kInvalidName;
  std::vector<CommunityListEntry> entries;

  // A route matches a permit entry if its community set contains the entry's
  // community (first match wins).
  bool permits(const CommunitySet& communities) const;
};

struct AsPathListEntry {
  bool permit = true;
  std::string regex;
};

struct AsPathList {
  NameId name = kInvalidName;
  std::vector<AsPathListEntry> entries;
};

// ---------------------------------------------------------------------------
// Route policies.
// ---------------------------------------------------------------------------

// `Protocolish` mirrors net/route.h's Protocol without pulling the header
// into every config user; values must stay in sync (checked by tests).
enum class Protocolish : uint8_t { kDirect, kStatic, kIsis, kBgp, kAggregate };

// Match clauses of one policy node; all present clauses must match (AND).
struct PolicyMatch {
  std::optional<NameId> prefixList;
  std::optional<NameId> communityList;
  std::optional<NameId> asPathList;
  std::optional<IpAddress> nexthop;
  std::optional<Protocolish> protocol;
};

// Attribute rewrites of one policy node.
struct PolicySets {
  std::optional<uint32_t> localPref;
  std::optional<uint32_t> med;
  std::optional<uint32_t> weight;
  std::optional<IpAddress> nexthop;
  std::vector<Community> addCommunities;
  std::vector<Community> deleteCommunities;
  bool clearCommunities = false;  // `set community none` (applied first).
  // AS-path prepend: (asn, count).
  std::optional<std::pair<Asn, uint32_t>> prepend;
  // AS-path overwrite — replaces the path; interacts with the
  // "adding own ASN" VSB.
  std::optional<std::vector<Asn>> overwriteAsPath;

  bool empty() const {
    return !localPref && !med && !weight && !nexthop && addCommunities.empty() &&
           deleteCommunities.empty() && !clearCommunities && !prepend && !overwriteAsPath;
  }
};

enum class PolicyAction : uint8_t { kPermit, kDeny, kUnspecified };

struct PolicyNode {
  uint32_t sequence = 10;
  PolicyAction action = PolicyAction::kUnspecified;
  PolicyMatch match;
  PolicySets sets;
};

struct RoutePolicy {
  NameId name = kInvalidName;
  std::vector<PolicyNode> nodes;  // Kept sorted by sequence.

  PolicyNode* findNode(uint32_t sequence);
  void upsertNode(PolicyNode node);
  bool removeNode(uint32_t sequence);
};

// ---------------------------------------------------------------------------
// BGP.
// ---------------------------------------------------------------------------

struct BgpPeerGroup {
  NameId name = kInvalidName;
  std::optional<NameId> importPolicy;
  std::optional<NameId> exportPolicy;
  bool routeReflectorClient = false;
  bool nextHopSelf = false;
  bool addPathSend = false;
};

struct BgpNeighbor {
  IpAddress peerAddress;
  Asn remoteAs = 0;
  NameId vrf = kInvalidName;  // Session VRF (global if invalid).
  std::optional<NameId> peerGroup;
  std::optional<NameId> importPolicy;
  std::optional<NameId> exportPolicy;
  bool routeReflectorClient = false;
  bool nextHopSelf = false;
  bool addPathSend = false;
  bool shutdown = false;
};

struct Redistribution {
  Protocolish from = Protocolish::kStatic;
  std::optional<NameId> policy;
};

struct AggregateConfig {
  Prefix prefix;
  NameId vrf = kInvalidName;
  bool asSet = false;
  bool summaryOnly = true;  // Suppress more-specific contributors on export.
};

struct BgpConfig {
  Asn asn = 0;
  std::vector<BgpNeighbor> neighbors;
  std::vector<BgpPeerGroup> peerGroups;
  std::vector<Redistribution> redistributions;
  std::vector<AggregateConfig> aggregates;

  BgpNeighbor* findNeighbor(const IpAddress& peer);
  const BgpNeighbor* findNeighbor(const IpAddress& peer) const;
  const BgpPeerGroup* findPeerGroup(NameId name) const;
};

// ---------------------------------------------------------------------------
// Other subsystems.
// ---------------------------------------------------------------------------

struct StaticRouteConfig {
  Prefix prefix;
  IpAddress nexthop;
  NameId vrf = kInvalidName;
  uint8_t preference = 1;
  bool discard = false;  // Null route.
};

// An SR(v6) traffic-engineering policy: traffic whose BGP nexthop equals
// `endpoint` is tunnelled along the explicit segment list.
struct SrPolicyConfig {
  NameId name = kInvalidName;
  IpAddress endpoint;               // Tunnel tail-end (a loopback).
  std::vector<IpAddress> segments;  // Intermediate segment endpoints, in order.
  uint32_t color = 0;
};

struct PbrRule {
  std::optional<Prefix> srcPrefix;
  std::optional<Prefix> dstPrefix;
  std::optional<uint16_t> dstPort;
  IpAddress setNexthop;
};

struct PbrPolicy {
  NameId name = kInvalidName;
  std::vector<PbrRule> rules;
  std::vector<NameId> appliedInterfaces;
};

struct AclRule {
  bool permit = true;
  std::optional<Prefix> srcPrefix;
  std::optional<Prefix> dstPrefix;
  std::optional<uint16_t> dstPort;
  std::optional<uint8_t> ipProtocol;

  bool matches(const IpAddress& src, const IpAddress& dst, uint16_t dstPort,
               uint8_t ipProtocol) const;
};

struct AclConfig {
  NameId name = kInvalidName;
  std::vector<AclRule> rules;
  std::vector<NameId> appliedInterfaces;  // Ingress application.

  // First-match; default deny if any rule exists, else permit.
  bool permits(const IpAddress& src, const IpAddress& dst, uint16_t port,
               uint8_t ipProtocol) const;
};

struct VrfConfig {
  NameId name = kInvalidName;
  std::vector<uint64_t> importRouteTargets;
  std::vector<uint64_t> exportRouteTargets;
  std::optional<NameId> exportPolicy;  // Interacts with the VRF-export VSB.
};

// ---------------------------------------------------------------------------
// The device model.
// ---------------------------------------------------------------------------

struct DeviceConfig {
  NameId hostname = kInvalidName;
  NameId vendor = kInvalidName;
  IpAddress routerId;
  // Maintenance isolation (Table 5 "device isolation" VSB governs semantics).
  bool isolated = false;

  BgpConfig bgp;
  std::vector<StaticRouteConfig> staticRoutes;
  std::vector<SrPolicyConfig> srPolicies;
  std::map<NameId, PrefixList> prefixLists;
  std::map<NameId, CommunityList> communityLists;
  std::map<NameId, AsPathList> asPathLists;
  std::map<NameId, RoutePolicy> routePolicies;
  std::map<NameId, PbrPolicy> pbrPolicies;
  std::map<NameId, AclConfig> acls;
  std::map<NameId, VrfConfig> vrfs;

  const PrefixList* findPrefixList(NameId name) const;
  const CommunityList* findCommunityList(NameId name) const;
  const AsPathList* findAsPathList(NameId name) const;
  const RoutePolicy* findRoutePolicy(NameId name) const;
  RoutePolicy& routePolicy(NameId name);

  // Resolves neighbour session options through its peer group, honouring the
  // "inheriting views" VSB (non-inheriting vendors ignore peer-group values).
  BgpNeighbor effectiveNeighbor(const BgpNeighbor& neighbor,
                                bool inheritPeerGroup) const;
};

// All device configurations of the network — Hoyan's "base network model".
// Copy-on-write: copying a NetworkConfig shares the device map (shared_ptr);
// mutators detach a private copy first. Sweep workers (src/sweep) hold
// "private" configs that are physically the base model's map — O(1) per
// worker instead of a deep copy of every parsed router model.
class NetworkConfig {
 public:
  NetworkConfig() : devices_(std::make_shared<std::map<NameId, DeviceConfig>>()) {}

  const std::map<NameId, DeviceConfig>& devices() const { return *devices_; }
  // Mutable device map: detaches a private copy when the map is shared.
  std::map<NameId, DeviceConfig>& mutableDevices() {
    if (devices_.use_count() != 1)
      devices_ = std::make_shared<std::map<NameId, DeviceConfig>>(*devices_);
    return *devices_;
  }

  DeviceConfig& device(NameId hostname) { return mutableDevices()[hostname]; }
  const DeviceConfig* findDevice(NameId hostname) const {
    const auto it = devices_->find(hostname);
    return it == devices_->end() ? nullptr : &it->second;
  }

  // True when this instance still shares the device map with `other`.
  bool sharesStorageWith(const NetworkConfig& other) const {
    return devices_ == other.devices_;
  }
  // Estimated deep size of the parsed configs (what a non-CoW copy would
  // materialize); used by the sweep's worker-memory accounting.
  size_t approxBytes() const;

 private:
  std::shared_ptr<std::map<NameId, DeviceConfig>> devices_;
};

}  // namespace hoyan
