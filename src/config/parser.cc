#include "config/parser.h"

#include <algorithm>
#include <charconv>
#include <optional>

namespace hoyan {
namespace {

std::optional<uint64_t> parseNumber(std::string_view text) {
  if (text.empty()) return std::nullopt;
  uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return std::nullopt;
  return value;
}

// Route targets are written "asn:value" like communities but may exceed
// 16-bit halves; pack as asn<<32 | value.
std::optional<uint64_t> parseRouteTarget(std::string_view text) {
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto asn = parseNumber(text.substr(0, colon));
  const auto value = parseNumber(text.substr(colon + 1));
  if (!asn || !value) return std::nullopt;
  return (*asn << 32) | (*value & 0xffffffffULL);
}

// The parser proper. Tracks the current block context between lines.
class LineParser {
 public:
  LineParser(DeviceConfig& config, Device* device) : config_(config), device_(device) {}

  std::vector<ParseError> run(std::string_view text) {
    int lineNo = 0;
    size_t pos = 0;
    while (pos <= text.size()) {
      const size_t eol = text.find('\n', pos);
      const std::string_view line =
          eol == std::string_view::npos ? text.substr(pos) : text.substr(pos, eol - pos);
      ++lineNo;
      parseLine(line, lineNo);
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
    return std::move(errors_);
  }

 private:
  enum class Context { kTop, kInterface, kPolicyNode, kBgp, kVrf };

  void error(int lineNo, std::string_view line, std::string message) {
    errors_.push_back({lineNo, std::move(message), std::string(line)});
  }

  void parseLine(std::string_view rawLine, int lineNo) {
    std::vector<std::string> tokens = tokenizeConfigLine(rawLine);
    if (tokens.empty() || tokens[0][0] == '#') return;
    if (tokens[0] == "!") {
      context_ = Context::kTop;
      return;
    }
    bool negate = false;
    if (tokens[0] == "no") {
      negate = true;
      tokens.erase(tokens.begin());
      if (tokens.empty()) return error(lineNo, rawLine, "dangling 'no'");
    }
    const std::string& keyword = tokens[0];

    // Block-continuation keywords are tried first in a matching context;
    // anything unrecognised in a block falls through to top-level commands.
    if (context_ == Context::kInterface && parseInterfaceLine(tokens, negate)) return;
    if (context_ == Context::kPolicyNode && parsePolicyNodeLine(tokens, negate, lineNo, rawLine))
      return;
    if (context_ == Context::kBgp && parseBgpLine(tokens, negate, lineNo, rawLine)) return;
    if (context_ == Context::kVrf && parseVrfLine(tokens, negate, lineNo, rawLine)) return;

    context_ = Context::kTop;
    if (keyword == "vendor" && tokens.size() == 2) {
      config_.vendor = Names::id(tokens[1]);
    } else if (keyword == "hostname" && tokens.size() == 2) {
      config_.hostname = Names::id(tokens[1]);
    } else if (keyword == "router-id" && tokens.size() == 2) {
      const auto addr = IpAddress::parse(tokens[1]);
      if (!addr) return error(lineNo, rawLine, "bad router-id");
      config_.routerId = *addr;
    } else if (keyword == "isolate") {
      config_.isolated = !negate;
    } else if (keyword == "vrf" && tokens.size() == 2) {
      const NameId name = Names::id(tokens[1]);
      if (negate) {
        config_.vrfs.erase(name);
        return;
      }
      config_.vrfs[name].name = name;
      currentVrf_ = name;
      context_ = Context::kVrf;
    } else if (keyword == "interface" && tokens.size() == 2) {
      currentInterface_ = Names::id(tokens[1]);
      context_ = Context::kInterface;
      if (device_ && !device_->findInterface(currentInterface_)) {
        Interface itf;
        itf.name = currentInterface_;
        device_->interfaces.push_back(itf);
      }
    } else if (keyword == "ip-prefix" || keyword == "ipv6-prefix") {
      parsePrefixListLine(tokens, negate, lineNo, rawLine);
    } else if (keyword == "community-list") {
      parseCommunityListLine(tokens, negate, lineNo, rawLine);
    } else if (keyword == "as-path-list") {
      parseAsPathListLine(tokens, negate, lineNo, rawLine);
    } else if (keyword == "route-policy") {
      parseRoutePolicyHeader(tokens, negate, lineNo, rawLine);
    } else if (keyword == "router" && tokens.size() == 3 && tokens[1] == "bgp") {
      const auto asn = parseNumber(tokens[2]);
      if (!asn) return error(lineNo, rawLine, "bad ASN");
      if (negate) {
        config_.bgp = BgpConfig{};
        return;
      }
      config_.bgp.asn = static_cast<Asn>(*asn);
      context_ = Context::kBgp;
    } else if (keyword == "static-route") {
      parseStaticRoute(tokens, negate, lineNo, rawLine);
    } else if (keyword == "sr-policy") {
      parseSrPolicy(tokens, negate, lineNo, rawLine);
    } else if (keyword == "pbr-policy") {
      parsePbrPolicy(tokens, negate, lineNo, rawLine);
    } else if (keyword == "acl") {
      parseAcl(tokens, negate, lineNo, rawLine);
    } else if (keyword == "apply" && tokens.size() == 5 && tokens[3] == "interface") {
      parseApply(tokens, negate, lineNo, rawLine);
    } else {
      error(lineNo, rawLine, "unknown command '" + keyword + "'");
    }
  }

  // --- interface block -----------------------------------------------------
  bool parseInterfaceLine(const std::vector<std::string>& tokens, bool negate) {
    if (!device_) return false;
    Interface* itf = device_->findInterface(currentInterface_);
    if (!itf) return false;
    if (tokens[0] == "address" && tokens.size() == 2) {
      const auto prefix = Prefix::parse(tokens[1]);
      if (!prefix) return false;
      // Keep the configured (non-canonicalised) host address.
      const auto addr = IpAddress::parse(tokens[1].substr(0, tokens[1].find('/')));
      itf->address = addr.value_or(prefix->address());
      itf->prefixLength = prefix->length();
      return true;
    }
    if (tokens[0] == "vrf" && tokens.size() == 2) {
      itf->vrf = negate ? kInvalidName : Names::id(tokens[1]);
      return true;
    }
    if (tokens[0] == "isis" && tokens.size() >= 2) {
      if (tokens[1] == "enable") {
        itf->isisEnabled = !negate;
        return true;
      }
      if (tokens[1] == "cost" && tokens.size() == 3) {
        const auto cost = parseNumber(tokens[2]);
        if (!cost) return false;
        itf->isisCost = static_cast<uint32_t>(*cost);
        return true;
      }
      return false;
    }
    if (tokens[0] == "bandwidth" && tokens.size() == 2) {
      const auto bw = parseNumber(tokens[1]);
      if (!bw) return false;
      itf->bandwidthBps = static_cast<double>(*bw);
      return true;
    }
    if (tokens[0] == "shutdown" && tokens.size() == 1) {
      itf->shutdown = !negate;
      return true;
    }
    return false;
  }

  // --- vrf block -------------------------------------------------------------
  bool parseVrfLine(const std::vector<std::string>& tokens, bool negate, int lineNo,
                    std::string_view rawLine) {
    VrfConfig& vrf = config_.vrfs[currentVrf_];
    if (tokens[0] == "import-rt" && tokens.size() == 2) {
      const auto rt = parseRouteTarget(tokens[1]);
      if (!rt) {
        error(lineNo, rawLine, "bad route-target");
        return true;
      }
      auto& rts = vrf.importRouteTargets;
      if (negate)
        std::erase(rts, *rt);
      else
        rts.push_back(*rt);
      return true;
    }
    if (tokens[0] == "export-rt" && tokens.size() == 2) {
      const auto rt = parseRouteTarget(tokens[1]);
      if (!rt) {
        error(lineNo, rawLine, "bad route-target");
        return true;
      }
      auto& rts = vrf.exportRouteTargets;
      if (negate)
        std::erase(rts, *rt);
      else
        rts.push_back(*rt);
      return true;
    }
    if (tokens[0] == "export-policy" && tokens.size() == 2) {
      if (negate)
        vrf.exportPolicy.reset();
      else
        vrf.exportPolicy = Names::id(tokens[1]);
      return true;
    }
    return false;
  }

  // --- filter lists ----------------------------------------------------------
  // ip-prefix NAME index N (permit|deny) PREFIX [ge G] [le L]
  void parsePrefixListLine(const std::vector<std::string>& tokens, bool negate, int lineNo,
                           std::string_view rawLine) {
    if (tokens.size() < 2) return error(lineNo, rawLine, "prefix-list: missing name");
    const NameId name = Names::id(tokens[1]);
    // Note: family comes from the *command keyword*, not the entry contents —
    // this is exactly what enables the §6.1(b) ip-prefix/ipv6-prefix VSB.
    const IpFamily family = tokens[0] == "ipv6-prefix" ? IpFamily::kV6 : IpFamily::kV4;
    if (negate && tokens.size() == 2) {
      config_.prefixLists.erase(name);
      return;
    }
    if (tokens.size() < 5 || tokens[2] != "index")
      return error(lineNo, rawLine, "prefix-list: expected 'index N permit|deny PREFIX'");
    const auto index = parseNumber(tokens[3]);
    if (!index) return error(lineNo, rawLine, "prefix-list: bad index");
    PrefixList& list = config_.prefixLists[name];
    if (list.entries.empty()) {
      list.name = name;
      list.family = family;
    }
    if (negate) {
      const size_t slot = static_cast<size_t>(*index);
      if (slot < list.entries.size()) list.entries.erase(list.entries.begin() + slot);
      return;
    }
    if (tokens[4] != "permit" && tokens[4] != "deny")
      return error(lineNo, rawLine, "prefix-list: expected permit/deny");
    PrefixListEntry entry;
    entry.permit = tokens[4] == "permit";
    if (tokens.size() < 6) return error(lineNo, rawLine, "prefix-list: missing prefix");
    const auto prefix = Prefix::parse(tokens[5]);
    if (!prefix) return error(lineNo, rawLine, "prefix-list: bad prefix");
    entry.prefix = *prefix;
    for (size_t i = 6; i + 1 < tokens.size(); i += 2) {
      const auto bound = parseNumber(tokens[i + 1]);
      if (!bound) return error(lineNo, rawLine, "prefix-list: bad ge/le");
      if (tokens[i] == "ge")
        entry.ge = static_cast<uint8_t>(*bound);
      else if (tokens[i] == "le")
        entry.le = static_cast<uint8_t>(*bound);
      else
        return error(lineNo, rawLine, "prefix-list: expected ge/le");
    }
    list.entries.push_back(entry);
  }

  // community-list NAME index N (permit|deny) COMM
  void parseCommunityListLine(const std::vector<std::string>& tokens, bool negate, int lineNo,
                              std::string_view rawLine) {
    if (tokens.size() < 2) return error(lineNo, rawLine, "community-list: missing name");
    const NameId name = Names::id(tokens[1]);
    if (negate && tokens.size() == 2) {
      config_.communityLists.erase(name);
      return;
    }
    if (tokens.size() != 6 || tokens[2] != "index")
      return error(lineNo, rawLine, "community-list: expected 'index N permit|deny COMM'");
    if (tokens[4] != "permit" && tokens[4] != "deny")
      return error(lineNo, rawLine, "community-list: expected permit/deny");
    const auto community = Community::parse(tokens[5]);
    if (!community) return error(lineNo, rawLine, "community-list: bad community");
    CommunityList& list = config_.communityLists[name];
    list.name = name;
    list.entries.push_back({tokens[4] == "permit", *community});
  }

  // as-path-list NAME index N (permit|deny) "REGEX"
  void parseAsPathListLine(const std::vector<std::string>& tokens, bool negate, int lineNo,
                           std::string_view rawLine) {
    if (tokens.size() < 2) return error(lineNo, rawLine, "as-path-list: missing name");
    const NameId name = Names::id(tokens[1]);
    if (negate && tokens.size() == 2) {
      config_.asPathLists.erase(name);
      return;
    }
    if (tokens.size() != 6 || tokens[2] != "index")
      return error(lineNo, rawLine, "as-path-list: expected 'index N permit|deny REGEX'");
    if (tokens[4] != "permit" && tokens[4] != "deny")
      return error(lineNo, rawLine, "as-path-list: expected permit/deny");
    AsPathList& list = config_.asPathLists[name];
    list.name = name;
    list.entries.push_back({tokens[4] == "permit", tokens[5]});
  }

  // route-policy NAME node N [permit|deny]
  void parseRoutePolicyHeader(const std::vector<std::string>& tokens, bool negate, int lineNo,
                              std::string_view rawLine) {
    if (tokens.size() < 2) return error(lineNo, rawLine, "route-policy: missing name");
    const NameId name = Names::id(tokens[1]);
    if (tokens.size() == 2) {
      if (negate) config_.routePolicies.erase(name);
      // A bare header (non-negated) just declares the policy.
      if (!negate) config_.routePolicy(name);
      return;
    }
    if (tokens.size() < 4 || tokens[2] != "node")
      return error(lineNo, rawLine, "route-policy: expected 'node N [permit|deny]'");
    const auto sequence = parseNumber(tokens[3]);
    if (!sequence) return error(lineNo, rawLine, "route-policy: bad node number");
    RoutePolicy& policy = config_.routePolicy(name);
    if (negate) {
      policy.removeNode(static_cast<uint32_t>(*sequence));
      return;
    }
    PolicyNode node;
    node.sequence = static_cast<uint32_t>(*sequence);
    if (tokens.size() >= 5) {
      if (tokens[4] == "permit")
        node.action = PolicyAction::kPermit;
      else if (tokens[4] == "deny")
        node.action = PolicyAction::kDeny;
      else
        return error(lineNo, rawLine, "route-policy: bad action");
    }
    // If the node already exists, keep its clauses and only update action —
    // re-entering a node is how change commands edit it.
    if (PolicyNode* existing = policy.findNode(node.sequence)) {
      existing->action = node.action;
    } else {
      policy.upsertNode(node);
    }
    currentPolicy_ = name;
    currentNode_ = node.sequence;
    context_ = Context::kPolicyNode;
  }

  bool parsePolicyNodeLine(const std::vector<std::string>& tokens, bool negate, int lineNo,
                           std::string_view rawLine) {
    RoutePolicy* policy = &config_.routePolicy(currentPolicy_);
    PolicyNode* node = policy->findNode(currentNode_);
    if (!node) return false;
    if (tokens[0] == "match") {
      if (tokens.size() < 2) return false;
      if (tokens[1] == "ip-prefix" || tokens[1] == "ipv6-prefix") {
        if (tokens.size() != 3) {
          error(lineNo, rawLine, "match prefix: missing list");
          return true;
        }
        node->match.prefixList = negate ? std::optional<NameId>() : Names::id(tokens[2]);
        return true;
      }
      if (tokens[1] == "community-list" && tokens.size() == 3) {
        node->match.communityList = negate ? std::optional<NameId>() : Names::id(tokens[2]);
        return true;
      }
      if (tokens[1] == "as-path-list" && tokens.size() == 3) {
        node->match.asPathList = negate ? std::optional<NameId>() : Names::id(tokens[2]);
        return true;
      }
      if (tokens[1] == "nexthop" && tokens.size() == 3) {
        const auto addr = IpAddress::parse(tokens[2]);
        if (!addr) {
          error(lineNo, rawLine, "match nexthop: bad address");
          return true;
        }
        node->match.nexthop = negate ? std::optional<IpAddress>() : *addr;
        return true;
      }
      if (tokens[1] == "protocol" && tokens.size() == 3) {
        if (tokens[2] == "direct")
          node->match.protocol = Protocolish::kDirect;
        else if (tokens[2] == "static")
          node->match.protocol = Protocolish::kStatic;
        else if (tokens[2] == "isis")
          node->match.protocol = Protocolish::kIsis;
        else if (tokens[2] == "bgp")
          node->match.protocol = Protocolish::kBgp;
        else
          error(lineNo, rawLine, "match protocol: unknown protocol");
        if (negate) node->match.protocol.reset();
        return true;
      }
      return false;
    }
    if (tokens[0] == "apply") {
      if (tokens.size() < 2) return false;
      if (tokens[1] == "local-pref" && tokens.size() == 3) {
        const auto value = parseNumber(tokens[2]);
        if (value) node->sets.localPref = static_cast<uint32_t>(*value);
        return true;
      }
      if (tokens[1] == "med" && tokens.size() == 3) {
        const auto value = parseNumber(tokens[2]);
        if (value) node->sets.med = static_cast<uint32_t>(*value);
        return true;
      }
      if (tokens[1] == "weight" && tokens.size() == 3) {
        const auto value = parseNumber(tokens[2]);
        if (value) node->sets.weight = static_cast<uint32_t>(*value);
        return true;
      }
      if (tokens[1] == "nexthop" && tokens.size() == 3) {
        const auto addr = IpAddress::parse(tokens[2]);
        if (addr) node->sets.nexthop = *addr;
        return true;
      }
      if (tokens[1] == "community" && tokens.size() >= 3) {
        if (tokens[2] == "none") {
          node->sets.clearCommunities = true;
          return true;
        }
        if (tokens.size() == 4) {
          const auto community = Community::parse(tokens[3]);
          if (!community) {
            error(lineNo, rawLine, "apply community: bad community");
            return true;
          }
          if (tokens[2] == "add")
            node->sets.addCommunities.push_back(*community);
          else if (tokens[2] == "delete")
            node->sets.deleteCommunities.push_back(*community);
          else
            error(lineNo, rawLine, "apply community: expected add/delete/none");
          return true;
        }
        return true;
      }
      if (tokens[1] == "as-path" && tokens.size() >= 3) {
        if (tokens[2] == "prepend" && tokens.size() == 5) {
          const auto asn = parseNumber(tokens[3]);
          const auto count = parseNumber(tokens[4]);
          if (asn && count)
            node->sets.prepend = {static_cast<Asn>(*asn), static_cast<uint32_t>(*count)};
          return true;
        }
        if (tokens[2] == "overwrite") {
          std::vector<Asn> path;
          for (size_t i = 3; i < tokens.size(); ++i) {
            const auto asn = parseNumber(tokens[i]);
            if (!asn) {
              error(lineNo, rawLine, "apply as-path overwrite: bad ASN");
              return true;
            }
            path.push_back(static_cast<Asn>(*asn));
          }
          node->sets.overwriteAsPath = std::move(path);
          return true;
        }
        return false;
      }
      return false;
    }
    return false;
  }

  // --- router bgp block --------------------------------------------------------
  bool parseBgpLine(const std::vector<std::string>& tokens, bool negate, int lineNo,
                    std::string_view rawLine) {
    if (tokens[0] == "neighbor") {
      if (tokens.size() < 2) return false;
      const auto peer = IpAddress::parse(tokens[1]);
      if (!peer) {
        error(lineNo, rawLine, "neighbor: bad address");
        return true;
      }
      BgpNeighbor* neighbor = config_.bgp.findNeighbor(*peer);
      if (negate && tokens.size() == 2) {
        std::erase_if(config_.bgp.neighbors,
                      [&](const BgpNeighbor& n) { return n.peerAddress == *peer; });
        return true;
      }
      if (!neighbor) {
        config_.bgp.neighbors.push_back({});
        neighbor = &config_.bgp.neighbors.back();
        neighbor->peerAddress = *peer;
      }
      if (tokens.size() == 2) return true;
      const std::string& option = tokens[2];
      if (option == "remote-as" && tokens.size() == 4) {
        const auto asn = parseNumber(tokens[3]);
        if (asn) neighbor->remoteAs = static_cast<Asn>(*asn);
      } else if (option == "import-policy" && tokens.size() == 4) {
        if (negate)
          neighbor->importPolicy.reset();
        else
          neighbor->importPolicy = Names::id(tokens[3]);
      } else if (option == "export-policy" && tokens.size() == 4) {
        if (negate)
          neighbor->exportPolicy.reset();
        else
          neighbor->exportPolicy = Names::id(tokens[3]);
      } else if (option == "reflect-client") {
        neighbor->routeReflectorClient = !negate;
      } else if (option == "next-hop-self") {
        neighbor->nextHopSelf = !negate;
      } else if (option == "add-path-send") {
        neighbor->addPathSend = !negate;
      } else if (option == "shutdown") {
        neighbor->shutdown = !negate;
      } else if (option == "vrf" && tokens.size() == 4) {
        neighbor->vrf = negate ? kInvalidName : Names::id(tokens[3]);
      } else if (option == "peer-group" && tokens.size() == 4) {
        if (negate)
          neighbor->peerGroup.reset();
        else
          neighbor->peerGroup = Names::id(tokens[3]);
      } else {
        error(lineNo, rawLine, "neighbor: unknown option '" + option + "'");
      }
      return true;
    }
    if (tokens[0] == "peer-group" && tokens.size() >= 2) {
      const NameId name = Names::id(tokens[1]);
      BgpPeerGroup* group = nullptr;
      for (BgpPeerGroup& g : config_.bgp.peerGroups)
        if (g.name == name) group = &g;
      if (negate && tokens.size() == 2) {
        std::erase_if(config_.bgp.peerGroups,
                      [name](const BgpPeerGroup& g) { return g.name == name; });
        return true;
      }
      if (!group) {
        config_.bgp.peerGroups.push_back({});
        group = &config_.bgp.peerGroups.back();
        group->name = name;
      }
      if (tokens.size() == 2) return true;
      const std::string& option = tokens[2];
      if (option == "import-policy" && tokens.size() == 4)
        group->importPolicy = Names::id(tokens[3]);
      else if (option == "export-policy" && tokens.size() == 4)
        group->exportPolicy = Names::id(tokens[3]);
      else if (option == "reflect-client")
        group->routeReflectorClient = !negate;
      else if (option == "next-hop-self")
        group->nextHopSelf = !negate;
      else if (option == "add-path-send")
        group->addPathSend = !negate;
      else
        error(lineNo, rawLine, "peer-group: unknown option '" + option + "'");
      return true;
    }
    if (tokens[0] == "redistribute" && tokens.size() >= 2) {
      Protocolish from;
      if (tokens[1] == "static")
        from = Protocolish::kStatic;
      else if (tokens[1] == "direct")
        from = Protocolish::kDirect;
      else if (tokens[1] == "isis")
        from = Protocolish::kIsis;
      else {
        error(lineNo, rawLine, "redistribute: unknown source");
        return true;
      }
      if (negate) {
        std::erase_if(config_.bgp.redistributions,
                      [from](const Redistribution& r) { return r.from == from; });
        return true;
      }
      Redistribution redist;
      redist.from = from;
      if (tokens.size() == 4 && tokens[2] == "policy") redist.policy = Names::id(tokens[3]);
      config_.bgp.redistributions.push_back(redist);
      return true;
    }
    if (tokens[0] == "aggregate" && tokens.size() >= 2) {
      const auto prefix = Prefix::parse(tokens[1]);
      if (!prefix) {
        error(lineNo, rawLine, "aggregate: bad prefix");
        return true;
      }
      if (negate) {
        std::erase_if(config_.bgp.aggregates,
                      [&](const AggregateConfig& a) { return a.prefix == *prefix; });
        return true;
      }
      AggregateConfig aggregate;
      aggregate.prefix = *prefix;
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i] == "as-set")
          aggregate.asSet = true;
        else if (tokens[i] == "advertise-all")
          aggregate.summaryOnly = false;
        else if (tokens[i] == "vrf" && i + 1 < tokens.size())
          aggregate.vrf = Names::id(tokens[++i]);
        else
          error(lineNo, rawLine, "aggregate: unknown option");
      }
      config_.bgp.aggregates.push_back(aggregate);
      return true;
    }
    return false;
  }

  // --- top-level subsystems ----------------------------------------------------
  // static-route PREFIX (nexthop A | discard) [vrf V] [preference N]
  void parseStaticRoute(const std::vector<std::string>& tokens, bool negate, int lineNo,
                        std::string_view rawLine) {
    if (tokens.size() < 3) return error(lineNo, rawLine, "static-route: too short");
    const auto prefix = Prefix::parse(tokens[1]);
    if (!prefix) return error(lineNo, rawLine, "static-route: bad prefix");
    StaticRouteConfig route;
    route.prefix = *prefix;
    size_t i = 2;
    if (tokens[i] == "discard") {
      route.discard = true;
      ++i;
    } else if (tokens[i] == "nexthop" && i + 1 < tokens.size()) {
      const auto nexthop = IpAddress::parse(tokens[i + 1]);
      if (!nexthop) return error(lineNo, rawLine, "static-route: bad nexthop");
      route.nexthop = *nexthop;
      i += 2;
    } else {
      return error(lineNo, rawLine, "static-route: expected nexthop/discard");
    }
    for (; i + 1 < tokens.size(); i += 2) {
      if (tokens[i] == "vrf")
        route.vrf = Names::id(tokens[i + 1]);
      else if (tokens[i] == "preference") {
        const auto pref = parseNumber(tokens[i + 1]);
        if (!pref) return error(lineNo, rawLine, "static-route: bad preference");
        route.preference = static_cast<uint8_t>(*pref);
      } else {
        return error(lineNo, rawLine, "static-route: unknown option");
      }
    }
    if (negate) {
      std::erase_if(config_.staticRoutes, [&](const StaticRouteConfig& s) {
        return s.prefix == route.prefix && s.vrf == route.vrf &&
               (route.discard ? s.discard : s.nexthop == route.nexthop);
      });
      return;
    }
    config_.staticRoutes.push_back(route);
  }

  // sr-policy NAME endpoint A [color N] [segments S1 S2 ...]
  void parseSrPolicy(const std::vector<std::string>& tokens, bool negate, int lineNo,
                     std::string_view rawLine) {
    if (tokens.size() < 2) return error(lineNo, rawLine, "sr-policy: missing name");
    const NameId name = Names::id(tokens[1]);
    if (negate) {
      std::erase_if(config_.srPolicies,
                    [name](const SrPolicyConfig& p) { return p.name == name; });
      return;
    }
    SrPolicyConfig policy;
    policy.name = name;
    for (size_t i = 2; i < tokens.size(); ++i) {
      if (tokens[i] == "endpoint" && i + 1 < tokens.size()) {
        const auto addr = IpAddress::parse(tokens[++i]);
        if (!addr) return error(lineNo, rawLine, "sr-policy: bad endpoint");
        policy.endpoint = *addr;
      } else if (tokens[i] == "color" && i + 1 < tokens.size()) {
        const auto color = parseNumber(tokens[++i]);
        if (!color) return error(lineNo, rawLine, "sr-policy: bad color");
        policy.color = static_cast<uint32_t>(*color);
      } else if (tokens[i] == "segments") {
        for (++i; i < tokens.size(); ++i) {
          const auto addr = IpAddress::parse(tokens[i]);
          if (!addr) return error(lineNo, rawLine, "sr-policy: bad segment");
          policy.segments.push_back(*addr);
        }
      } else {
        return error(lineNo, rawLine, "sr-policy: unknown option");
      }
    }
    // Replace an existing policy of the same name.
    std::erase_if(config_.srPolicies,
                  [name](const SrPolicyConfig& p) { return p.name == name; });
    config_.srPolicies.push_back(policy);
  }

  // pbr-policy NAME rule [src P] [dst P] [port N] nexthop A
  void parsePbrPolicy(const std::vector<std::string>& tokens, bool negate, int lineNo,
                      std::string_view rawLine) {
    if (tokens.size() < 2) return error(lineNo, rawLine, "pbr-policy: missing name");
    const NameId name = Names::id(tokens[1]);
    if (negate && tokens.size() == 2) {
      config_.pbrPolicies.erase(name);
      return;
    }
    if (tokens.size() < 3 || tokens[2] != "rule")
      return error(lineNo, rawLine, "pbr-policy: expected 'rule ...'");
    PbrRule rule;
    bool haveNexthop = false;
    for (size_t i = 3; i + 1 < tokens.size(); i += 2) {
      if (tokens[i] == "src") {
        const auto prefix = Prefix::parse(tokens[i + 1]);
        if (!prefix) return error(lineNo, rawLine, "pbr: bad src");
        rule.srcPrefix = *prefix;
      } else if (tokens[i] == "dst") {
        const auto prefix = Prefix::parse(tokens[i + 1]);
        if (!prefix) return error(lineNo, rawLine, "pbr: bad dst");
        rule.dstPrefix = *prefix;
      } else if (tokens[i] == "port") {
        const auto port = parseNumber(tokens[i + 1]);
        if (!port) return error(lineNo, rawLine, "pbr: bad port");
        rule.dstPort = static_cast<uint16_t>(*port);
      } else if (tokens[i] == "nexthop") {
        const auto addr = IpAddress::parse(tokens[i + 1]);
        if (!addr) return error(lineNo, rawLine, "pbr: bad nexthop");
        rule.setNexthop = *addr;
        haveNexthop = true;
      } else {
        return error(lineNo, rawLine, "pbr: unknown option");
      }
    }
    if (!haveNexthop) return error(lineNo, rawLine, "pbr: missing nexthop");
    PbrPolicy& policy = config_.pbrPolicies[name];
    policy.name = name;
    policy.rules.push_back(rule);
  }

  // acl NAME rule (permit|deny) [src P] [dst P] [port N] [proto N]
  void parseAcl(const std::vector<std::string>& tokens, bool negate, int lineNo,
                std::string_view rawLine) {
    if (tokens.size() < 2) return error(lineNo, rawLine, "acl: missing name");
    const NameId name = Names::id(tokens[1]);
    if (negate && tokens.size() == 2) {
      config_.acls.erase(name);
      return;
    }
    if (tokens.size() < 4 || tokens[2] != "rule")
      return error(lineNo, rawLine, "acl: expected 'rule permit|deny ...'");
    AclRule rule;
    rule.permit = tokens[3] == "permit";
    for (size_t i = 4; i + 1 < tokens.size(); i += 2) {
      if (tokens[i] == "src") {
        const auto prefix = Prefix::parse(tokens[i + 1]);
        if (!prefix) return error(lineNo, rawLine, "acl: bad src");
        rule.srcPrefix = *prefix;
      } else if (tokens[i] == "dst") {
        const auto prefix = Prefix::parse(tokens[i + 1]);
        if (!prefix) return error(lineNo, rawLine, "acl: bad dst");
        rule.dstPrefix = *prefix;
      } else if (tokens[i] == "port") {
        const auto port = parseNumber(tokens[i + 1]);
        if (!port) return error(lineNo, rawLine, "acl: bad port");
        rule.dstPort = static_cast<uint16_t>(*port);
      } else if (tokens[i] == "proto") {
        const auto proto = parseNumber(tokens[i + 1]);
        if (!proto) return error(lineNo, rawLine, "acl: bad proto");
        rule.ipProtocol = static_cast<uint8_t>(*proto);
      } else {
        return error(lineNo, rawLine, "acl: unknown option");
      }
    }
    AclConfig& acl = config_.acls[name];
    acl.name = name;
    acl.rules.push_back(rule);
  }

  // apply (pbr|acl) NAME interface IF
  void parseApply(const std::vector<std::string>& tokens, bool negate, int lineNo,
                  std::string_view rawLine) {
    const NameId target = Names::id(tokens[2]);
    const NameId itf = Names::id(tokens[4]);
    auto applyTo = [negate, itf](std::vector<NameId>& interfaces) {
      if (negate) {
        std::erase(interfaces, itf);
      } else if (std::find(interfaces.begin(), interfaces.end(), itf) == interfaces.end()) {
        interfaces.push_back(itf);
      }
    };
    if (tokens[1] == "pbr") {
      const auto it = config_.pbrPolicies.find(target);
      if (it == config_.pbrPolicies.end())
        return error(lineNo, rawLine, "apply pbr: unknown policy");
      applyTo(it->second.appliedInterfaces);
    } else if (tokens[1] == "acl") {
      const auto it = config_.acls.find(target);
      if (it == config_.acls.end()) return error(lineNo, rawLine, "apply acl: unknown acl");
      applyTo(it->second.appliedInterfaces);
    } else {
      error(lineNo, rawLine, "apply: expected pbr/acl");
    }
  }

  DeviceConfig& config_;
  Device* device_;
  Context context_ = Context::kTop;
  NameId currentInterface_ = kInvalidName;
  NameId currentVrf_ = kInvalidName;
  NameId currentPolicy_ = kInvalidName;
  uint32_t currentNode_ = 0;
  std::vector<ParseError> errors_;
};

}  // namespace

std::vector<std::string> tokenizeConfigLine(std::string_view line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
    if (i >= line.size()) break;
    if (line[i] == '"') {
      const size_t close = line.find('"', i + 1);
      if (close == std::string_view::npos) {
        tokens.emplace_back(line.substr(i + 1));
        break;
      }
      tokens.emplace_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' && line[j] != '\r') ++j;
    tokens.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return tokens;
}

ParseResult parseDeviceConfig(std::string_view text) {
  ParseResult result;
  LineParser parser(result.config, &result.device);
  result.errors = parser.run(text);
  result.device.name = result.config.hostname;
  return result;
}

std::vector<ParseError> applyDeviceCommands(DeviceConfig& config, Device* device,
                                            std::string_view text) {
  LineParser parser(config, device);
  return parser.run(text);
}

}  // namespace hoyan
