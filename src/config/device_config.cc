#include "config/device_config.h"

#include <algorithm>

namespace hoyan {

bool PrefixListEntry::matches(const Prefix& candidate) const {
  if (candidate.family() != prefix.family()) return false;
  if (!prefix.contains(candidate)) return false;
  const uint8_t lower = ge ? ge : prefix.length();
  const uint8_t upper = le ? le : (ge ? candidate.address().width() : prefix.length());
  return candidate.length() >= lower && candidate.length() <= upper;
}

bool PrefixList::permits(const Prefix& candidate) const {
  for (const PrefixListEntry& entry : entries)
    if (entry.matches(candidate)) return entry.permit;
  return false;
}

bool CommunityList::permits(const CommunitySet& communities) const {
  for (const CommunityListEntry& entry : entries)
    if (communities.contains(entry.community)) return entry.permit;
  return false;
}

PolicyNode* RoutePolicy::findNode(uint32_t sequence) {
  for (PolicyNode& node : nodes)
    if (node.sequence == sequence) return &node;
  return nullptr;
}

void RoutePolicy::upsertNode(PolicyNode node) {
  if (PolicyNode* existing = findNode(node.sequence)) {
    *existing = std::move(node);
    return;
  }
  nodes.push_back(std::move(node));
  std::sort(nodes.begin(), nodes.end(),
            [](const PolicyNode& a, const PolicyNode& b) { return a.sequence < b.sequence; });
}

bool RoutePolicy::removeNode(uint32_t sequence) {
  const auto it = std::find_if(nodes.begin(), nodes.end(),
                               [sequence](const PolicyNode& n) { return n.sequence == sequence; });
  if (it == nodes.end()) return false;
  nodes.erase(it);
  return true;
}

BgpNeighbor* BgpConfig::findNeighbor(const IpAddress& peer) {
  for (BgpNeighbor& neighbor : neighbors)
    if (neighbor.peerAddress == peer) return &neighbor;
  return nullptr;
}

const BgpNeighbor* BgpConfig::findNeighbor(const IpAddress& peer) const {
  return const_cast<BgpConfig*>(this)->findNeighbor(peer);
}

const BgpPeerGroup* BgpConfig::findPeerGroup(NameId name) const {
  for (const BgpPeerGroup& group : peerGroups)
    if (group.name == name) return &group;
  return nullptr;
}

bool AclRule::matches(const IpAddress& src, const IpAddress& dst, uint16_t port,
                      uint8_t protocol) const {
  if (srcPrefix && !srcPrefix->contains(src)) return false;
  if (dstPrefix && !dstPrefix->contains(dst)) return false;
  if (dstPort && *dstPort != port) return false;
  if (ipProtocol && *ipProtocol != protocol) return false;
  return true;
}

bool AclConfig::permits(const IpAddress& src, const IpAddress& dst, uint16_t port,
                        uint8_t protocol) const {
  for (const AclRule& rule : rules)
    if (rule.matches(src, dst, port, protocol)) return rule.permit;
  return rules.empty();  // Implicit deny once any rule exists.
}

const PrefixList* DeviceConfig::findPrefixList(NameId name) const {
  const auto it = prefixLists.find(name);
  return it == prefixLists.end() ? nullptr : &it->second;
}

const CommunityList* DeviceConfig::findCommunityList(NameId name) const {
  const auto it = communityLists.find(name);
  return it == communityLists.end() ? nullptr : &it->second;
}

const AsPathList* DeviceConfig::findAsPathList(NameId name) const {
  const auto it = asPathLists.find(name);
  return it == asPathLists.end() ? nullptr : &it->second;
}

const RoutePolicy* DeviceConfig::findRoutePolicy(NameId name) const {
  const auto it = routePolicies.find(name);
  return it == routePolicies.end() ? nullptr : &it->second;
}

RoutePolicy& DeviceConfig::routePolicy(NameId name) {
  RoutePolicy& policy = routePolicies[name];
  policy.name = name;
  return policy;
}

BgpNeighbor DeviceConfig::effectiveNeighbor(const BgpNeighbor& neighbor,
                                            bool inheritPeerGroup) const {
  BgpNeighbor effective = neighbor;
  if (!inheritPeerGroup || !neighbor.peerGroup) return effective;
  const BgpPeerGroup* group = bgp.findPeerGroup(*neighbor.peerGroup);
  if (!group) return effective;
  if (!effective.importPolicy) effective.importPolicy = group->importPolicy;
  if (!effective.exportPolicy) effective.exportPolicy = group->exportPolicy;
  effective.routeReflectorClient |= group->routeReflectorClient;
  effective.nextHopSelf |= group->nextHopSelf;
  effective.addPathSend |= group->addPathSend;
  return effective;
}

}  // namespace hoyan
