#include "config/device_config.h"

#include <algorithm>

namespace hoyan {

bool PrefixListEntry::matches(const Prefix& candidate) const {
  if (candidate.family() != prefix.family()) return false;
  if (!prefix.contains(candidate)) return false;
  const uint8_t lower = ge ? ge : prefix.length();
  const uint8_t upper = le ? le : (ge ? candidate.address().width() : prefix.length());
  return candidate.length() >= lower && candidate.length() <= upper;
}

bool PrefixList::permits(const Prefix& candidate) const {
  for (const PrefixListEntry& entry : entries)
    if (entry.matches(candidate)) return entry.permit;
  return false;
}

bool CommunityList::permits(const CommunitySet& communities) const {
  for (const CommunityListEntry& entry : entries)
    if (communities.contains(entry.community)) return entry.permit;
  return false;
}

PolicyNode* RoutePolicy::findNode(uint32_t sequence) {
  for (PolicyNode& node : nodes)
    if (node.sequence == sequence) return &node;
  return nullptr;
}

void RoutePolicy::upsertNode(PolicyNode node) {
  if (PolicyNode* existing = findNode(node.sequence)) {
    *existing = std::move(node);
    return;
  }
  nodes.push_back(std::move(node));
  std::sort(nodes.begin(), nodes.end(),
            [](const PolicyNode& a, const PolicyNode& b) { return a.sequence < b.sequence; });
}

bool RoutePolicy::removeNode(uint32_t sequence) {
  const auto it = std::find_if(nodes.begin(), nodes.end(),
                               [sequence](const PolicyNode& n) { return n.sequence == sequence; });
  if (it == nodes.end()) return false;
  nodes.erase(it);
  return true;
}

BgpNeighbor* BgpConfig::findNeighbor(const IpAddress& peer) {
  for (BgpNeighbor& neighbor : neighbors)
    if (neighbor.peerAddress == peer) return &neighbor;
  return nullptr;
}

const BgpNeighbor* BgpConfig::findNeighbor(const IpAddress& peer) const {
  return const_cast<BgpConfig*>(this)->findNeighbor(peer);
}

const BgpPeerGroup* BgpConfig::findPeerGroup(NameId name) const {
  for (const BgpPeerGroup& group : peerGroups)
    if (group.name == name) return &group;
  return nullptr;
}

bool AclRule::matches(const IpAddress& src, const IpAddress& dst, uint16_t port,
                      uint8_t protocol) const {
  if (srcPrefix && !srcPrefix->contains(src)) return false;
  if (dstPrefix && !dstPrefix->contains(dst)) return false;
  if (dstPort && *dstPort != port) return false;
  if (ipProtocol && *ipProtocol != protocol) return false;
  return true;
}

bool AclConfig::permits(const IpAddress& src, const IpAddress& dst, uint16_t port,
                        uint8_t protocol) const {
  for (const AclRule& rule : rules)
    if (rule.matches(src, dst, port, protocol)) return rule.permit;
  return rules.empty();  // Implicit deny once any rule exists.
}

const PrefixList* DeviceConfig::findPrefixList(NameId name) const {
  const auto it = prefixLists.find(name);
  return it == prefixLists.end() ? nullptr : &it->second;
}

const CommunityList* DeviceConfig::findCommunityList(NameId name) const {
  const auto it = communityLists.find(name);
  return it == communityLists.end() ? nullptr : &it->second;
}

const AsPathList* DeviceConfig::findAsPathList(NameId name) const {
  const auto it = asPathLists.find(name);
  return it == asPathLists.end() ? nullptr : &it->second;
}

const RoutePolicy* DeviceConfig::findRoutePolicy(NameId name) const {
  const auto it = routePolicies.find(name);
  return it == routePolicies.end() ? nullptr : &it->second;
}

RoutePolicy& DeviceConfig::routePolicy(NameId name) {
  RoutePolicy& policy = routePolicies[name];
  policy.name = name;
  return policy;
}

BgpNeighbor DeviceConfig::effectiveNeighbor(const BgpNeighbor& neighbor,
                                            bool inheritPeerGroup) const {
  BgpNeighbor effective = neighbor;
  if (!inheritPeerGroup || !neighbor.peerGroup) return effective;
  const BgpPeerGroup* group = bgp.findPeerGroup(*neighbor.peerGroup);
  if (!group) return effective;
  if (!effective.importPolicy) effective.importPolicy = group->importPolicy;
  if (!effective.exportPolicy) effective.exportPolicy = group->exportPolicy;
  effective.routeReflectorClient |= group->routeReflectorClient;
  effective.nextHopSelf |= group->nextHopSelf;
  effective.addPathSend |= group->addPathSend;
  return effective;
}

namespace {

// Rough deep-size estimate of one parsed router model. Precision is not the
// point — the sweep's worker-memory accounting only needs the estimate to
// scale with model size the way a real deep copy would.
size_t approxDeviceConfigBytes(const DeviceConfig& config) {
  constexpr size_t kMapNode = 48;  // Red-black node + alignment overhead.
  size_t bytes = sizeof(DeviceConfig);
  bytes += config.bgp.neighbors.capacity() * sizeof(BgpNeighbor);
  bytes += config.bgp.peerGroups.capacity() * sizeof(BgpPeerGroup);
  bytes += config.bgp.redistributions.capacity() * sizeof(Redistribution);
  bytes += config.bgp.aggregates.capacity() * sizeof(AggregateConfig);
  bytes += config.staticRoutes.capacity() * sizeof(StaticRouteConfig);
  for (const SrPolicyConfig& policy : config.srPolicies)
    bytes += sizeof(SrPolicyConfig) + policy.segments.capacity() * sizeof(IpAddress);
  for (const auto& [name, list] : config.prefixLists)
    bytes += kMapNode + sizeof(PrefixList) +
             list.entries.capacity() * sizeof(PrefixListEntry);
  for (const auto& [name, list] : config.communityLists)
    bytes += kMapNode + sizeof(CommunityList) +
             list.entries.capacity() * sizeof(CommunityListEntry);
  for (const auto& [name, list] : config.asPathLists) {
    bytes += kMapNode + sizeof(AsPathList);
    for (const AsPathListEntry& entry : list.entries)
      bytes += sizeof(AsPathListEntry) + entry.regex.capacity();
  }
  for (const auto& [name, policy] : config.routePolicies) {
    bytes += kMapNode + sizeof(RoutePolicy);
    for (const PolicyNode& node : policy.nodes)
      bytes += sizeof(PolicyNode) +
               node.sets.addCommunities.capacity() * sizeof(Community) +
               node.sets.deleteCommunities.capacity() * sizeof(Community);
  }
  for (const auto& [name, policy] : config.pbrPolicies)
    bytes += kMapNode + sizeof(PbrPolicy) + policy.rules.capacity() * sizeof(PbrRule) +
             policy.appliedInterfaces.capacity() * sizeof(NameId);
  for (const auto& [name, acl] : config.acls)
    bytes += kMapNode + sizeof(AclConfig) + acl.rules.capacity() * sizeof(AclRule) +
             acl.appliedInterfaces.capacity() * sizeof(NameId);
  for (const auto& [name, vrf] : config.vrfs)
    bytes += kMapNode + sizeof(VrfConfig) +
             (vrf.importRouteTargets.capacity() + vrf.exportRouteTargets.capacity()) *
                 sizeof(uint64_t);
  return bytes;
}

}  // namespace

size_t NetworkConfig::approxBytes() const {
  size_t bytes = sizeof(NetworkConfig);
  for (const auto& [name, config] : *devices_)
    bytes += sizeof(NameId) + approxDeviceConfigBytes(config);
  return bytes;
}

}  // namespace hoyan
