// Vendor-specific behaviour (VSB) profiles.
//
// Table 5 of the paper catalogues 16 VSBs Hoyan's accuracy-diagnosis
// framework uncovered. Each knob below corresponds to one row; the protocol
// simulation consults the profile of the route's device at the exact decision
// point the row describes. Three synthetic vendors with divergent settings
// stand in for the WAN's real vendors, so differential simulation exercises
// every behaviour.
#pragma once

#include <cstdint>
#include <string>

#include "net/names.h"

namespace hoyan {

struct VendorProfile {
  NameId name = kInvalidName;

  // --- Route-policy application VSBs -------------------------------------
  // "missing route policy": accept updates when no policy is configured on
  // the session direction?
  bool acceptWhenNoPolicy = true;
  // "undefined route policy": accept updates when the applied policy name is
  // not defined on the device?
  bool acceptWhenPolicyUndefined = false;
  // "default route policy": accept updates that match no explicit node of
  // the applied policy (implicit tail behaviour)?
  bool acceptWhenNoNodeMatches = false;
  // "undefined policy filter": does a match clause referencing an undefined
  // filter (prefix-list / community-list / as-path-list) match everything
  // (true) or nothing (false)?
  bool undefinedFilterMatchesAll = false;
  // "no explicit permit/deny": is a matching node without an explicit action
  // treated as permit?
  bool nodeWithoutActionPermits = true;

  // --- Preference / attribute VSBs ----------------------------------------
  // "default BGP preference": admin distance for eBGP/iBGP routes.
  uint8_t ebgpAdminDistance = 20;
  uint8_t ibgpAdminDistance = 200;
  // "weight after redistribution": default weight set on routes
  // redistributed into BGP (0 or 32768).
  uint32_t redistributedWeight = 0;
  // "adding own ASN": is the device's own ASN (re-)added after a policy
  // overwrites the AS path?
  bool addOwnAsnAfterOverwrite = true;
  // "common AS path prefix": when aggregating without as-set, is the common
  // AS-path prefix of the contributors kept on the aggregate?
  bool keepCommonAsPathOnAggregate = false;

  // --- VRF / leaking VSBs --------------------------------------------------
  // "VRF export policy": is a VRF's export policy applied to *global* iBGP
  // routes leaked into VPNv4 (true), or only to the VRF's own routes (false)?
  bool vrfExportPolicyAppliesToGlobalLeaks = false;
  // "re-leaking routes": are routes leaked from a VRF into global VPNv4
  // re-leaked into other VRFs whose import route-targets match?
  bool reLeakLeakedRoutes = false;

  // --- Direct /32 VSBs -----------------------------------------------------
  // "redistributing /32 route": configuring a non-/32 direct route on an
  // interface also produces a /32 host route; can it be redistributed?
  bool redistributeDirectSlash32 = false;
  // "sending /32 route to peer": if redistribution of the /32 is permitted,
  // can it be advertised to peers?
  bool sendDirectSlash32ToPeer = false;

  // --- SR / view / isolation VSBs -------------------------------------------
  // "IGP cost for SR": is a BGP route's IGP cost treated as 0 when its
  // nexthop is reached via an SR tunnel? (The Fig. 9 root-cause case.)
  bool igpCostZeroViaSrTunnel = false;
  // "inheriting views": do BGP neighbours inherit options (policies,
  // next-hop-self, add-path) from their peer-group sub-view?
  bool neighborsInheritPeerGroup = true;
  // "device isolation": is the `isolate` maintenance command implemented by
  // installing deny-all policies (true) or by shutting sessions (false)?
  // Both stop advertisement, but deny-all policies still keep sessions up —
  // visible to monitoring and to add-path counting.
  bool isolationViaDenyPolicy = true;

  // --- Case-study VSB (§6.1(b)) --------------------------------------------
  // When an `ip-prefix` (IPv4) list is matched against an IPv6 route, does
  // the match clause permit all IPv6 routes by default (true) or match
  // nothing (false)? Root cause of the "changing ISP exits" incident.
  bool ipv4PrefixListPermitsAllV6 = false;
};

// The three synthetic vendors used across the repository. Settings diverge on
// every VSB so differential tests can observe each knob.
const VendorProfile& vendorA();  // SR-cost-zero vendor (Fig. 9 behaviour).
const VendorProfile& vendorB();  // Conservative defaults.
const VendorProfile& vendorC();  // ip-prefix-permits-v6 vendor (§6.1(b)).

// Profile lookup by interned vendor name; unknown names get vendorB defaults.
const VendorProfile& vendorProfile(NameId name);

}  // namespace hoyan
