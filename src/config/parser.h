// Parser for the vendor-style device configuration language.
//
// The language is line-oriented with nested blocks (interface, route-policy
// node, router bgp, vrf). A `no <command>` form removes configuration, which
// is how change-plan commands express deletions. Parse errors are collected
// rather than thrown: Hoyan's accuracy framework found that *incomplete or
// incorrect parsing* is itself a major issue class (Table 4, "flawed config
// parsing"), so the parser reports everything it could not understand and
// the diagnosis layer can surface those as model risks.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "config/device_config.h"

namespace hoyan {

struct ParseError {
  int line = 0;
  std::string message;
  std::string text;  // The offending line.

  std::string str() const {
    return "line " + std::to_string(line) + ": " + message + " [" + text + "]";
  }
};

struct ParseResult {
  DeviceConfig config;
  // Interfaces parsed from `interface` blocks (the topology-facing half of
  // the configuration).
  Device device;
  std::vector<ParseError> errors;

  bool ok() const { return errors.empty(); }
};

// Parses a full device configuration from scratch.
ParseResult parseDeviceConfig(std::string_view text);

// Applies configuration command lines to an existing device model
// (incremental change-plan application, §2.2). Supports the same grammar as
// parseDeviceConfig plus `no ...` deletions. `interfaces` gives the parser
// access to the device's topology interfaces so `interface` blocks can edit
// them; pass nullptr when interfaces are not being changed.
std::vector<ParseError> applyDeviceCommands(DeviceConfig& config, Device* device,
                                            std::string_view text);

// Splits a line into whitespace-separated tokens; double-quoted tokens keep
// embedded spaces (used by as-path regular expressions).
std::vector<std::string> tokenizeConfigLine(std::string_view line);

}  // namespace hoyan
