#include "config/vendor.h"

namespace hoyan {

const VendorProfile& vendorA() {
  static const VendorProfile profile = [] {
    VendorProfile p;
    p.name = Names::id("VendorA");
    p.acceptWhenNoPolicy = true;
    p.acceptWhenPolicyUndefined = true;   // Undefined policy == no policy.
    p.acceptWhenNoNodeMatches = false;    // Implicit deny at policy tail.
    p.undefinedFilterMatchesAll = true;   // Undefined filter matches all.
    p.nodeWithoutActionPermits = true;
    p.ebgpAdminDistance = 20;
    p.ibgpAdminDistance = 200;
    p.redistributedWeight = 32768;
    p.addOwnAsnAfterOverwrite = true;
    p.keepCommonAsPathOnAggregate = true;
    p.vrfExportPolicyAppliesToGlobalLeaks = true;
    p.reLeakLeakedRoutes = false;
    p.redistributeDirectSlash32 = true;
    p.sendDirectSlash32ToPeer = false;
    p.igpCostZeroViaSrTunnel = true;      // The Fig. 9 root cause.
    p.neighborsInheritPeerGroup = true;
    p.isolationViaDenyPolicy = true;
    p.ipv4PrefixListPermitsAllV6 = false;
    return p;
  }();
  return profile;
}

const VendorProfile& vendorB() {
  static const VendorProfile profile = [] {
    VendorProfile p;
    p.name = Names::id("VendorB");
    p.acceptWhenNoPolicy = true;
    p.acceptWhenPolicyUndefined = false;  // Undefined policy rejects all.
    p.acceptWhenNoNodeMatches = false;
    p.undefinedFilterMatchesAll = false;  // Undefined filter matches nothing.
    p.nodeWithoutActionPermits = false;   // No action == deny.
    p.ebgpAdminDistance = 255;            // "Both 255" style vendor.
    p.ibgpAdminDistance = 255;
    p.redistributedWeight = 0;
    p.addOwnAsnAfterOverwrite = false;
    p.keepCommonAsPathOnAggregate = false;
    p.vrfExportPolicyAppliesToGlobalLeaks = false;
    p.reLeakLeakedRoutes = true;
    p.redistributeDirectSlash32 = false;
    p.sendDirectSlash32ToPeer = false;
    p.igpCostZeroViaSrTunnel = false;
    p.neighborsInheritPeerGroup = false;
    p.isolationViaDenyPolicy = false;     // Isolation shuts sessions down.
    p.ipv4PrefixListPermitsAllV6 = false;
    return p;
  }();
  return profile;
}

const VendorProfile& vendorC() {
  static const VendorProfile profile = [] {
    VendorProfile p;
    p.name = Names::id("VendorC");
    p.acceptWhenNoPolicy = false;         // No policy == deny (strict).
    p.acceptWhenPolicyUndefined = false;
    p.acceptWhenNoNodeMatches = true;     // Implicit permit at policy tail.
    p.undefinedFilterMatchesAll = true;
    p.nodeWithoutActionPermits = true;
    p.ebgpAdminDistance = 20;
    p.ibgpAdminDistance = 200;
    p.redistributedWeight = 32768;
    p.addOwnAsnAfterOverwrite = true;
    p.keepCommonAsPathOnAggregate = false;
    p.vrfExportPolicyAppliesToGlobalLeaks = false;
    p.reLeakLeakedRoutes = true;
    p.redistributeDirectSlash32 = true;
    p.sendDirectSlash32ToPeer = true;
    p.igpCostZeroViaSrTunnel = false;
    p.neighborsInheritPeerGroup = true;
    p.isolationViaDenyPolicy = true;
    p.ipv4PrefixListPermitsAllV6 = true;  // The §6.1(b) root cause.
    return p;
  }();
  return profile;
}

const VendorProfile& vendorProfile(NameId name) {
  if (name == vendorA().name) return vendorA();
  if (name == vendorC().name) return vendorC();
  return vendorB();
}

}  // namespace hoyan
