// Renders a DeviceConfig (plus its topology interfaces) back to configuration
// text. The synthetic-WAN generator emits configs through this printer and
// the base-model builder re-parses them, so generation exercises the same
// parsing path production Hoyan uses — and printer/parser round-trip is a
// property test.
#pragma once

#include <string>

#include "config/device_config.h"
#include "topo/topology.h"

namespace hoyan {

std::string printDeviceConfig(const DeviceConfig& config, const Device* device);

}  // namespace hoyan
