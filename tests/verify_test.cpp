// Tests for the property checkers: reachability, path-change intents, load
// intents, and k-failure fault-tolerance checking.
#include <gtest/gtest.h>

#include "sim/local_routes.h"
#include "sim/route_sim.h"
#include "test_fixtures.h"
#include "verify/properties.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

class VerifyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = buildSmallWan();
    model_ = std::make_unique<NetworkModel>(net_.model());
    inputs_ = {ispRoute(net_, "100.1.0.0/16")};
    RouteSimOptions options;
    options.includeLocalRoutes = true;
    RouteSimResult result = simulateRoutes(*model_, inputs_, options);
    ribs_ = std::move(result.ribs);
    ribs_.buildForwardingIndex();
  }

  SmallWan net_;
  std::unique_ptr<NetworkModel> model_;
  std::vector<InputRoute> inputs_;
  NetworkRibs ribs_;
};

TEST_F(VerifyTest, ControlPlaneReachability) {
  const auto devices = devicesWithRoute(ribs_, *Prefix::parse("100.1.0.0/16"));
  // All four internal routers plus the originating ISP.
  EXPECT_EQ(devices.size(), 5u);
  EXPECT_TRUE(devicesWithRoute(ribs_, *Prefix::parse("99.0.0.0/8")).empty());
}

TEST_F(VerifyTest, DataPlaneReachability) {
  EXPECT_TRUE(dataPlaneReachable(*model_, ribs_, net_.c2,
                                 *IpAddress::parse("100.1.2.3")));
  EXPECT_FALSE(dataPlaneReachable(*model_, ribs_, net_.c2,
                                  *IpAddress::parse("203.0.113.1")));
}

TEST_F(VerifyTest, LoadIntentFlagsOverUtilizedLinks) {
  LinkLoadMap loads;
  loads.add(net_.c1, net_.c2, 90e9);  // 90% of the default 100G.
  loads.add(net_.c1, net_.rr1, 10e9);
  const auto violations = checkLinkLoads(model_->topology, loads, 0.8);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].from, net_.c1);
  EXPECT_EQ(violations[0].to, net_.c2);
  EXPECT_NEAR(violations[0].utilization(), 0.9, 1e-9);
  EXPECT_TRUE(checkLinkLoads(model_->topology, loads, 0.95).empty());
}

TEST_F(VerifyTest, PathChangeIntentDetectsUnmovedFlows) {
  // Intent: flows on BR1->ISP1 move to C1->RR1 — nothing changed, so every
  // in-scope flow violates.
  Flow flow;
  flow.ingressDevice = net_.c2;
  flow.src = *IpAddress::parse("20.0.0.1");
  flow.dst = *IpAddress::parse("100.1.2.3");
  flow.volumeBps = 10;
  PathChangeIntent intent;
  intent.fromPath = {net_.br1, net_.isp1};
  intent.toPath = {net_.c1, net_.rr1};
  const auto violations = checkPathChange(*model_, ribs_, *model_, ribs_,
                                          std::vector<Flow>{flow}, intent);
  ASSERT_EQ(violations.size(), 1u);
  // The dst filter excludes out-of-scope flows entirely.
  PathChangeIntent filtered = intent;
  filtered.dstFilter = *Prefix::parse("99.0.0.0/8");
  EXPECT_TRUE(checkPathChange(*model_, ribs_, *model_, ribs_,
                              std::vector<Flow>{flow}, filtered)
                  .empty());
}

TEST_F(VerifyTest, KFailureFindsSinglePointOfFailure) {
  // Property: the ISP route stays reachable from C2. The BR1-ISP1 link (and
  // the BR1-C1 link) are single points of failure.
  const NetworkProperty property = [&](const NetworkModel& degraded,
                                       const NetworkRibs& ribs) {
    return dataPlaneReachable(degraded, ribs, net_.c2,
                              *IpAddress::parse("100.1.2.3"));
  };
  KFailureOptions options;
  options.k = 1;
  options.maxCounterexamples = 10;
  const KFailureResult result = checkKFailures(*model_, inputs_, property, options);
  EXPECT_FALSE(result.holds());
  EXPECT_GE(result.scenariosChecked, 5u);
  // BR1-ISP1 must be among the counterexamples.
  bool foundIspLink = false;
  for (const FailureSet& failures : result.counterexamples)
    for (const auto& [a, b] : failures.failedLinks)
      if ((a == net_.br1 && b == net_.isp1) || (a == net_.isp1 && b == net_.br1))
        foundIspLink = true;
  EXPECT_TRUE(foundIspLink);
}

TEST_F(VerifyTest, KFailureHoldsForRedundantProperty) {
  // Property: C1 keeps its IS-IS route to RR1's loopback under any single
  // internal link failure among core links (triangle redundancy).
  const Prefix rrLoopback(model_->topology.findDevice(net_.rr1)->loopback, 32);
  const NetworkProperty property = [&](const NetworkModel&,
                                       const NetworkRibs& ribs) {
    const auto devices = devicesWithRoute(ribs, rrLoopback);
    return std::find(devices.begin(), devices.end(), net_.c1) != devices.end();
  };
  KFailureOptions options;
  options.k = 1;
  options.focusDevices = {net_.c1, net_.c2, net_.rr1};
  const KFailureResult result = checkKFailures(*model_, inputs_, property, options);
  EXPECT_TRUE(result.holds())
      << (result.counterexamples.empty() ? "" : result.counterexamples[0].str());
}

TEST_F(VerifyTest, KFailureDeviceFailures) {
  const NetworkProperty property = [&](const NetworkModel& degraded,
                                       const NetworkRibs& ribs) {
    return dataPlaneReachable(degraded, ribs, net_.c2,
                              *IpAddress::parse("100.1.2.3"));
  };
  KFailureOptions options;
  options.k = 0;  // Only device failures.
  options.includeDeviceFailures = true;
  options.maxCounterexamples = 10;
  const KFailureResult result = checkKFailures(*model_, inputs_, property, options);
  // Failing BR1 (or C1, the only path) breaks reachability.
  EXPECT_FALSE(result.holds());
  bool foundBorder = false;
  for (const FailureSet& failures : result.counterexamples)
    for (const NameId device : failures.failedDevices)
      if (device == net_.br1) foundBorder = true;
  EXPECT_TRUE(foundBorder);
}

TEST_F(VerifyTest, KFailureTwoLinkCombinations) {
  // With k=2 the enumeration covers pairs; scenario count grows accordingly.
  const NetworkProperty alwaysTrue = [](const NetworkModel&, const NetworkRibs&) {
    return true;
  };
  KFailureOptions one;
  one.k = 1;
  KFailureOptions two;
  two.k = 2;
  const size_t singles = checkKFailures(*model_, inputs_, alwaysTrue, one).scenariosChecked;
  const size_t pairs = checkKFailures(*model_, inputs_, alwaysTrue, two).scenariosChecked;
  EXPECT_EQ(singles, 5u);                        // 5 links.
  EXPECT_EQ(pairs, singles + 5u * 4u / 2u);      // + C(5,2) pairs.
}

}  // namespace
}  // namespace hoyan
