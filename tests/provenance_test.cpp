// Route-decision provenance: recorder semantics (filtering, caps, merge
// order), capture during route simulation (received/chosen/advertised/denied/
// tie-break/VSB events), explain chains, and the propagation-graph builder.
#include <gtest/gtest.h>

#include <algorithm>

#include "config/vendor.h"
#include "diag/prop_graph.h"
#include "obs/provenance.h"
#include "scenario/net_builder.h"
#include "sim/route_sim.h"
#include "test_fixtures.h"

namespace hoyan {
namespace {

using obs::ProvenanceOptions;
using obs::ProvenanceRecorder;
using obs::RouteEvent;
using obs::RouteEventKind;
using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

ProvenanceOptions watchAll() {
  ProvenanceOptions options;
  options.enabled = true;
  return options;
}

RouteEvent event(RouteEventKind kind, const std::string& device,
                 const std::string& prefix, const std::string& peer = "") {
  RouteEvent out;
  out.kind = kind;
  out.device = Names::id(device);
  out.prefix = *Prefix::parse(prefix);
  if (!peer.empty()) out.peer = Names::id(peer);
  return out;
}

std::vector<RouteEventKind> kindsFor(const std::vector<RouteEvent>& events,
                                     NameId device, const Prefix& prefix) {
  std::vector<RouteEventKind> out;
  for (const RouteEvent& e : events)
    if (e.device == device && e.prefix == prefix) out.push_back(e.kind);
  return out;
}

bool hasKind(const std::vector<RouteEventKind>& kinds, RouteEventKind kind) {
  return std::find(kinds.begin(), kinds.end(), kind) != kinds.end();
}

// ---------------------------------------------------------------------------
// Recorder semantics.
// ---------------------------------------------------------------------------

TEST(ProvenanceRecorderTest, DisabledRecorderWantsNothing) {
  ProvenanceRecorder recorder;  // enabled defaults to false.
  EXPECT_FALSE(recorder.wants(*Prefix::parse("10.0.0.0/8")));
  recorder.record(event(RouteEventKind::kReceived, "d", "10.0.0.0/8"));
  EXPECT_EQ(recorder.eventCount(), 1u);  // record() itself does not filter...
  ProvenanceRecorder enabled(watchAll());
  EXPECT_TRUE(enabled.wants(*Prefix::parse("10.0.0.0/8")));  // ...wants() does.
}

TEST(ProvenanceRecorderTest, PrefixFilterCoversContainedPrefixes) {
  ProvenanceOptions options = watchAll();
  options.prefixes.push_back(*Prefix::parse("77.0.0.0/16"));
  const ProvenanceRecorder recorder(options);
  EXPECT_TRUE(recorder.wants(*Prefix::parse("77.0.0.0/16")));
  EXPECT_TRUE(recorder.wants(*Prefix::parse("77.0.4.0/24")));  // Contained.
  EXPECT_FALSE(recorder.wants(*Prefix::parse("77.0.0.0/8")));  // Covering.
  EXPECT_FALSE(recorder.wants(*Prefix::parse("78.0.0.0/16")));
}

TEST(ProvenanceRecorderTest, PerDeviceCapDropsExcessAndCounts) {
  ProvenanceOptions options = watchAll();
  options.perDeviceEventCap = 3;
  ProvenanceRecorder recorder(options);
  for (int i = 0; i < 5; ++i)
    recorder.record(event(RouteEventKind::kReceived, "capped", "10.0.0.0/8"));
  recorder.record(event(RouteEventKind::kReceived, "other", "10.0.0.0/8"));
  EXPECT_EQ(recorder.eventCount(), 4u);  // 3 from "capped" + 1 from "other".
  EXPECT_EQ(recorder.droppedEvents(), 2u);
}

TEST(ProvenanceRecorderTest, TotalCapBoundsEverything) {
  ProvenanceOptions options = watchAll();
  options.totalEventCap = 4;
  ProvenanceRecorder recorder(options);
  for (int i = 0; i < 10; ++i)
    recorder.record(event(RouteEventKind::kReceived, "d" + std::to_string(i),
                          "10.0.0.0/8"));
  EXPECT_EQ(recorder.eventCount(), 4u);
  EXPECT_EQ(recorder.droppedEvents(), 6u);
}

TEST(ProvenanceRecorderTest, AppendReassignsSequenceNumbers) {
  ProvenanceRecorder a(watchAll());
  a.record(event(RouteEventKind::kReceived, "x", "10.0.0.0/8"));
  ProvenanceRecorder b(watchAll());
  b.record(event(RouteEventKind::kChosenBest, "y", "10.0.0.0/8"));
  b.record(event(RouteEventKind::kAdvertised, "y", "10.0.0.0/8"));
  a.append(b.snapshot());
  const std::vector<RouteEvent> merged = a.snapshot();
  ASSERT_EQ(merged.size(), 3u);
  for (size_t i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i].seq, i);
  EXPECT_EQ(merged[1].kind, RouteEventKind::kChosenBest);
}

TEST(ProvenanceRecorderTest, ClearResetsEventsAndDropCounts) {
  ProvenanceOptions options = watchAll();
  options.totalEventCap = 1;
  ProvenanceRecorder recorder(options);
  recorder.record(event(RouteEventKind::kReceived, "d", "10.0.0.0/8"));
  recorder.record(event(RouteEventKind::kReceived, "d", "10.0.0.0/8"));
  EXPECT_EQ(recorder.droppedEvents(), 1u);
  recorder.clear();
  EXPECT_EQ(recorder.eventCount(), 0u);
  EXPECT_EQ(recorder.droppedEvents(), 0u);
  recorder.record(event(RouteEventKind::kReceived, "d", "10.0.0.0/8"));
  EXPECT_EQ(recorder.snapshot()[0].seq, 0u);  // Sequence restarts.
}

TEST(ProvenanceTest, ParseExplainTarget) {
  std::string device;
  Prefix prefix;
  ASSERT_TRUE(obs::parseExplainTarget("f9-A/77.0.0.0/16", device, prefix));
  EXPECT_EQ(device, "f9-A");
  EXPECT_EQ(prefix, *Prefix::parse("77.0.0.0/16"));
  ASSERT_TRUE(obs::parseExplainTarget("R1/2400:1::/32", device, prefix));
  EXPECT_EQ(device, "R1");
  EXPECT_EQ(prefix, *Prefix::parse("2400:1::/32"));
  EXPECT_FALSE(obs::parseExplainTarget("no-slash", device, prefix));
  EXPECT_FALSE(obs::parseExplainTarget("R1/not-a-prefix", device, prefix));
}

TEST(ProvenanceTest, EventJsonNamesKindAndEscapes) {
  RouteEvent e = event(RouteEventKind::kPolicyDenied, "R1", "10.0.0.0/8", "R2");
  e.detail = "clause \"10\"";
  const std::string json = e.toJson();
  EXPECT_NE(json.find("\"kind\":\"policy-denied\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\\"10\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"device\":\"R1\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Capture during simulation.
// ---------------------------------------------------------------------------

TEST(ProvenanceSimTest, RecordsReceiveSelectAdvertiseChain) {
  const SmallWan net = buildSmallWan();
  ProvenanceRecorder recorder(watchAll());
  RouteSimOptions options;
  options.provenance = &recorder;
  const RouteSimResult result =
      simulateRoutes(net.model(), std::vector<InputRoute>{ispRoute(net, "100.1.0.0/16")}, options);
  ASSERT_TRUE(result.stats.converged);

  const Prefix prefix = *Prefix::parse("100.1.0.0/16");
  const std::vector<RouteEvent> events = recorder.snapshot();
  const auto onBorder = kindsFor(events, net.br1, prefix);
  EXPECT_TRUE(hasKind(onBorder, RouteEventKind::kReceived));
  EXPECT_TRUE(hasKind(onBorder, RouteEventKind::kChosenBest));
  EXPECT_TRUE(hasKind(onBorder, RouteEventKind::kAdvertised));
  // The cores received it via the RR and selected it too.
  EXPECT_TRUE(hasKind(kindsFor(events, net.c1, prefix), RouteEventKind::kChosenBest));
  // Every event carries a sequence number in recording order.
  for (size_t i = 1; i < events.size(); ++i)
    EXPECT_GT(events[i].seq, events[i - 1].seq);
}

TEST(ProvenanceSimTest, PrefixFilterScopesTheLog) {
  const SmallWan net = buildSmallWan();
  ProvenanceOptions options = watchAll();
  options.prefixes.push_back(*Prefix::parse("100.1.0.0/16"));
  ProvenanceRecorder recorder(options);
  RouteSimOptions simOptions;
  simOptions.provenance = &recorder;
  simulateRoutes(net.model(),
                 std::vector<InputRoute>{ispRoute(net, "100.1.0.0/16"), ispRoute(net, "200.2.0.0/16")},
                 simOptions);
  for (const RouteEvent& e : recorder.snapshot())
    EXPECT_EQ(e.prefix, *Prefix::parse("100.1.0.0/16")) << e.str();
  EXPECT_GT(recorder.eventCount(), 0u);
}

TEST(ProvenanceSimTest, LoopPreventionRecorded) {
  const SmallWan net = buildSmallWan();
  InputRoute poisoned = ispRoute(net, "100.2.0.0/16");
  poisoned.route.attrs.asPath = AsPath({70000, 64512});
  ProvenanceRecorder recorder(watchAll());
  RouteSimOptions options;
  options.provenance = &recorder;
  simulateRoutes(net.model(), std::vector<InputRoute>{poisoned}, options);
  const auto kinds = kindsFor(recorder.snapshot(), net.br1,
                              *Prefix::parse("100.2.0.0/16"));
  EXPECT_TRUE(hasKind(kinds, RouteEventKind::kLoopPrevented));
  EXPECT_FALSE(hasKind(kinds, RouteEventKind::kReceived));
}

TEST(ProvenanceSimTest, TieBreakLossNamesDecidingStep) {
  // Two equal-AS-path-length routes for one prefix differing in MED: the
  // loser must record a lost-tie-break event naming the step.
  const SmallWan net = buildSmallWan();
  ProvenanceRecorder recorder(watchAll());
  RouteSimOptions options;
  options.provenance = &recorder;
  const RouteSimResult result = simulateRoutes(
      net.model(), std::vector<InputRoute>{ispRoute(net, "100.3.0.0/16", /*med=*/10),
                    ispRoute(net, "100.3.0.0/16", /*med=*/50)},
      options);
  ASSERT_TRUE(result.stats.converged);
  bool lostOnMed = false;
  for (const RouteEvent& e : recorder.snapshot())
    if (e.kind == RouteEventKind::kLostTieBreak &&
        e.detail.find("med") != std::string::npos)
      lostOnMed = true;
  EXPECT_TRUE(lostOnMed);
}

TEST(ProvenanceSimTest, DisabledRecorderStaysEmpty) {
  const SmallWan net = buildSmallWan();
  ProvenanceRecorder recorder;  // Not enabled.
  RouteSimOptions options;
  options.provenance = &recorder;
  simulateRoutes(net.model(), std::vector<InputRoute>{ispRoute(net, "100.1.0.0/16")}, options);
  EXPECT_EQ(recorder.eventCount(), 0u);
}

// The Fig. 9 signature: vendorA's IGP-cost-for-SR rule leaves a vsb-applied
// event, and the explain chain surfaces it with the rewrite detail.
TEST(ProvenanceSimTest, VsbApplicationRecordedAndExplained) {
  NetBuilder nb;
  const NameId a = nb.device("pv-A", 64700, vendorA());
  const NameId b = nb.device("pv-B", 64700, vendorB());
  const NameId c = nb.device("pv-C", 64700, vendorB());
  nb.link(a, b, 10, 1e9);
  nb.link(a, c, 10, 1e9);
  nb.ibgp(a, b, /*bIsClientOfA=*/true);
  nb.ibgp(a, c, /*bIsClientOfA=*/true);
  SrPolicyConfig sr;
  sr.name = Names::id("SR-TO-B");
  sr.endpoint = nb.loopback(b);
  nb.config(a).srPolicies.push_back(sr);

  const Prefix prefix = *Prefix::parse("77.0.0.0/16");
  ProvenanceRecorder recorder(watchAll());
  RouteSimOptions options;
  options.provenance = &recorder;
  const RouteSimResult result = simulateRoutes(
      nb.build(),
      std::vector<InputRoute>{nb.originate(b, "77.0.0.0/16"),
                              nb.originate(c, "77.0.0.0/16")},
      options);
  ASSERT_TRUE(result.stats.converged);

  const auto kinds = kindsFor(recorder.snapshot(), a, prefix);
  EXPECT_TRUE(hasKind(kinds, RouteEventKind::kVsbApplied));
  const std::string explain = recorder.explainJson(a, prefix);
  EXPECT_NE(explain.find("vsb-applied"), std::string::npos) << explain;
  EXPECT_NE(explain.find("igp-cost-zero-via-sr-tunnel"), std::string::npos)
      << explain;
}

TEST(ProvenanceSimTest, ExplainChainFollowsUpstreamDevices) {
  const SmallWan net = buildSmallWan();
  ProvenanceRecorder recorder(watchAll());
  RouteSimOptions options;
  options.provenance = &recorder;
  simulateRoutes(net.model(), std::vector<InputRoute>{ispRoute(net, "100.1.0.0/16")}, options);
  // C1 learned the route via RR1 (from BR1): the chain must mention an
  // upstream section and the border's events.
  const std::string explain =
      recorder.explainJson(net.c1, *Prefix::parse("100.1.0.0/16"));
  EXPECT_NE(explain.find("\"upstream\""), std::string::npos) << explain;
  EXPECT_NE(explain.find(Names::str(net.br1)), std::string::npos) << explain;
  // Unknown pairs explain to an empty-events object, not an error.
  const std::string none =
      recorder.explainJson(Names::id("no-such-device"), *Prefix::parse("1.0.0.0/8"));
  EXPECT_NE(none.find("\"events\":[]"), std::string::npos) << none;
}

// ---------------------------------------------------------------------------
// Propagation graph.
// ---------------------------------------------------------------------------

TEST(PropGraphTest, BuildsEdgesFromSimulationEvents) {
  const SmallWan net = buildSmallWan();
  ProvenanceRecorder recorder(watchAll());
  RouteSimOptions options;
  options.provenance = &recorder;
  simulateRoutes(net.model(), std::vector<InputRoute>{ispRoute(net, "100.1.0.0/16")}, options);

  const PropagationGraph graph = PropagationGraph::fromProvenance(recorder.snapshot());
  EXPECT_FALSE(graph.nodes().empty());
  const auto hasEdge = [&](NameId from, NameId to, const std::string& kind) {
    return std::any_of(graph.edges().begin(), graph.edges().end(),
                       [&](const PropEdge& e) {
                         return e.from == from && e.to == to && e.kind == kind;
                       });
  };
  EXPECT_TRUE(hasEdge(net.isp1, net.br1, "received"));
  EXPECT_TRUE(hasEdge(net.br1, net.rr1, "advertised"));
  EXPECT_TRUE(hasEdge(net.rr1, net.c1, "received"));
}

TEST(PropGraphTest, AddEdgeDeduplicatesAndRegistersNodes) {
  PropagationGraph graph;
  PropEdge edge;
  edge.from = Names::id("pg-A");
  edge.to = Names::id("pg-B");
  edge.prefix = *Prefix::parse("10.0.0.0/8");
  edge.kind = "advertised";
  graph.addEdge(edge);
  graph.addEdge(edge);  // Identical: dropped.
  EXPECT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.nodes().size(), 2u);
  edge.kind = "denied";
  graph.addEdge(edge);  // Different kind: kept.
  EXPECT_EQ(graph.edges().size(), 2u);
}

TEST(PropGraphTest, WalkOrderIsBreadthFirstFromStart) {
  PropagationGraph graph;
  const NameId a = Names::id("w-A"), b = Names::id("w-B"), c = Names::id("w-C"),
               d = Names::id("w-D");
  const auto edge = [](NameId from, NameId to) {
    PropEdge e;
    e.from = from;
    e.to = to;
    e.prefix = *Prefix::parse("10.0.0.0/8");
    e.kind = "advertised";
    return e;
  };
  graph.addEdge(edge(a, b));
  graph.addEdge(edge(b, c));
  graph.addEdge(edge(c, d));
  const std::vector<NameId> order = graph.walkOrder(b);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], b);
  // a and c are both at distance 1; d is at distance 2, so it comes last.
  EXPECT_EQ(order[3], d);
  // A start with no edges still leads a single-element order.
  const std::vector<NameId> lonely = graph.walkOrder(Names::id("w-Z"));
  ASSERT_EQ(lonely.size(), 1u);
  EXPECT_EQ(lonely[0], Names::id("w-Z"));
}

TEST(PropGraphTest, DotAndJsonExports) {
  PropagationGraph graph;
  PropEdge edge;
  edge.from = Names::id("ex-A");
  edge.to = Names::id("ex-B");
  edge.prefix = *Prefix::parse("10.0.0.0/8");
  edge.kind = "denied";
  edge.detail = "clause 10";
  graph.addEdge(edge);
  const std::string dot = graph.toDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos) << dot;
  EXPECT_NE(dot.find("\"ex-A\" -> \"ex-B\""), std::string::npos) << dot;
  EXPECT_NE(dot.find("dashed"), std::string::npos) << dot;  // Denied edges.
  const std::string json = graph.toJson();
  EXPECT_NE(json.find("\"kind\":\"denied\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"nodes\":"), std::string::npos) << json;
}

TEST(PropGraphTest, FromRibsReconstructsLearnedFromEdges) {
  const SmallWan net = buildSmallWan();
  const RouteSimResult result =
      simulateRoutes(net.model(), std::vector<InputRoute>{ispRoute(net, "100.1.0.0/16")});
  const PropagationGraph graph =
      PropagationGraph::fromRibs(result.ribs, *Prefix::parse("100.1.0.0/16"));
  EXPECT_FALSE(graph.edges().empty());
  for (const PropEdge& e : graph.edges()) EXPECT_EQ(e.kind, "rib");
  // The RR is on the reconstructed path from the border to the cores.
  const auto touches = [&](NameId device) {
    return std::find(graph.nodes().begin(), graph.nodes().end(), device) !=
           graph.nodes().end();
  };
  EXPECT_TRUE(touches(net.rr1));
  EXPECT_TRUE(touches(net.c1));
}

// ---------------------------------------------------------------------------
// Compressed event blobs (the cache's `#prov` side channel).
// ---------------------------------------------------------------------------

TEST(ProvenanceCompressionTest, RoundTripPreservesEveryField) {
  std::vector<RouteEvent> events;
  const std::vector<RouteEventKind> kinds = {
      RouteEventKind::kReceived,          RouteEventKind::kPolicyDenied,
      RouteEventKind::kLoopPrevented,     RouteEventKind::kNexthopUnresolved,
      RouteEventKind::kVsbApplied,        RouteEventKind::kChosenBest,
      RouteEventKind::kChosenEcmp,        RouteEventKind::kLostTieBreak,
      RouteEventKind::kWithdrawn,         RouteEventKind::kAdvertised,
  };
  for (size_t i = 0; i < kinds.size(); ++i) {
    RouteEvent e = event(kinds[i], "dev-" + std::to_string(i % 3),
                         i % 2 == 0 ? "100.1." + std::to_string(i) + ".0/24"
                                    : "2001:db8::/32",
                         i % 2 == 0 ? "peer-" + std::to_string(i % 2) : "");
    e.vrf = Names::id("vrf-main");
    e.detail = i % 3 == 0 ? "" : "clause " + std::to_string(i % 2);  // Repeats.
    e.route = i % 4 == 0 ? "rendered route " + std::to_string(i) : "";
    e.seq = 10 + i * 3;
    events.push_back(e);
  }

  const std::vector<uint8_t> bytes = obs::compressRouteEvents(events);
  const std::vector<RouteEvent> back = obs::decompressRouteEvents(bytes);
  ASSERT_EQ(back.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i].kind, events[i].kind) << i;
    EXPECT_EQ(back[i].device, events[i].device) << i;
    EXPECT_EQ(back[i].vrf, events[i].vrf) << i;
    EXPECT_EQ(back[i].prefix, events[i].prefix) << i;
    EXPECT_EQ(back[i].peer, events[i].peer) << i;
    EXPECT_EQ(back[i].detail, events[i].detail) << i;
    EXPECT_EQ(back[i].route, events[i].route) << i;
    EXPECT_EQ(back[i].seq, events[i].seq) << i;
  }
}

TEST(ProvenanceCompressionTest, EmptyAndMalformedInputsAreSafe) {
  EXPECT_TRUE(obs::decompressRouteEvents(obs::compressRouteEvents({})).empty());
  EXPECT_TRUE(obs::decompressRouteEvents({}).empty());
  // Truncation and garbage must not crash; whatever parses before the first
  // inconsistency is returned.
  std::vector<RouteEvent> events;
  for (int i = 0; i < 8; ++i)
    events.push_back(event(RouteEventKind::kReceived, "d",
                           "10.0." + std::to_string(i) + ".0/24"));
  const std::vector<uint8_t> bytes = obs::compressRouteEvents(events);
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    const std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    EXPECT_LE(obs::decompressRouteEvents(truncated).size(), events.size());
  }
  const std::vector<uint8_t> garbage = {0xff, 0xff, 0xff, 0xff, 0x01, 0x02};
  obs::decompressRouteEvents(garbage);  // Must not crash or throw.
}

TEST(ProvenanceCompressionTest, StringTableBeatsNaiveEncoding) {
  // 500 events sharing two detail strings: interning should keep the blob far
  // below the repeated-payload size.
  std::vector<RouteEvent> events;
  size_t naive = 0;
  for (int i = 0; i < 500; ++i) {
    RouteEvent e = event(RouteEventKind::kLostTieBreak, "device-long-name",
                         "100.1.0.0/16", "peer-long-name");
    e.detail = i % 2 == 0 ? "lost to lower router-id after igp-cost tie"
                          : "lost to higher local-pref";
    e.seq = i;
    naive += e.detail.size() + 32;
    events.push_back(e);
  }
  const std::vector<uint8_t> bytes = obs::compressRouteEvents(events);
  EXPECT_LT(bytes.size(), naive / 3);
  EXPECT_EQ(obs::decompressRouteEvents(bytes).size(), events.size());
}

TEST(ProvenanceCompressionTest, OptionsFingerprintTracksTheFilter) {
  ProvenanceOptions base = watchAll();
  EXPECT_EQ(obs::provenanceOptionsFingerprint(base),
            obs::provenanceOptionsFingerprint(base));

  ProvenanceOptions narrowed = base;
  narrowed.prefixes.push_back(*Prefix::parse("100.1.0.0/16"));
  EXPECT_NE(obs::provenanceOptionsFingerprint(base),
            obs::provenanceOptionsFingerprint(narrowed));

  ProvenanceOptions otherPrefix = base;
  otherPrefix.prefixes.push_back(*Prefix::parse("100.2.0.0/16"));
  EXPECT_NE(obs::provenanceOptionsFingerprint(narrowed),
            obs::provenanceOptionsFingerprint(otherPrefix));

  ProvenanceOptions capped = base;
  capped.perDeviceEventCap = 7;
  EXPECT_NE(obs::provenanceOptionsFingerprint(base),
            obs::provenanceOptionsFingerprint(capped));

  ProvenanceOptions disabled = base;
  disabled.enabled = false;
  EXPECT_NE(obs::provenanceOptionsFingerprint(base),
            obs::provenanceOptionsFingerprint(disabled));
}

}  // namespace
}  // namespace hoyan
