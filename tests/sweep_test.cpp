// Differential tests for the distributed k-failure sweep engine: every mode
// (worker counts, pruning, dedupe, caching, retries, early exit) must produce
// results byte-identical to the serial oracle `checkKFailures`.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/hoyan.h"
#include "incr/engine.h"
#include "inspect.h"
#include "obs/telemetry.h"
#include "sweep/sweep.h"
#include "test_fixtures.h"
#include "verify/properties.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

void expectSameResult(const KFailureResult& expected, const KFailureResult& actual,
                      const std::string& label) {
  EXPECT_EQ(expected.scenariosChecked, actual.scenariosChecked) << label;
  ASSERT_EQ(expected.counterexamples.size(), actual.counterexamples.size()) << label;
  for (size_t i = 0; i < expected.counterexamples.size(); ++i) {
    EXPECT_EQ(expected.counterexamples[i].failedLinks,
              actual.counterexamples[i].failedLinks)
        << label << " counterexample " << i;
    EXPECT_EQ(expected.counterexamples[i].failedDevices,
              actual.counterexamples[i].failedDevices)
        << label << " counterexample " << i;
  }
}

// Adds a second external peer to the fixture: BR1 --- ISP2 over a non-IGP
// link with an eBGP session, announcing 200.2.0.0/16. Irrelevant to any
// property about 100.1.0.0/16, so its link is prunable under hints.
NameId addSecondIsp(SmallWan& net, std::vector<InputRoute>& inputs) {
  Device isp2;
  isp2.name = Names::id("t-ISP2");
  isp2.role = DeviceRole::kExternalPeer;
  isp2.loopback = *IpAddress::parse("9.0.0.99");
  net.topology.addDevice(isp2);
  DeviceConfig config;
  config.hostname = isp2.name;
  config.vendor = vendorB().name;
  config.routerId = isp2.loopback;
  config.bgp.asn = 65002;
  net.configs.mutableDevices().emplace(isp2.name, std::move(config));

  Device* border = net.topology.findDevice(net.br1);
  Device* peer = net.topology.findDevice(isp2.name);
  Interface borderItf;
  borderItf.name = Names::id("t-BR1:isp2");
  borderItf.address = *IpAddress::parse("172.21.0.1");
  borderItf.prefixLength = 30;
  border->interfaces.push_back(borderItf);
  Interface peerItf;
  peerItf.name = Names::id("t-ISP2:e0");
  peerItf.address = *IpAddress::parse("172.21.0.2");
  peerItf.prefixLength = 30;
  peer->interfaces.push_back(peerItf);
  net.topology.addLink(net.br1, borderItf.name, isp2.name, peerItf.name);

  BgpNeighbor toPeer;
  toPeer.peerAddress = peerItf.address;
  toPeer.remoteAs = 65002;
  net.configs.device(net.br1).bgp.neighbors.push_back(toPeer);
  BgpNeighbor toBorder;
  toBorder.peerAddress = borderItf.address;
  toBorder.remoteAs = 64512;
  net.configs.device(isp2.name).bgp.neighbors.push_back(toBorder);

  InputRoute announcement;
  announcement.device = isp2.name;
  announcement.route.prefix = *Prefix::parse("200.2.0.0/16");
  announcement.route.protocol = Protocol::kBgp;
  announcement.route.attrs.origin = BgpOrigin::kIgp;
  announcement.route.nexthop = isp2.loopback;
  announcement.route.nexthopDevice = isp2.name;
  inputs.push_back(announcement);
  return isp2.name;
}

class SweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = buildSmallWan();
    model_ = net_.model();
    inputs_ = {ispRoute(net_, "100.1.0.0/16")};
  }

  // Property: the ISP route stays data-plane reachable from C2. BR1-ISP1 and
  // BR1-C1 are single points of failure for it.
  NetworkProperty reachProperty() const {
    return [this](const NetworkModel& degraded, const NetworkRibs& ribs) {
      return dataPlaneReachable(degraded, ribs, net_.c2,
                                *IpAddress::parse("100.1.2.3"));
    };
  }

  SmallWan net_;
  NetworkModel model_;
  std::vector<InputRoute> inputs_;
};

TEST_F(SweepTest, MatchesSerialOracleAcrossWorkerCounts) {
  KFailureOptions failure;
  failure.k = 2;
  failure.maxCounterexamples = 50;
  const KFailureResult serial = checkKFailures(model_, inputs_, reachProperty(), failure);
  EXPECT_FALSE(serial.holds());

  for (const size_t workers : {1u, 3u, 6u}) {
    sweep::SweepOptions options;
    options.failure = failure;
    options.workers = workers;
    const sweep::SweepResult swept =
        sweep::sweepKFailures(model_, inputs_, reachProperty(), options);
    expectSameResult(serial, swept.result, "workers=" + std::to_string(workers));
    EXPECT_EQ(swept.stats.enumerated, serial.scenariosChecked);
    EXPECT_EQ(swept.stats.pruned, 0u);  // No hints: pruning disabled.
  }
}

TEST_F(SweepTest, MatchesSerialWithDeviceFailures) {
  KFailureOptions failure;
  failure.k = 1;
  failure.includeDeviceFailures = true;
  failure.maxCounterexamples = 50;
  const KFailureResult serial = checkKFailures(model_, inputs_, reachProperty(), failure);

  for (const size_t workers : {1u, 3u, 6u}) {
    sweep::SweepOptions options;
    options.failure = failure;
    options.workers = workers;
    const sweep::SweepResult swept =
        sweep::sweepKFailures(model_, inputs_, reachProperty(), options);
    expectSameResult(serial, swept.result,
                     "devices workers=" + std::to_string(workers));
  }
}

TEST_F(SweepTest, MatchesSerialUnderCounterexampleCap) {
  // The cap cuts enumeration mid-sweep; the committed prefix must equal the
  // serial evaluation set with or without early-exit cancellation.
  KFailureOptions failure;
  failure.k = 2;
  failure.includeDeviceFailures = true;
  failure.maxCounterexamples = 2;
  const KFailureResult serial = checkKFailures(model_, inputs_, reachProperty(), failure);
  ASSERT_EQ(serial.counterexamples.size(), 2u);

  for (const size_t workers : {1u, 3u, 6u}) {
    for (const bool earlyExit : {true, false}) {
      sweep::SweepOptions options;
      options.failure = failure;
      options.workers = workers;
      options.earlyExit = earlyExit;
      const sweep::SweepResult swept =
          sweep::sweepKFailures(model_, inputs_, reachProperty(), options);
      expectSameResult(serial, swept.result,
                       "cap workers=" + std::to_string(workers) +
                           " earlyExit=" + (earlyExit ? "on" : "off"));
    }
  }
}

TEST_F(SweepTest, FocusDevicesMatchSerial) {
  const Prefix rrLoopback(model_.topology.findDevice(net_.rr1)->loopback, 32);
  const NetworkProperty property = [&](const NetworkModel&, const NetworkRibs& ribs) {
    const auto devices = devicesWithRoute(ribs, rrLoopback);
    return std::find(devices.begin(), devices.end(), net_.c1) != devices.end();
  };
  KFailureOptions failure;
  failure.k = 1;
  failure.focusDevices = {net_.c1, net_.c2, net_.rr1};
  const KFailureResult serial = checkKFailures(model_, inputs_, property, failure);
  EXPECT_TRUE(serial.holds());

  sweep::SweepOptions options;
  options.failure = failure;
  options.workers = 3;
  const sweep::SweepResult swept =
      sweep::sweepKFailures(model_, inputs_, property, options);
  expectSameResult(serial, swept.result, "focus");
}

TEST_F(SweepTest, PruningSkipsInertScenariosAndMatchesSerial) {
  // ISP2's link carries no IGP adjacency, injects only 200.2.0.0/16, and is
  // on no relevant device — every scenario that only fails it inherits the
  // base verdict.
  addSecondIsp(net_, inputs_);
  model_ = net_.model();
  KFailureOptions failure;
  failure.k = 2;
  failure.maxCounterexamples = 50;
  const KFailureResult serial = checkKFailures(model_, inputs_, reachProperty(), failure);

  sweep::SweepHints hints;
  hints.relevantPrefixes = {*Prefix::parse("100.1.0.0/16")};
  hints.relevantDevices = {net_.c2};
  sweep::SweepOptions options;
  options.failure = failure;
  options.workers = 3;
  const sweep::SweepResult pruned =
      sweep::sweepKFailures(model_, inputs_, reachProperty(), options, hints);
  expectSameResult(serial, pruned.result, "pruned");
  EXPECT_GT(pruned.stats.pruned + pruned.stats.deduped, 0u);
  EXPECT_LT(pruned.stats.scheduled, pruned.stats.enumerated);

  options.prune = false;
  const sweep::SweepResult unpruned =
      sweep::sweepKFailures(model_, inputs_, reachProperty(), options, hints);
  expectSameResult(serial, unpruned.result, "prune=off");
  EXPECT_EQ(unpruned.stats.pruned, 0u);
}

TEST_F(SweepTest, DedupeSharesSymmetricScenarios) {
  // A parallel C1-C2 link: failing either one degrades the network
  // identically (link state is per device pair), so the two scenarios share
  // one job.
  Device* c1 = net_.topology.findDevice(net_.c1);
  Device* c2 = net_.topology.findDevice(net_.c2);
  Interface itfA;
  itfA.name = Names::id("t-C1:par");
  itfA.address = *IpAddress::parse("172.22.0.1");
  itfA.prefixLength = 30;
  itfA.isisEnabled = true;
  itfA.isisCost = 10;
  c1->interfaces.push_back(itfA);
  Interface itfB;
  itfB.name = Names::id("t-C2:par");
  itfB.address = *IpAddress::parse("172.22.0.2");
  itfB.prefixLength = 30;
  itfB.isisEnabled = true;
  itfB.isisCost = 10;
  c2->interfaces.push_back(itfB);
  net_.topology.addLink(net_.c1, itfA.name, net_.c2, itfB.name);
  model_ = net_.model();

  KFailureOptions failure;
  failure.k = 2;
  failure.maxCounterexamples = 50;
  const KFailureResult serial = checkKFailures(model_, inputs_, reachProperty(), failure);

  sweep::SweepOptions options;
  options.failure = failure;
  options.workers = 3;
  const sweep::SweepResult swept =
      sweep::sweepKFailures(model_, inputs_, reachProperty(), options);
  expectSameResult(serial, swept.result, "dedupe");
  EXPECT_GT(swept.stats.deduped, 0u);
  EXPECT_EQ(swept.stats.scheduled + swept.stats.deduped + swept.stats.pruned,
            swept.stats.enumerated);

  options.dedupe = false;
  const sweep::SweepResult full =
      sweep::sweepKFailures(model_, inputs_, reachProperty(), options);
  expectSameResult(serial, full.result, "dedupe=off");
  EXPECT_EQ(full.stats.deduped, 0u);
  EXPECT_EQ(full.stats.scheduled, full.stats.enumerated);
}

TEST_F(SweepTest, WarmCacheServesVerdictsByteIdentically) {
  incr::IncrementalEngine engine;
  KFailureOptions failure;
  failure.k = 2;
  failure.maxCounterexamples = 50;
  const KFailureResult serial = checkKFailures(model_, inputs_, reachProperty(), failure);

  sweep::SweepHints hints;
  hints.cacheId = "reach-c2-100.1.2.3";
  sweep::SweepOptions options;
  options.failure = failure;
  options.workers = 3;
  options.incremental = &engine;

  const sweep::SweepResult cold =
      sweep::sweepKFailures(model_, inputs_, reachProperty(), options, hints);
  expectSameResult(serial, cold.result, "cold");
  EXPECT_EQ(cold.stats.cacheHits, 0u);
  EXPECT_GT(cold.stats.evaluated, 0u);

  for (const size_t workers : {3u, 6u}) {
    options.workers = workers;
    const sweep::SweepResult warm =
        sweep::sweepKFailures(model_, inputs_, reachProperty(), options, hints);
    expectSameResult(serial, warm.result, "warm workers=" + std::to_string(workers));
    EXPECT_EQ(warm.stats.cacheHits, cold.stats.scheduled);
    EXPECT_EQ(warm.stats.evaluated, 0u);
    EXPECT_EQ(warm.stats.scheduled, 0u);
  }

  // A different property id must not share the cache.
  sweep::SweepHints otherHints;
  otherHints.cacheId = "a-different-property";
  const sweep::SweepResult other =
      sweep::sweepKFailures(model_, inputs_, reachProperty(), options, otherHints);
  expectSameResult(serial, other.result, "other-id");
  EXPECT_EQ(other.stats.cacheHits, 0u);
}

TEST_F(SweepTest, RetriesRecoverFromInjectedCrashes) {
  KFailureOptions failure;
  failure.k = 2;
  failure.maxCounterexamples = 50;
  const KFailureResult serial = checkKFailures(model_, inputs_, reachProperty(), failure);

  sweep::SweepOptions options;
  options.failure = failure;
  options.workers = 4;
  options.workerFailureProbability = 0.3;
  options.failureSeed = 7;
  options.maxAttempts = 10;
  const sweep::SweepResult swept =
      sweep::sweepKFailures(model_, inputs_, reachProperty(), options);
  expectSameResult(serial, swept.result, "retries");
  EXPECT_GT(swept.stats.retries, 0u) << "fault injection never fired";
}

TEST_F(SweepTest, ExhaustedRetryBudgetThrows) {
  sweep::SweepOptions options;
  options.failure.k = 1;
  options.workers = 2;
  options.workerFailureProbability = 1.0;
  options.maxAttempts = 2;
  EXPECT_THROW(sweep::sweepKFailures(model_, inputs_, reachProperty(), options),
               std::runtime_error);
}

TEST_F(SweepTest, JournalEventsValidateAndAreDeterministicAcrossWorkerCounts) {
  KFailureOptions failure;
  failure.k = 1;
  failure.maxCounterexamples = 50;  // Never reached: no early-exit races.

  const auto canonicalRun = [&](size_t workers) {
    obs::TelemetryOptions telemetryOptions;
    telemetryOptions.journal = true;
    obs::Telemetry telemetry(telemetryOptions);
    sweep::SweepOptions options;
    options.failure = failure;
    options.workers = workers;
    options.telemetry = &telemetry;
    sweep::sweepKFailures(model_, inputs_, reachProperty(), options);
    std::string error;
    EXPECT_TRUE(inspect::validateJournal(telemetry.journal().toJsonl(), error))
        << error;
    return telemetry.journal().canonicalJsonl();
  };

  const std::string serial = canonicalRun(1);
  const std::string parallel = canonicalRun(4);
  EXPECT_EQ(serial, parallel);
  EXPECT_NE(serial.find("\"ev\":\"sweep_plan\""), std::string::npos);
  EXPECT_NE(serial.find("\"ev\":\"sweep_verdict\""), std::string::npos);
  EXPECT_NE(serial.find("\"ev\":\"sweep_result\""), std::string::npos);
}

TEST(SweepHoyanTest, CheckFaultToleranceMatchesSerialOracle) {
  SmallWan net = buildSmallWan();
  Hoyan hoyan(net.topology, net.configs);
  hoyan.setInputRoutes({ispRoute(net, "100.1.0.0/16")});
  DistSimOptions simOptions;
  simOptions.workers = 3;
  hoyan.setSimulationOptions(simOptions);
  hoyan.enableIncremental();
  hoyan.preprocess();

  const NetworkProperty property = [&](const NetworkModel& degraded,
                                       const NetworkRibs& ribs) {
    return dataPlaneReachable(degraded, ribs, net.c2,
                              *IpAddress::parse("100.1.2.3"));
  };
  KFailureOptions failure;
  failure.k = 1;
  failure.maxCounterexamples = 10;
  const KFailureResult serial = hoyan.checkFaultToleranceSerial(property, failure);
  EXPECT_FALSE(serial.holds());

  sweep::SweepHints hints;
  hints.cacheId = "reach-c2";
  const KFailureResult swept = hoyan.checkFaultTolerance(property, failure, hints);
  expectSameResult(serial, swept, "hoyan cold");

  const sweep::SweepResult warm = hoyan.sweepFaultTolerance(property, failure, hints);
  expectSameResult(serial, warm.result, "hoyan warm");
  EXPECT_GT(warm.stats.cacheHits, 0u);
  EXPECT_EQ(warm.stats.evaluated, 0u);
}

}  // namespace
}  // namespace hoyan
