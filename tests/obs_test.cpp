// Tests of the telemetry subsystem: registry concurrency (atomic hot paths),
// histogram bucketing, span nesting/ordering and the per-thread stack,
// exporter round-trips (the JSON snapshot and Chrome trace parse back), the
// instrumented queue/store bindings, and logger level gating.
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "dist/message_queue.h"
#include "dist/object_store.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace hoyan {
namespace {

// --- a minimal JSON parser, enough to round-trip the exporters -------------
struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;
struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, std::shared_ptr<JsonObject>,
               std::shared_ptr<JsonArray>>
      value;

  bool isObject() const { return std::holds_alternative<std::shared_ptr<JsonObject>>(value); }
  const JsonObject& object() const { return *std::get<std::shared_ptr<JsonObject>>(value); }
  const JsonArray& array() const { return *std::get<std::shared_ptr<JsonArray>>(value); }
  double number() const { return std::get<double>(value); }
  const std::string& str() const { return std::get<std::string>(value); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parseValue();
    skipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing JSON content";
    return value;
  }

 private:
  void skipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  char peek() {
    skipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void expect(char c) {
    skipSpace();
    ASSERT_LT(pos_, text_.size());
    ASSERT_EQ(text_[pos_], c) << "at offset " << pos_;
    ++pos_;
  }

  JsonValue parseValue() {
    const char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') return JsonValue{parseString()};
    if (c == 't') { pos_ += 4; return JsonValue{true}; }
    if (c == 'f') { pos_ += 5; return JsonValue{false}; }
    if (c == 'n') { pos_ += 4; return JsonValue{nullptr}; }
    return parseNumber();
  }

  JsonValue parseObject() {
    auto object = std::make_shared<JsonObject>();
    expect('{');
    if (peek() == '}') { ++pos_; return JsonValue{object}; }
    while (true) {
      std::string key = parseString();
      expect(':');
      (*object)[key] = parseValue();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      break;
    }
    return JsonValue{object};
  }

  JsonValue parseArray() {
    auto array = std::make_shared<JsonArray>();
    expect('[');
    if (peek() == ']') { ++pos_; return JsonValue{array}; }
    while (true) {
      array->push_back(parseValue());
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      break;
    }
    return JsonValue{array};
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
        switch (text_[pos_]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': pos_ += 4; out += '?'; break;
          default: out += text_[pos_];
        }
      } else {
        out += text_[pos_];
      }
      ++pos_;
    }
    ++pos_;  // Closing quote.
    return out;
  }

  JsonValue parseNumber() {
    skipSpace();
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E'))
      ++end;
    const double value = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return JsonValue{value};
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// --- metrics ----------------------------------------------------------------

TEST(MetricsTest, CounterGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("c");
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  EXPECT_EQ(&registry.counter("c"), &counter) << "same name -> same instrument";

  obs::Gauge& gauge = registry.gauge("g");
  gauge.set(7);
  gauge.add(5);
  gauge.add(-10);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.maxValue(), 12) << "high-watermark survives the drop";
  EXPECT_EQ(registry.size(), 2u);
}

TEST(MetricsTest, HistogramBucketsObservations) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("h", {1.0, 10.0});
  histogram.observe(0.5);   // <= 1
  histogram.observe(1.0);   // <= 1 (bounds are inclusive upper bounds)
  histogram.observe(5.0);   // <= 10
  histogram.observe(100.0); // +Inf
  EXPECT_EQ(histogram.count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 106.5);
  const auto counts = histogram.bucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(MetricsTest, ConcurrentUpdatesLoseNothing) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry] {
      // Mixing registration and updates across threads exercises both the
      // registry lock and the atomic hot paths.
      obs::Counter& counter = registry.counter("shared.counter");
      obs::Gauge& gauge = registry.gauge("shared.gauge");
      obs::Histogram& histogram = registry.histogram("shared.hist", {0.5});
      for (int i = 0; i < kIterations; ++i) {
        counter.add(1);
        gauge.add(1);
        gauge.add(-1);
        histogram.observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.counter("shared.counter").value(),
            static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(registry.gauge("shared.gauge").value(), 0);
  obs::Histogram& histogram = registry.histogram("shared.hist");
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(kThreads) * kIterations);
  const auto counts = histogram.bucketCounts();
  EXPECT_EQ(counts[0], static_cast<uint64_t>(kThreads) * kIterations / 2);
  EXPECT_EQ(registry.size(), 3u) << "no duplicate registration under contention";
}

TEST(MetricsTest, JsonSnapshotRoundTrips) {
  obs::MetricsRegistry registry;
  registry.counter("dist.retries").add(3);
  registry.gauge("mq.depth").set(5);
  registry.histogram("lat", {1.0}).observe(0.5);
  registry.histogram("lat").observe(2.0);

  const JsonValue root = JsonParser(registry.toJson()).parse();
  ASSERT_TRUE(root.isObject());
  const JsonObject& counters = root.object().at("counters").object();
  EXPECT_EQ(counters.at("dist.retries").number(), 3.0);
  const JsonObject& gauge = root.object().at("gauges").object().at("mq.depth").object();
  EXPECT_EQ(gauge.at("value").number(), 5.0);
  EXPECT_EQ(gauge.at("max").number(), 5.0);
  const JsonObject& histogram = root.object().at("histograms").object().at("lat").object();
  EXPECT_EQ(histogram.at("count").number(), 2.0);
  EXPECT_EQ(histogram.at("sum").number(), 2.5);
  const JsonArray& buckets = histogram.at("buckets").array();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].object().at("le").number(), 1.0);
  EXPECT_EQ(buckets[0].object().at("count").number(), 1.0);
  EXPECT_EQ(buckets[1].object().at("le").str(), "+Inf");
}

TEST(MetricsTest, PrometheusTextExposition) {
  obs::MetricsRegistry registry;
  registry.counter("dist.retries").add(2);
  registry.gauge("store.live_bytes").set(1024);
  registry.histogram("dist.subtask_seconds", {0.1, 1.0}).observe(0.05);
  registry.histogram("dist.subtask_seconds").observe(0.5);
  const std::string text = registry.toPrometheusText();
  EXPECT_NE(text.find("# TYPE dist_retries counter\ndist_retries 2\n"), std::string::npos);
  EXPECT_NE(text.find("store_live_bytes 1024"), std::string::npos);
  // Every family carries a HELP line even when no call site registered help:
  // the default names the dotted registry entry.
  EXPECT_NE(text.find("# HELP dist_retries Hoyan counter 'dist.retries'.\n"
                      "# TYPE dist_retries counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP store_live_bytes "), std::string::npos);
  // Buckets are cumulative in the exposition format.
  EXPECT_NE(text.find("dist_subtask_seconds_bucket{le=\"0.1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("dist_subtask_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("dist_subtask_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("dist_subtask_seconds_count 2"), std::string::npos);
}

TEST(MetricsTest, PrometheusQuantileLines) {
  obs::MetricsRegistry registry;
  // Bounds at the quantile cuts so each quantile reports a distinct bucket:
  // observations 1..100 put the p50/p95/p99 ranks in the 50/95/99 buckets.
  obs::Histogram& histogram = registry.histogram("lat_seconds", {10, 50, 95, 99, 100});
  for (int i = 1; i <= 100; ++i) histogram.observe(i);
  const std::string text = registry.toPrometheusText();
  EXPECT_NE(text.find("# TYPE lat_seconds_quantile gauge"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_quantile{quantile=\"0.5\"} 50"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lat_seconds_quantile{quantile=\"0.95\"} 95"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_quantile{quantile=\"0.99\"} 99"), std::string::npos);
  // And the JSON snapshot carries the same quantiles.
  const JsonValue root = JsonParser(registry.toJson()).parse();
  const JsonObject& quantiles = root.object().at("histograms").object()
                                    .at("lat_seconds").object()
                                    .at("quantiles").object();
  EXPECT_EQ(quantiles.at("p50").number(), 50.0);
  EXPECT_EQ(quantiles.at("p95").number(), 95.0);
  EXPECT_EQ(quantiles.at("p99").number(), 99.0);
}

TEST(MetricsTest, HistogramQuantileNearestRank) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("q", {1.0, 2.0, 4.0, 8.0});
  // Quantiles come from bucket upper bounds (the histogram keeps no samples):
  // 10 observations <= 1, none elsewhere, so every quantile reports 1.
  for (int i = 0; i < 10; ++i) histogram.observe(0.5);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.99), 1.0);
  histogram.observe(3.0);  // An 11th observation in the (2, 4] bucket.
  EXPECT_DOUBLE_EQ(histogram.quantile(0.50), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 4.0);
  // Empty histogram: quantiles are 0, not NaN.
  EXPECT_DOUBLE_EQ(registry.histogram("empty", {1.0}).quantile(0.5), 0.0);
}

TEST(MetricsTest, NearestRankIndexIsUnbiased) {
  // ceil(p*n) - 1: the canonical nearest-rank definition. The old
  // floor(p*n) form reported one sample too high at every exact cut.
  EXPECT_EQ(obs::nearestRankIndex(0.50, 100), 49u);
  EXPECT_EQ(obs::nearestRankIndex(0.95, 100), 94u);
  EXPECT_EQ(obs::nearestRankIndex(0.99, 100), 98u);
  EXPECT_EQ(obs::nearestRankIndex(1.00, 100), 99u);
  EXPECT_EQ(obs::nearestRankIndex(0.00, 100), 0u);
  EXPECT_EQ(obs::nearestRankIndex(0.50, 1), 0u);
  EXPECT_EQ(obs::nearestRankIndex(0.50, 2), 0u);
  EXPECT_EQ(obs::nearestRankIndex(0.75, 4), 2u);
}

TEST(MetricsTest, PrometheusNameSanitisation) {
  EXPECT_EQ(obs::prometheusMetricName("dist.subtask.seconds"), "dist_subtask_seconds");
  EXPECT_EQ(obs::prometheusMetricName("9lives"), "_9lives") << "leading digit";
  EXPECT_EQ(obs::prometheusMetricName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(obs::prometheusMetricName("ok_name:v1"), "ok_name:v1")
      << "colons are legal in the exposition grammar";
}

TEST(MetricsTest, PrometheusLabelEscaping) {
  EXPECT_EQ(obs::prometheusLabelEscape("plain"), "plain");
  EXPECT_EQ(obs::prometheusLabelEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::prometheusLabelEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheusLabelEscape("line1\nline2"), "line1\\nline2");
}

TEST(MetricsTest, PrometheusHelpLines) {
  obs::MetricsRegistry registry;
  registry.counter("dist.retries", "Subtasks re-enqueued after a crash.").add(1);
  // Re-registering with different help never overwrites the first.
  registry.counter("dist.retries", "other text");
  // A later registration fills help left empty by the first.
  registry.gauge("mq.depth");
  registry.gauge("mq.depth", "Messages queued.");
  const std::string text = registry.toPrometheusText();
  EXPECT_NE(text.find("# HELP dist_retries Subtasks re-enqueued after a crash.\n"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("other text"), std::string::npos);
  EXPECT_NE(text.find("# HELP mq_depth Messages queued.\n"), std::string::npos);
  // HELP precedes TYPE for the same family, per the exposition format.
  const size_t help = text.find("# HELP dist_retries");
  const size_t type = text.find("# TYPE dist_retries");
  ASSERT_NE(help, std::string::npos);
  ASSERT_NE(type, std::string::npos);
  EXPECT_LT(help, type);
}

TEST(MetricsTest, PrometheusHelpEscaping) {
  EXPECT_EQ(obs::prometheusHelpEscape("plain"), "plain");
  EXPECT_EQ(obs::prometheusHelpEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prometheusHelpEscape("line1\nline2"), "line1\\nline2");
  // Quotes are legal in HELP text (unlike label values) and pass through.
  EXPECT_EQ(obs::prometheusHelpEscape("say \"hi\""), "say \"hi\"");

  obs::MetricsRegistry registry;
  registry.counter("c", "multi\nline \\ help");
  const std::string text = registry.toPrometheusText();
  EXPECT_NE(text.find("# HELP c multi\\nline \\\\ help\n"), std::string::npos)
      << text;
}

// Parses the whole exposition back line by line: every line is a comment or
// `name{labels} value`, names match the grammar, and label values stay
// balanced — the round-trip guard for the exporter.
TEST(MetricsTest, PrometheusExpositionGrammarRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("dist.retries").add(2);
  registry.gauge("9weird.gauge name", "A \"quoted\"\nhelp \\ string").set(3);
  registry.histogram("lat", {0.5, 1.5}).observe(1.0);
  const std::string text = registry.toPrometheusText();

  size_t samples = 0;
  bool lastCommentWasHelp = false;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      const bool isHelp = line.rfind("# HELP ", 0) == 0;
      const bool isType = line.rfind("# TYPE ", 0) == 0;
      EXPECT_TRUE(isHelp || isType) << line;
      // Every TYPE is introduced by the family's HELP directly above it, and
      // HELP text never leaks a raw newline (it would have split the line).
      if (isType) EXPECT_TRUE(lastCommentWasHelp) << line;
      lastCommentWasHelp = isHelp;
      continue;
    }
    // name ::= [a-zA-Z_:][a-zA-Z0-9_:]*
    size_t pos = 0;
    const auto nameChar = [&](char c, bool first) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
             (!first && std::isdigit(static_cast<unsigned char>(c)));
    };
    ASSERT_TRUE(pos < line.size() && nameChar(line[pos], true)) << line;
    while (pos < line.size() && nameChar(line[pos], false)) ++pos;
    // Optional {label="value",...} block with escapes.
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      while (pos < line.size() && line[pos] != '}') {
        while (pos < line.size() && nameChar(line[pos], false)) ++pos;
        ASSERT_TRUE(pos + 1 < line.size() && line[pos] == '=' && line[pos + 1] == '"')
            << line;
        pos += 2;
        while (pos < line.size() && line[pos] != '"') pos += line[pos] == '\\' ? 2 : 1;
        ASSERT_TRUE(pos < line.size()) << "unterminated label value: " << line;
        ++pos;
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      ASSERT_TRUE(pos < line.size()) << "unterminated label block: " << line;
      ++pos;
    }
    // A single space, then a parseable number.
    ASSERT_TRUE(pos < line.size() && line[pos] == ' ') << line;
    const std::string value = line.substr(pos + 1);
    size_t parsed = 0;
    if (value == "+Inf" || value == "-Inf" || value == "NaN") {
      parsed = value.size();
    } else {
      (void)std::stod(value, &parsed);
    }
    EXPECT_EQ(parsed, value.size()) << line;
    ++samples;
  }
  EXPECT_GE(samples, 10u) << "counter + gauge(2) + buckets + quantiles + sum/count";
}

// --- tracing ----------------------------------------------------------------

TEST(TraceTest, SpansNestOnThePerThreadStack) {
  obs::Tracer tracer;
  {
    obs::Span outer = tracer.span("task", "test");
    {
      obs::Span inner = tracer.span("subtask", "test");
      inner.arg("id", "route-0");
    }
    obs::Span sibling = tracer.span("merge", "test");
  }
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 3u);
  // Events record in finish order: inner, sibling, outer.
  EXPECT_EQ(events[0].name, "subtask");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].name, "merge");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "task");
  EXPECT_EQ(events[2].depth, 0);
  // Nesting is consistent in time: the parent covers the children.
  EXPECT_LE(events[2].startMicros, events[0].startMicros);
  EXPECT_GE(events[2].startMicros + events[2].durationMicros,
            events[0].startMicros + events[0].durationMicros);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "id");
  EXPECT_EQ(events[0].args[0].second, "route-0");
}

TEST(TraceTest, DisabledTracerStillTimesButRecordsNothing) {
  obs::Tracer tracer(false);
  obs::Span span = tracer.span("x");
  span.finish();
  EXPECT_GE(span.seconds(), 0.0);
  EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(TraceTest, FinishIsIdempotentAndMoveSafe) {
  obs::Tracer tracer;
  obs::Span span = tracer.span("a");
  obs::Span moved = std::move(span);
  moved.finish();
  moved.finish();
  EXPECT_EQ(tracer.eventCount(), 1u) << "one event despite move + double finish";
}

TEST(TraceTest, ChromeTraceJsonParsesBack) {
  obs::Tracer tracer;
  {
    obs::Span outer = tracer.span("route.task", "dist");
    obs::Span inner = tracer.span("route.subtask", "dist");
    inner.arg("id", "route-7");
  }
  const JsonValue root = JsonParser(tracer.toChromeTraceJson()).parse();
  const JsonArray& events = root.object().at("traceEvents").array();
  ASSERT_EQ(events.size(), 2u);
  for (const JsonValue& event : events) {
    const JsonObject& fields = event.object();
    EXPECT_EQ(fields.at("ph").str(), "X");
    EXPECT_EQ(fields.at("cat").str(), "dist");
    EXPECT_GE(fields.at("dur").number(), 0.0);
    EXPECT_GE(fields.at("tid").number(), 1.0);
  }
  EXPECT_EQ(events[0].object().at("name").str(), "route.subtask");
  EXPECT_EQ(events[0].object().at("args").object().at("id").str(), "route-7");
}

TEST(TraceTest, ConcurrentSpansRecordPerThreadIds) {
  obs::Tracer tracer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&tracer] {
      for (int i = 0; i < 50; ++i) obs::Span span = tracer.span("work");
    });
  for (std::thread& thread : threads) thread.join();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 200u);
  for (const obs::TraceEvent& event : events) EXPECT_EQ(event.depth, 0);
}

// --- telemetry bundle & instrumented primitives -----------------------------

TEST(TelemetryTest, DisabledSinkIsInertAndShared) {
  obs::Telemetry& disabled = obs::Telemetry::disabled();
  EXPECT_FALSE(disabled.tracer().enabled());
  EXPECT_FALSE(disabled.log().enabled(obs::LogLevel::kError));
  EXPECT_EQ(&obs::Telemetry::orDisabled(nullptr), &disabled);
  obs::Telemetry own;
  EXPECT_EQ(&obs::Telemetry::orDisabled(&own), &own);
}

TEST(TelemetryTest, MessageQueueReportsDepthAndWait) {
  obs::MetricsRegistry registry;
  MessageQueue<int> queue;
  queue.bindTelemetry(&registry.gauge("mq.depth"), &registry.histogram("mq.wait", {1.0}));
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(registry.gauge("mq.depth").value(), 2);
  EXPECT_EQ(registry.gauge("mq.depth").maxValue(), 2);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.tryPop(), 2);
  EXPECT_EQ(registry.gauge("mq.depth").value(), 0);
  EXPECT_EQ(registry.histogram("mq.wait").count(), 2u);
}

TEST(TelemetryTest, ObjectStoreTracksResidency) {
  ObjectStore store;
  obs::MetricsRegistry registry;
  store.bindTelemetry(&registry.gauge("store.blobs"), &registry.gauge("store.live_bytes"),
                      &registry.counter("store.bytes_read"),
                      &registry.counter("store.bytes_written"));
  store.put("a", std::string("x"), 100);
  store.put("b", std::string("y"), 50);
  EXPECT_EQ(store.blobCount(), 2u);
  EXPECT_EQ(store.liveBytes(), 150u);
  // Overwrite replaces the old blob's bytes instead of double counting.
  store.put("a", std::string("z"), 10);
  EXPECT_EQ(store.blobCount(), 2u);
  EXPECT_EQ(store.liveBytes(), 60u);
  store.get<std::string>("b");
  store.erase("b");
  EXPECT_EQ(store.blobCount(), 1u);
  EXPECT_EQ(store.liveBytes(), 10u);
  EXPECT_EQ(registry.gauge("store.blobs").value(), 1);
  EXPECT_EQ(registry.gauge("store.blobs").maxValue(), 2);
  EXPECT_EQ(registry.gauge("store.live_bytes").value(), 10);
  EXPECT_EQ(registry.gauge("store.live_bytes").maxValue(), 150);
  EXPECT_EQ(registry.counter("store.bytes_written").value(), 160u);
  EXPECT_EQ(registry.counter("store.bytes_read").value(), 50u);
  // Cumulative read/write accounting unchanged by residency tracking.
  EXPECT_EQ(store.bytesWritten(), 160u);
  EXPECT_EQ(store.bytesRead(), 50u);
}

TEST(TelemetryTest, LoggerGatesOnLevel) {
  obs::Logger logger(obs::LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(obs::LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(obs::LogLevel::kError));
  obs::Logger off;
  EXPECT_FALSE(off.enabled(obs::LogLevel::kError));
  EXPECT_EQ(obs::logLevelFromName("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::logLevelFromName("bogus", obs::LogLevel::kWarn), obs::LogLevel::kWarn);
}

TEST(TelemetryTest, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/obs_write_file_test.json";
  ASSERT_TRUE(obs::writeFile(path, "{\"ok\":true}"));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "{\"ok\":true}");
}

}  // namespace
}  // namespace hoyan
