// Differential suite for the warm-run intent-verification fast path: the
// fragment-assembled global RIB must be byte-identical, row for row, to the
// table GlobalRib::fromNetworkRibs renders from scratch — across worker
// counts, across change plans (prefix-scoped and all-dirty), and under every
// leg of the invalidation matrix (dirty subtasks, evicted fragments, evicted
// result blobs, provenance-recording runs). RCL verdicts computed against the
// assembled table must match the from-scratch ones exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/hoyan.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "incr/engine.h"
#include "obs/provenance.h"
#include "rcl/ast.h"
#include "rcl/global_rib.h"
#include "rcl/verify.h"

namespace hoyan {
namespace {

// Intents spanning the evaluator's shapes: prefilterable guards (device =,
// prefix =), a non-prunable negated guard, a forall, and a rib comparison.
const char* const kIntents[] = {
    "device = BR-0-0 => PRE = POST",
    "prefix = 100.0.8.0/24 => PRE |> count() >= 0",
    "not prefix = 100.0.8.0/24 => PRE = POST",
    // Range guards ride the sorted-prefix index (lexicographic over renders).
    "prefix >= 100.0.8.0/24 and prefix <= 100.0.9.0/24 => PRE |> count() >= 0",
    "prefix < 100.0.8.0/24 => PRE = POST",
    "prefix > 99.0.0.0/8 => PRE |> count() >= 0",
    "forall device: PRE |> count() >= 0",
    "PRE |> distCnt(device) = POST |> distCnt(device)",
};

class RclIncrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WanSpec spec;
    spec.regions = 2;
    wan_ = generateWan(spec);
    WorkloadSpec workload;
    workload.prefixesPerIsp = 12;
    workload.prefixesPerDc = 6;
    workload.v6Share = 0;
    inputs_ = generateInputRoutes(wan_, workload);
    baseModel_ = std::make_unique<NetworkModel>(wan_.buildModel());
  }

  NetworkModel changedModel(const std::string& commands) const {
    Topology topology = wan_.topology;
    NetworkConfig configs = wan_.configs;
    const auto errors = applyChangeCommands(topology, configs, commands);
    EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0].str());
    return NetworkModel::build(std::move(topology), std::move(configs));
  }

  static std::string scopedCommands() {
    return "device BR-0-0\n"
           "ip-prefix LP-FRAG index 10 permit 100.0.8.0/24\n"
           "route-policy ISP-IN-0 node 800 permit\n"
           " match ip-prefix LP-FRAG\n"
           " apply local-pref 150\n";
  }

  static std::string allDirtyCommands() {
    return "device CORE-0-0\nstatic-route 77.0.0.0/8 discard\n";
  }

  // One cache-aware run: simulate, assemble the global RIB through the
  // engine, and check it row-for-row against a from-scratch render of the
  // same merged RIBs. Returns the from-scratch table for verdict checks.
  rcl::GlobalRib runAndCompare(incr::IncrementalEngine& engine,
                               const NetworkModel& model, size_t workers,
                               const char* tag,
                               obs::ProvenanceRecorder* provenance = nullptr) {
    DistSimOptions options;
    options.workers = workers;
    options.routeSubtasks = 10;
    options.routeOptions.provenance = provenance;
    engine.beginRun(model, options);
    DistributedSimulator sim(model, options);
    DistRouteResult routes = sim.runRouteSimulation(inputs_);
    EXPECT_TRUE(routes.succeeded) << tag;
    lastAssembled_ = engine.buildGlobalRib(routes.ribs, sim.routeResultKeys());
    rcl::GlobalRib scratch = rcl::GlobalRib::fromNetworkRibs(routes.ribs);
    EXPECT_EQ(lastAssembled_->size(), scratch.size()) << tag;
    const size_t n = std::min(lastAssembled_->size(), scratch.size());
    for (size_t i = 0; i < n; ++i) {
      const std::string assembledRow = lastAssembled_->rows()[i].str();
      const std::string scratchRow = scratch.rows()[i].str();
      if (assembledRow != scratchRow) {
        ADD_FAILURE() << tag << " row " << i << " differs:\n  assembled: "
                      << assembledRow << "\n  scratch:   " << scratchRow;
        break;
      }
    }
    engine.endRun();
    return scratch;
  }

  GeneratedWan wan_;
  std::vector<InputRoute> inputs_;
  std::unique_ptr<NetworkModel> baseModel_;
  std::shared_ptr<const rcl::GlobalRib> lastAssembled_;
};

TEST_F(RclIncrTest, AssemblyMatchesScratchAcrossWorkerCountsAndPlans) {
  const NetworkModel scoped = changedModel(scopedCommands());
  const NetworkModel allDirty = changedModel(allDirtyCommands());
  for (const size_t workers : {2u, 5u}) {
    incr::IncrementalEngine engine;
    engine.setBaseModel(*baseModel_);

    const rcl::GlobalRib baseScratch =
        runAndCompare(engine, *baseModel_, workers, "base");
    EXPECT_TRUE(engine.lastRibAssembly().used);
    EXPECT_FALSE(engine.lastRibAssembly().bypassed);
    const auto baseAssembled = lastAssembled_;

    // Prefix-scoped plan: clean subtasks keep their result keys, so their
    // fragments are served from the base run's cache.
    const rcl::GlobalRib scopedScratch =
        runAndCompare(engine, scoped, workers, "scoped");
    EXPECT_GT(engine.lastRibAssembly().fragmentHits, 0u) << "w" << workers;
    EXPECT_GT(engine.lastRibAssembly().fragmentMisses, 0u) << "w" << workers;
    EXPECT_GT(engine.lastRibAssembly().rowsReused, 0u) << "w" << workers;

    // Every intent verdict (and its counterexample rendering) must be
    // byte-identical whether PRE/POST bind the assembled or scratch table.
    for (const char* intent : kIntents) {
      const rcl::CheckResult viaAssembled =
          rcl::checkIntentText(intent, *baseAssembled, *lastAssembled_);
      const rcl::CheckResult viaScratch =
          rcl::checkIntentText(intent, baseScratch, scopedScratch);
      EXPECT_EQ(viaAssembled.satisfied, viaScratch.satisfied) << intent;
      EXPECT_EQ(viaAssembled.summary(), viaScratch.summary()) << intent;
    }

    // All-dirty plan: every subtask re-runs; assembly must still be exact.
    runAndCompare(engine, allDirty, workers, "all-dirty");
    EXPECT_FALSE(engine.lastRibAssembly().bypassed);
  }
}

TEST_F(RclIncrTest, RepeatedPlanHitsTheWholeTableCache) {
  incr::IncrementalEngine engine;
  engine.setBaseModel(*baseModel_);
  runAndCompare(engine, *baseModel_, 4, "first");
  EXPECT_FALSE(engine.lastRibAssembly().wholeTableHit);
  const auto first = lastAssembled_;
  runAndCompare(engine, *baseModel_, 4, "second");
  EXPECT_TRUE(engine.lastRibAssembly().wholeTableHit);
  // Same result keys -> the very same cached table object.
  EXPECT_EQ(first.get(), lastAssembled_.get());
}

// --- invalidation matrix ----------------------------------------------------

TEST_F(RclIncrTest, DirtySubtasksRebuildTheirFragments) {
  incr::IncrementalEngine engine;
  engine.setBaseModel(*baseModel_);
  runAndCompare(engine, *baseModel_, 4, "base");
  const NetworkModel scoped = changedModel(scopedCommands());
  runAndCompare(engine, scoped, 4, "scoped");
  const incr::RibAssemblyStats& stats = engine.lastRibAssembly();
  // Dirty subtasks produce new result keys, which miss the fragment cache
  // and are rebuilt from their (fresh) result blobs.
  EXPECT_GT(stats.fragmentMisses, 0u);
  EXPECT_FALSE(stats.wholeTableHit);
  EXPECT_FALSE(stats.bypassed);
}

TEST_F(RclIncrTest, EvictedFragmentsAreRebuiltFromResultBlobs) {
  incr::IncrementalEngine engine;
  engine.setBaseModel(*baseModel_);
  runAndCompare(engine, *baseModel_, 4, "warmup");

  // Drop every cached fragment and assembled table; result blobs survive.
  engine.store().erasePrefix("cas/g/");
  engine.store().erasePrefix("cas/G/");
  runAndCompare(engine, *baseModel_, 4, "after-eviction");
  const incr::RibAssemblyStats& stats = engine.lastRibAssembly();
  EXPECT_FALSE(stats.wholeTableHit);
  EXPECT_FALSE(stats.bypassed);
  EXPECT_EQ(stats.fragmentHits, 0u);
  EXPECT_GT(stats.fragmentMisses, 0u);
}

TEST_F(RclIncrTest, EvictedResultBlobFallsBackToFullRender) {
  incr::IncrementalEngine engine;
  engine.setBaseModel(*baseModel_);
  runAndCompare(engine, *baseModel_, 4, "warmup");

  // Second run over the same model: the route phase is served from the
  // cache, so its result keys point at blobs from the first run. Evicting a
  // result blob *and* its fragment leaves nothing sound to assemble from.
  DistSimOptions options;
  options.workers = 4;
  options.routeSubtasks = 10;
  engine.beginRun(*baseModel_, options);
  DistributedSimulator sim(*baseModel_, options);
  DistRouteResult routes = sim.runRouteSimulation(inputs_);
  ASSERT_TRUE(routes.succeeded);
  ASSERT_FALSE(sim.routeResultKeys().empty());
  engine.store().erasePrefix("cas/g/");
  engine.store().erasePrefix("cas/G/");
  engine.store().erase(sim.routeResultKeys().front());

  const auto assembled = engine.buildGlobalRib(routes.ribs, sim.routeResultKeys());
  EXPECT_TRUE(engine.lastRibAssembly().bypassed);
  const rcl::GlobalRib scratch = rcl::GlobalRib::fromNetworkRibs(routes.ribs);
  ASSERT_EQ(assembled->size(), scratch.size());
  for (size_t i = 0; i < scratch.size(); ++i)
    ASSERT_EQ(assembled->rows()[i].str(), scratch.rows()[i].str()) << i;
  engine.endRun();
}

TEST_F(RclIncrTest, ProvenanceRecordingRunStillAssemblesFragments) {
  incr::IncrementalEngine engine;
  engine.setBaseModel(*baseModel_);
  runAndCompare(engine, *baseModel_, 4, "warmup");

  // Provenance runs store results under the same content-addressed keys as
  // plain runs (events ride in `#prov` side blobs), so the fragment path
  // serves them like any other run instead of refusing and re-rendering.
  // Same model as the warmup: the assembled table itself is already cached.
  obs::ProvenanceOptions provOptions;
  provOptions.enabled = true;
  obs::ProvenanceRecorder recorder(provOptions);
  runAndCompare(engine, *baseModel_, 4, "provenance", &recorder);
  EXPECT_FALSE(engine.lastRibAssembly().bypassed);
  EXPECT_TRUE(engine.lastRibAssembly().wholeTableHit);
  // The recorder still saw the run: the warmup's cached results carried no
  // event blobs, so the route subtasks re-executed and recorded live.
  EXPECT_GT(recorder.eventCount(), 0u);
}

// --- RCL prefilter index ----------------------------------------------------

// The finalized table's device/prefix buckets seed guarded-intent views; a
// table built row-by-row (never finalized) takes the full-scan path. Both
// must agree on every verdict and counterexample.
TEST_F(RclIncrTest, PrefilteredEvaluationMatchesFullScan) {
  incr::IncrementalEngine engine;
  engine.setBaseModel(*baseModel_);
  const rcl::GlobalRib base = runAndCompare(engine, *baseModel_, 4, "base");
  const NetworkModel scoped = changedModel(scopedCommands());
  const rcl::GlobalRib updated = runAndCompare(engine, scoped, 4, "scoped");
  ASSERT_TRUE(base.finalized());
  ASSERT_TRUE(updated.finalized());

  const auto unindexed = [](const rcl::GlobalRib& rib) {
    rcl::GlobalRib copy;
    for (const rcl::RibRow& row : rib.rows()) copy.add(row);
    return copy;
  };
  const rcl::GlobalRib basePlain = unindexed(base);
  const rcl::GlobalRib updatedPlain = unindexed(updated);
  ASSERT_FALSE(basePlain.finalized());
  for (const char* intent : kIntents) {
    const rcl::CheckResult indexed = rcl::checkIntentText(intent, base, updated);
    const rcl::CheckResult scanned =
        rcl::checkIntentText(intent, basePlain, updatedPlain);
    EXPECT_EQ(indexed.satisfied, scanned.satisfied) << intent;
    EXPECT_EQ(indexed.summary(), scanned.summary()) << intent;
  }
  // A guard naming a device absent from the table must prune to empty and
  // still agree with the full scan.
  const char* absent = "device = NO-SUCH-DEVICE => PRE |> count() = 0";
  EXPECT_EQ(rcl::checkIntentText(absent, base, updated).satisfied,
            rcl::checkIntentText(absent, basePlain, updatedPlain).satisfied);
}

// The sorted-prefix index's slices must equal a per-row evalCompare scan for
// every range operator and probe value — including values between renders,
// below every render, and above every render.
TEST(PrefixRangeBucketTest, SlicesMatchScanForEveryOperator) {
  rcl::GlobalRib rib;
  const char* const prefixes[] = {"10.0.0.0/8",    "100.0.2.0/24",
                                  "100.0.10.0/24", "100.0.2.0/24",
                                  "200.1.0.0/16",  "99.0.0.0/8"};
  for (const char* text : prefixes) {
    rcl::RibRow row;
    row.device = "D";
    row.vrf = "global";
    row.prefix = *Prefix::parse(text);
    rib.add(row);
  }
  // Not finalized yet: no index to serve from.
  EXPECT_FALSE(rib.prefixRangeBucket(rcl::CompareOp::kLt, "100").has_value());
  rib.finalize();

  const rcl::CompareOp ops[] = {rcl::CompareOp::kGt, rcl::CompareOp::kGe,
                                rcl::CompareOp::kLt, rcl::CompareOp::kLe};
  const char* const probes[] = {"100.0.2.0/24", "100.0.5.0/24", "", "zzz"};
  for (const rcl::CompareOp op : ops) {
    for (const char* probe : probes) {
      const auto bucket = rib.prefixRangeBucket(op, probe);
      ASSERT_TRUE(bucket.has_value());
      std::vector<uint32_t> expected;
      for (uint32_t i = 0; i < rib.size(); ++i)
        if (rcl::evalCompare(op, rcl::Scalar::str(rib.rows()[i].prefix.str()),
                             rcl::Scalar::str(probe)))
          expected.push_back(i);
      EXPECT_EQ(*bucket, expected) << rcl::compareOpName(op) << " " << probe;
    }
  }
  // Equality goes through fieldBucket; != is a complement and stays a scan.
  EXPECT_FALSE(rib.prefixRangeBucket(rcl::CompareOp::kEq, "10.0.0.0/8").has_value());
  EXPECT_FALSE(rib.prefixRangeBucket(rcl::CompareOp::kNe, "10.0.0.0/8").has_value());
}

}  // namespace
}  // namespace hoyan
