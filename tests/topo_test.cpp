// Topology-module tests: adjacency resolution, link/device state, change
// deltas.
#include <gtest/gtest.h>

#include "test_fixtures.h"
#include "topo/topology.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::SmallWan;

TEST(TopologyTest, AdjacenciesRespectLinkAndDeviceState) {
  SmallWan net = buildSmallWan();
  EXPECT_EQ(net.topology.adjacenciesOf(net.c1).size(), 3u);  // C2, RR1, BR1.
  net.topology.setLinkState(net.c1, net.c2, false);
  EXPECT_EQ(net.topology.adjacenciesOf(net.c1).size(), 2u);
  net.topology.setLinkState(net.c1, net.c2, true);
  net.topology.failDevice(net.c2);
  EXPECT_EQ(net.topology.adjacenciesOf(net.c1).size(), 2u);
  EXPECT_TRUE(net.topology.adjacenciesOf(net.c2).empty());
  net.topology.restoreDevice(net.c2);
  EXPECT_EQ(net.topology.adjacenciesOf(net.c1).size(), 3u);
}

TEST(TopologyTest, ShutdownInterfaceBreaksAdjacency) {
  SmallWan net = buildSmallWan();
  Device* c1 = net.topology.findDevice(net.c1);
  for (Interface& itf : c1->interfaces) itf.shutdown = true;
  EXPECT_TRUE(net.topology.adjacenciesOf(net.c1).empty());
  // The peer side sees it too.
  for (const Adjacency& adj : net.topology.adjacenciesOf(net.c2))
    EXPECT_NE(adj.neighbor, net.c1);
}

TEST(TopologyTest, ResolveNexthopFindsAdjacentOwner) {
  SmallWan net = buildSmallWan();
  const Device* c2 = net.topology.findDevice(net.c2);
  // C1 resolves C2's link address and loopback to the C2 adjacency.
  const auto byLink = net.topology.resolveNexthop(net.c1, c2->interfaces[0].address);
  ASSERT_TRUE(byLink.has_value());
  EXPECT_EQ(byLink->neighbor, net.c2);
  const auto byLoopback = net.topology.resolveNexthop(net.c1, c2->loopback);
  ASSERT_TRUE(byLoopback.has_value());
  EXPECT_EQ(byLoopback->neighbor, net.c2);
  // A non-adjacent address resolves to nothing.
  EXPECT_FALSE(net.topology.resolveNexthop(net.isp1, c2->loopback).has_value());
}

TEST(TopologyTest, RemoveLinkAndDevice) {
  SmallWan net = buildSmallWan();
  const size_t links = net.topology.links().size();
  EXPECT_TRUE(net.topology.removeLink(net.c1, net.c2));
  EXPECT_EQ(net.topology.links().size(), links - 1);
  EXPECT_FALSE(net.topology.removeLink(net.c1, net.c2));  // Already gone.
  net.topology.removeDevice(net.br1);
  EXPECT_EQ(net.topology.findDevice(net.br1), nullptr);
  for (const Link& link : net.topology.links()) {
    EXPECT_NE(link.deviceA, net.br1);
    EXPECT_NE(link.deviceB, net.br1);
  }
}

TEST(TopologyTest, DeviceByLoopback) {
  const SmallWan net = buildSmallWan();
  const Device* rr = net.topology.findDevice(net.rr1);
  EXPECT_EQ(net.topology.deviceByLoopback(rr->loopback), net.rr1);
  EXPECT_FALSE(net.topology.deviceByLoopback(*IpAddress::parse("203.0.113.1")).has_value());
}

TEST(TopologyChangeTest, AppliesAllDeltaKinds) {
  SmallWan net = buildSmallWan();
  TopologyChange change;
  Device extra;
  extra.name = Names::id("tt-NEW");
  extra.loopback = *IpAddress::parse("9.0.9.9");
  change.addDevices.push_back(extra);
  change.addLinks.push_back({Names::id("tt-NEW"), Names::id("tt-NEW:e0"), net.c1,
                             Names::id("x-if")});
  change.removeLinks.push_back({net.c1, net.c2});
  change.removeDevices.push_back(net.isp1);
  EXPECT_FALSE(change.empty());
  change.applyTo(net.topology);
  EXPECT_NE(net.topology.findDevice(Names::id("tt-NEW")), nullptr);
  EXPECT_EQ(net.topology.findDevice(net.isp1), nullptr);
  bool c1c2 = false;
  for (const Link& link : net.topology.links())
    if (link.connects(net.c1) && link.connects(net.c2)) c1c2 = true;
  EXPECT_FALSE(c1c2);
  EXPECT_TRUE(TopologyChange{}.empty());
}

TEST(FailureOverlayTest, ApplyRevertRestoresIdenticalState) {
  SmallWan net = buildSmallWan();
  // Pre-existing failures the overlay must not disturb: one link already
  // down, one device already failed.
  net.topology.setLinkState(net.c1, net.rr1, false);
  net.topology.failDevice(net.isp1);
  const std::vector<Link> linksBefore = net.topology.links();

  FailureOverlay overlay;
  overlay.addLink(net.c1, net.c2);
  overlay.addLink(net.c1, net.rr1);  // Already down: untouched.
  overlay.addDevice(net.br1);
  overlay.addDevice(net.isp1);  // Already failed: untouched.
  EXPECT_FALSE(overlay.empty());
  EXPECT_FALSE(overlay.applied());

  overlay.apply(net.topology);
  EXPECT_TRUE(overlay.applied());
  EXPECT_THROW(overlay.apply(net.topology), std::logic_error);
  // The overlay masks links rather than flipping the stored `up` flag, so the
  // effective view (linkUp) must report the failure.
  for (size_t i = 0; i < net.topology.links().size(); ++i) {
    const Link& link = net.topology.links()[i];
    if (link.connects(net.c1) && link.connects(net.c2))
      EXPECT_FALSE(net.topology.linkUp(i));
  }
  EXPECT_FALSE(net.topology.deviceActive(net.br1));
  EXPECT_FALSE(net.topology.deviceActive(net.isp1));

  overlay.revert(net.topology);
  EXPECT_FALSE(overlay.applied());
  ASSERT_EQ(net.topology.links().size(), linksBefore.size());
  for (size_t i = 0; i < linksBefore.size(); ++i) {
    EXPECT_EQ(net.topology.links()[i].up, linksBefore[i].up) << i;
    EXPECT_EQ(net.topology.linkUp(i), linksBefore[i].up) << i;
  }
  EXPECT_TRUE(net.topology.deviceActive(net.br1));
  EXPECT_FALSE(net.topology.deviceActive(net.isp1));  // Pre-existing failure kept.
  // C1<->RR1 was down before apply and stays down after revert.
  for (size_t i = 0; i < net.topology.links().size(); ++i) {
    const Link& link = net.topology.links()[i];
    if (link.connects(net.c1) && link.connects(net.rr1))
      EXPECT_FALSE(net.topology.linkUp(i));
  }

  // Revert when not applied is a no-op; the overlay is reusable.
  overlay.revert(net.topology);
  overlay.apply(net.topology);
  EXPECT_FALSE(net.topology.deviceActive(net.br1));
  overlay.revert(net.topology);
  EXPECT_TRUE(net.topology.deviceActive(net.br1));
}

TEST(TopologyTest, AddLinkValidatesDevices) {
  SmallWan net = buildSmallWan();
  EXPECT_THROW(net.topology.addLink(Names::id("tt-GHOST"), Names::id("i"), net.c1,
                                    Names::id("j")),
               std::invalid_argument);
}

}  // namespace
}  // namespace hoyan
