// Integration tests reproducing the paper's case studies end to end.
#include <gtest/gtest.h>

#include "scenario/case_studies.h"

namespace hoyan {
namespace {

TEST(CaseStudyTest, Fig10aNewWanTrafficShiftDetected) {
  const CaseStudyResult result = runNewWanTrafficShiftCase();
  EXPECT_TRUE(result.riskDetected) << result.narrative;
}

TEST(CaseStudyTest, Fig10bIspExitChangeDetected) {
  const CaseStudyResult result = runIspExitChangeCase();
  EXPECT_TRUE(result.riskDetected) << result.narrative;
}

TEST(CaseStudyTest, Fig9SrIgpCostVsbLocalised) {
  const CaseStudyResult result = runSrIgpCostDiagnosisCase();
  EXPECT_TRUE(result.riskDetected) << result.narrative;
}

}  // namespace
}  // namespace hoyan
