// Tests for the audit catalogue (§6.2) and the JSON report rendering (the
// REST-API integration surface).
#include <gtest/gtest.h>

#include "core/report_json.h"
#include "scenario/audit_catalog.h"
#include "scenario/scenarios.h"

namespace hoyan {
namespace {

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

class ReportTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    environment_ = new ScenarioEnvironment(makeStandardEnvironment());
    hoyan_ = new Hoyan(makeHoyan(*environment_));
  }
  static void TearDownTestSuite() {
    delete hoyan_;
    delete environment_;
  }
  static ScenarioEnvironment* environment_;
  static Hoyan* hoyan_;
};
ScenarioEnvironment* ReportTest::environment_ = nullptr;
Hoyan* ReportTest::hoyan_ = nullptr;

TEST_F(ReportTest, AuditCatalogIsCleanOnHealthyNetwork) {
  const auto catalog = buildAuditCatalog(environment_->wan);
  EXPECT_GE(catalog.size(), 24u);  // "dozens of auditing tasks".
  const AuditReport report = runAuditCatalog(*hoyan_, catalog);
  EXPECT_EQ(report.tasksRun, catalog.size());
  EXPECT_TRUE(report.clean()) << report.str();
}

TEST_F(ReportTest, AuditCatalogCatchesInjectedInconsistency) {
  // Re-preprocess with a doctored config: BR-1-0 stops tagging its region
  // community (an inconsistent route policy across the group, §6.2's
  // example finding).
  ScenarioEnvironment doctored = *environment_;
  DeviceConfig& border = doctored.wan.configs.device(Names::id("BR-1-0"));
  RoutePolicy& policy = border.routePolicy(Names::id("ISP-IN-1"));
  for (PolicyNode& node : policy.nodes) node.sets.addCommunities.clear();
  Hoyan hoyan = makeHoyan(doctored);
  const AuditReport report = runAuditCatalog(hoyan, buildAuditCatalog(doctored.wan));
  EXPECT_FALSE(report.clean());
  bool tagged = false;
  for (const auto& [task, result] : report.findings)
    if (task.name == "border-1-tags-region-community") tagged = true;
  EXPECT_TRUE(tagged) << report.str();
}

TEST_F(ReportTest, JsonReportRoundTripsKeyFields) {
  ChangePlan plan;
  plan.name = "json-check";
  plan.commands = "device BR-0-0\nbroken-command\n";
  IntentSet intents;
  intents.rclIntents = {"PRE = POST"};
  const ChangeVerificationResult result = hoyan_->verifyChange(plan, intents);
  const std::string json = toJson(plan.name, result);
  EXPECT_NE(json.find("\"plan\":\"json-check\""), std::string::npos);
  EXPECT_NE(json.find("\"satisfied\":false"), std::string::npos);
  EXPECT_NE(json.find("commandErrors"), std::string::npos);
  EXPECT_NE(json.find("broken-command"), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(ReportTest, JsonForSatisfiedChangeIsCompact) {
  ChangePlan plan;
  IntentSet intents;
  intents.rclIntents = {"PRE = POST"};
  const ChangeVerificationResult result = hoyan_->verifyChange(plan, intents);
  const std::string json = toJson("noop", result);
  EXPECT_NE(json.find("\"satisfied\":true"), std::string::npos);
  EXPECT_NE(json.find("\"violations\":[]"), std::string::npos);
}

}  // namespace
}  // namespace hoyan
