// Tests for the §7 tooling: the default "others do not change"
// specification heuristic, misconfiguration localization, RIB concatenation
// (the §4.4 future-work RCL extension), and traffic-load fault tolerance.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "core/intent_tools.h"
#include "core/localize.h"
#include "inspect.h"
#include "rcl/parser.h"
#include "rcl/verify.h"
#include "sim/route_sim.h"
#include "test_fixtures.h"
#include "verify/properties.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

// --- default no-change heuristic ------------------------------------------

TEST(IntentToolsTest, DerivesComplementOfGuards) {
  const auto derived = defaultNoChangeSpec(
      {"prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}"});
  ASSERT_TRUE(derived.has_value());
  EXPECT_EQ(*derived, "not ((prefix = 10.0.0.0/24)) => PRE = POST");
}

TEST(IntentToolsTest, CombinesMultipleGuardsDisjunctively) {
  const auto derived = defaultNoChangeSpec(
      {"prefix = 10.0.0.0/24 => POST |> count() >= 1",
       "device = R1 => POST |> distCnt(nexthop) = 2"});
  ASSERT_TRUE(derived.has_value());
  EXPECT_NE(derived->find("(prefix = 10.0.0.0/24) or (device = R1)"),
            std::string::npos)
      << *derived;
}

TEST(IntentToolsTest, NoGuardedIntentsYieldNothing) {
  EXPECT_FALSE(defaultNoChangeSpec({"POST |> count() >= 1"}).has_value());
  EXPECT_FALSE(defaultNoChangeSpec({}).has_value());
}

TEST(IntentToolsTest, ExistingNoChangeClauseSuppressesDefault) {
  EXPECT_FALSE(defaultNoChangeSpec(
                   {"prefix = 10.0.0.0/24 => POST |> count() >= 1",
                    "not prefix = 10.0.0.0/24 => PRE = POST"})
                   .has_value());
}

TEST(IntentToolsTest, AugmentedIntentCatchesTheSection7Incident) {
  // The §7 incident: the operator specifies the change effect but not
  // "others unchanged"; the change also breaks another prefix.
  SmallWan net = buildSmallWan();
  Hoyan hoyan(net.topology, net.configs);
  hoyan.setInputRoutes({ispRoute(net, "100.1.0.0/16"), ispRoute(net, "100.2.0.0/16")});
  hoyan.preprocess();

  ChangePlan plan;
  // Intended: tag 100.1/16. Actual: the policy tags everything AND denies
  // 100.2/16 (the unnoticed side effect).
  plan.commands = "device t-BR1\n"
                  "ip-prefix OTHER index 10 permit 100.2.0.0/16\n"
                  "route-policy SIDE node 5 deny\n"
                  " match ip-prefix OTHER\n"
                  "route-policy SIDE node 10 permit\n"
                  " apply community add 100:7\n"
                  "router bgp 64512\n"
                  " neighbor " + net.ispLinkAddr.str() + " import-policy SIDE\n";
  IntentSet intents;
  intents.rclIntents = {
      "prefix = 100.1.0.0/16 and device = t-BR1 => "
      "POST || (communities contains 100:7) |> count() >= 1"};

  // Without the heuristic the incomplete spec passes...
  const ChangeVerificationResult incomplete = hoyan.verifyChange(plan, intents);
  EXPECT_TRUE(incomplete.satisfied()) << incomplete.report();
  // ...with it, the side effect is caught.
  ASSERT_TRUE(augmentWithDefaultNoChange(intents));
  const ChangeVerificationResult augmented = hoyan.verifyChange(plan, intents);
  EXPECT_FALSE(augmented.satisfied());
}

// --- misconfiguration localization ------------------------------------------

TEST(LocalizeTest, SplitsSectionsAndGroups) {
  const auto sections = splitPlanSections(
      "device R1\nstatic-route 1.0.0.0/8 discard\ndevice R2\n"
      "route-policy P node 10 permit\n apply med 5\nstatic-route 2.0.0.0/8 discard\n");
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].first, "R1");
  EXPECT_EQ(sections[1].first, "R2");
  const auto groups = splitCommandGroups(sections[1].second);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], "route-policy P node 10 permit\n apply med 5\n");
  EXPECT_EQ(groups[1], "static-route 2.0.0.0/8 discard\n");
}

TEST(LocalizeTest, CleanPlanReportsNothing) {
  SmallWan net = buildSmallWan();
  Hoyan hoyan(net.topology, net.configs);
  hoyan.setInputRoutes({ispRoute(net, "100.1.0.0/16")});
  hoyan.preprocess();
  ChangePlan plan;
  IntentSet intents;
  intents.rclIntents = {"PRE = POST"};
  const LocalizationResult result = localizeMisconfiguration(hoyan, plan, intents);
  EXPECT_FALSE(result.planViolates);
  EXPECT_TRUE(result.suspects.empty());
}

TEST(LocalizeTest, FindsTheOneBadCommandGroup) {
  SmallWan net = buildSmallWan();
  Hoyan hoyan(net.topology, net.configs);
  hoyan.setInputRoutes({ispRoute(net, "100.1.0.0/16")});
  hoyan.preprocess();

  // Three benign groups + one that blocks the ISP route on BR1.
  ChangePlan plan;
  plan.commands = "device t-C1\n"
                  "static-route 61.0.0.0/8 discard\n"
                  "device t-BR1\n"
                  "route-policy KILL node 10 deny\n"
                  "router bgp 64512\n"
                  " neighbor " + net.ispLinkAddr.str() + " import-policy KILL\n"
                  "device t-C2\n"
                  "static-route 62.0.0.0/8 discard\n";
  IntentSet intents;
  intents.rclIntents = {
      "POST || prefix = 100.1.0.0/16 |> distCnt(device) >= 4",
      // The statics are intended:
      "prefix = 61.0.0.0/8 => POST |> count() >= 1",
      "prefix = 62.0.0.0/8 => POST |> count() >= 1",
  };
  const LocalizationResult result = localizeMisconfiguration(hoyan, plan, intents);
  ASSERT_TRUE(result.planViolates);
  ASSERT_EQ(result.suspects.size(), 1u);
  EXPECT_EQ(result.suspects[0].device, "t-BR1");
  // The benign statics were exonerated; the suspect commands include the
  // policy application.
  EXPECT_NE(result.suspects[0].commands.find("import-policy KILL"), std::string::npos)
      << result.str();
  EXPECT_EQ(result.suspects[0].commands.find("static-route"), std::string::npos);
}

TEST(LocalizeTest, TopologyDeltaCanBeTheSuspect) {
  SmallWan net = buildSmallWan();
  Hoyan hoyan(net.topology, net.configs);
  hoyan.setInputRoutes({ispRoute(net, "100.1.0.0/16")});
  hoyan.preprocess();
  ChangePlan plan;
  plan.commands = "device t-C1\nstatic-route 61.0.0.0/8 discard\n";
  plan.topologyChange.removeLinks.push_back({net.br1, net.isp1});
  IntentSet intents;
  intents.rclIntents = {"POST || prefix = 100.1.0.0/16 |> distCnt(device) >= 4"};
  const LocalizationResult result = localizeMisconfiguration(hoyan, plan, intents);
  ASSERT_TRUE(result.planViolates);
  EXPECT_TRUE(result.topologyChangeSuspect);
  EXPECT_TRUE(result.suspects.empty()) << result.str();
}

// --- RCL concatenation (§4.4 future work) -------------------------------------

TEST(RclConcatTest, ParsesAndCounts) {
  const rcl::ParseOutcome outcome =
      rcl::parseIntent("PRE ++ POST |> count() = PRE |> count() + POST |> count()");
  ASSERT_TRUE(outcome.ok()) << outcome.error;
}

TEST(RclConcatTest, ConcatSemantics) {
  rcl::GlobalRib base, updated;
  rcl::RibRow row;
  row.device = "A";
  row.vrf = "global";
  row.prefix = *Prefix::parse("10.0.0.0/24");
  row.nexthop = *IpAddress::parse("1.1.1.1");
  base.add(row);
  row.nexthop = *IpAddress::parse("2.2.2.2");
  updated.add(row);
  updated.add(row);
  // count(PRE ++ POST) = 3.
  EXPECT_TRUE(rcl::checkIntentText("PRE ++ POST |> count() = 3", base, updated)
                  .satisfied);
  // distVals over the union sees both nexthops.
  EXPECT_TRUE(rcl::checkIntentText(
                  "PRE ++ POST |> distVals(nexthop) = {1.1.1.1, 2.2.2.2}", base,
                  updated)
                  .satisfied);
  // Filters apply to the concatenation.
  EXPECT_TRUE(rcl::checkIntentText(
                  "PRE ++ POST || nexthop = 2.2.2.2 |> count() = 2", base, updated)
                  .satisfied);
  // Concat of a RIB with itself doubles the count.
  EXPECT_TRUE(rcl::checkIntentText("PRE ++ PRE |> count() = 2", base, updated)
                  .satisfied);
}

// --- k-failure traffic loads ---------------------------------------------------

TEST(KFailureLoadTest, DetectsOverloadUnderSingleFailure) {
  // Two equal uplinks from C2 toward the border path; each carries half the
  // volume. Losing one pushes the full volume over the survivor.
  SmallWan net = buildSmallWan();
  // Shrink C1-C2 and C1-RR1... use flow sized so base is fine but any single
  // link failure that reroutes everything overloads the survivor.
  // Base: flow C2 -> ISP prefix via C1 (single path, 60% load). Failing
  // C1-BR1 is fatal for reachability, but failing C2-C1 reroutes via RR1.
  for (Device* device : {net.topology.findDevice(net.c2),
                         net.topology.findDevice(net.rr1)})
    for (Interface& itf : device->interfaces) itf.bandwidthBps = 1e9;
  const NetworkModel model = net.model();
  std::vector<InputRoute> inputs = {ispRoute(net, "100.1.0.0/16")};
  std::vector<Flow> flows(1);
  flows[0].ingressDevice = net.c2;
  flows[0].src = *IpAddress::parse("20.0.0.1");
  flows[0].dst = *IpAddress::parse("100.1.2.3");
  flows[0].volumeBps = 0.9e9;  // 90% of the shrunken links.
  KFailureOptions options;
  options.k = 1;
  options.maxCounterexamples = 10;
  options.focusDevices = {net.c2};
  const KFailureResult result =
      checkKFailureLoads(model, inputs, flows, /*maxUtilization=*/0.95, options);
  // Failing C2-C1 moves the flow onto C2-RR1-C1 (1e9 links, 90% each: ok at
  // 0.95) — tighten the threshold to see the violation instead:
  const KFailureResult tight =
      checkKFailureLoads(model, inputs, flows, /*maxUtilization=*/0.5, options);
  EXPECT_FALSE(tight.holds());
  EXPECT_GE(result.scenariosChecked, 2u);
}

// --- hoyan_inspect input plumbing ------------------------------------------

TEST(InspectReadInputTest, ReadsRegularFilesAndFailsOnMissing) {
  const std::string path = ::testing::TempDir() + "inspect_read_input.jsonl";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  std::fputs("{\"event\":\"run_begin\"}\n", out);
  std::fclose(out);
  std::string text;
  ASSERT_TRUE(inspect::readInput(path, text));
  EXPECT_EQ(text, "{\"event\":\"run_begin\"}\n");
  std::string missing;
  EXPECT_FALSE(inspect::readInput(path + ".nope", missing));
}

TEST(InspectReadInputTest, DashReadsStdin) {
  // `hoyan_inspect summary -` pipelines: point stdin at a file, read via "-".
  const std::string path = ::testing::TempDir() + "inspect_stdin.jsonl";
  std::FILE* out = std::fopen(path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  std::fputs("line one\nline two\n", out);
  std::fclose(out);

  const int savedStdin = ::dup(0);
  ASSERT_GE(savedStdin, 0);
  ASSERT_NE(std::freopen(path.c_str(), "r", stdin), nullptr);
  std::string text;
  const bool ok = inspect::readInput("-", text);
  ::dup2(savedStdin, 0);
  ::close(savedStdin);
  std::clearerr(stdin);

  EXPECT_TRUE(ok);
  EXPECT_EQ(text, "line one\nline two\n");
}

}  // namespace
}  // namespace hoyan
