// Tests for the live run-status subsystem: RunRegistry publication
// semantics, the /runs JSON schemas, StatusServer routing (socket-free via
// handle(), then over a real loopback socket through the hoyan_top client),
// and the concurrent-scrape guarantee — 4 threads hammering /metrics and
// /runs/current over HTTP during a distributed verification run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/hoyan.h"
#include "obs/run_registry.h"
#include "obs/statusd.h"
#include "obs/telemetry.h"
#include "status_client.h"
#include "test_fixtures.h"

namespace hoyan {
namespace {

using obs::RunRegistry;
using obs::RunSnapshot;
using obs::StatusServer;
using obs::StatusServerOptions;
using statusclient::HttpResult;
using statusclient::JsonValue;
using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

// --- RunRegistry ------------------------------------------------------------

TEST(RunRegistryTest, LifecycleCountsAndStates) {
  RunRegistry registry;
  EXPECT_EQ(registry.currentRunId(), 0u);
  EXPECT_FALSE(registry.snapshot(1).has_value());

  const uint64_t id = registry.runBegin("verify-1");
  EXPECT_EQ(registry.currentRunId(), id);
  registry.phase("model_build");
  registry.subtaskEnqueued(3);
  registry.subtaskStarted(0, "route:0");
  registry.subtaskFinished(0, 0.01);
  registry.subtaskStarted(1, "route:1");

  auto live = registry.snapshot(id);
  ASSERT_TRUE(live.has_value());
  EXPECT_EQ(live->name, "verify-1");
  EXPECT_EQ(live->state, "running");
  EXPECT_EQ(live->phase, "model_build");
  EXPECT_EQ(live->pending, 1u);
  EXPECT_EQ(live->running, 1u);
  EXPECT_EQ(live->succeeded, 1u);
  ASSERT_EQ(live->active.size(), 1u);
  EXPECT_EQ(live->active[0].id, "route:1");
  EXPECT_EQ(live->active[0].worker, 1);

  registry.subtaskFinished(1, 0.01);
  registry.subtaskStarted(2, "route:2");
  registry.subtaskFinished(2, 0.01);
  registry.runEnd(id, 2.5);
  auto done = registry.snapshot(id);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->state, "succeeded");
  EXPECT_DOUBLE_EQ(done->elapsedSeconds, 2.5);  // Frozen, not wall clock.
  EXPECT_EQ(done->succeeded, 3u);
  EXPECT_EQ(done->pending, 0u);
  EXPECT_EQ(done->running, 0u);
  EXPECT_TRUE(done->active.empty());
}

TEST(RunRegistryTest, ExhaustedSubtaskFailsTheRun) {
  RunRegistry registry;
  const uint64_t id = registry.runBegin("crashy");
  registry.subtaskEnqueued(1);
  registry.subtaskStarted(0, "route:0");
  registry.subtaskCrashed(0);
  registry.subtaskRetried();
  registry.subtaskStarted(0, "route:0");
  registry.subtaskCrashed(0);
  registry.subtaskExhausted();
  registry.runEnd(id, 1.0);
  auto snapshot = registry.snapshot(id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->state, "failed");
  EXPECT_EQ(snapshot->retries, 1u);
  EXPECT_EQ(snapshot->exhausted, 1u);
  EXPECT_EQ(snapshot->failed, 1u);
  EXPECT_EQ(snapshot->succeeded, 0u);
}

TEST(RunRegistryTest, CachedSubtasksCountAsSucceededWithoutQueueing) {
  RunRegistry registry;
  const uint64_t id = registry.runBegin("warm");
  registry.subtaskCached(4);
  registry.cacheHit();
  registry.cacheHit();
  registry.cacheMiss();
  registry.cacheBypass();
  auto snapshot = registry.snapshot(id);
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->succeeded, 4u);
  EXPECT_EQ(snapshot->pending, 0u);
  EXPECT_EQ(snapshot->cacheHits, 2u);
  EXPECT_EQ(snapshot->cacheMisses, 1u);
  EXPECT_EQ(snapshot->cacheBypasses, 1u);
}

TEST(RunRegistryTest, StragglerFlaggedAgainstFinishedMean) {
  RunRegistry registry;
  const uint64_t id = registry.runBegin("straggle");
  registry.subtaskEnqueued(10);
  // Not enough finished samples yet: nothing is flagged no matter how long
  // it has been running.
  registry.subtaskStarted(1, "slow");
  auto early = registry.snapshot(id);
  ASSERT_EQ(early->active.size(), 1u);
  EXPECT_FALSE(early->active[0].straggler);
  // 8 fast finishes set the baseline; the floor is 0.05s, so after ~80ms the
  // still-running subtask crosses it.
  for (int i = 0; i < 8; ++i) registry.subtaskFinished(0, 0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto late = registry.snapshot(id);
  ASSERT_EQ(late->active.size(), 1u);
  EXPECT_TRUE(late->active[0].straggler);
  EXPECT_GE(late->active[0].seconds, 0.05);
}

TEST(RunRegistryTest, WorkerIdsBeyondTableAreCountedNotAttributed) {
  RunRegistry registry(/*maxWorkers=*/2);
  const uint64_t id = registry.runBegin("wide");
  registry.subtaskEnqueued(2);
  registry.subtaskStarted(1, "in-table");
  registry.subtaskStarted(7, "off-table");
  auto snapshot = registry.snapshot(id);
  EXPECT_EQ(snapshot->running, 2u);
  ASSERT_EQ(snapshot->active.size(), 1u);
  EXPECT_EQ(snapshot->active[0].id, "in-table");
  registry.subtaskFinished(7, 0.01);
  EXPECT_EQ(registry.snapshot(id)->succeeded, 1u);
}

TEST(RunRegistryTest, ListEvictsOldestFinishedRuns) {
  RunRegistry registry(/*maxWorkers=*/4, /*keepRuns=*/2);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const uint64_t id = registry.runBegin("run-" + std::to_string(i));
    registry.runEnd(id, 0.1);
    ids.push_back(id);
  }
  const auto list = registry.list();
  ASSERT_EQ(list.size(), 2u);
  // Newest survive; list is oldest-first.
  EXPECT_EQ(list[0].id, ids[2]);
  EXPECT_EQ(list[1].id, ids[3]);
  EXPECT_FALSE(registry.snapshot(ids[0]).has_value());
  ASSERT_TRUE(registry.snapshot(ids[3]).has_value());
}

TEST(RunRegistryTest, GlobalPointerRoundTrips) {
  EXPECT_EQ(RunRegistry::global(), nullptr);
  RunRegistry registry;
  RunRegistry::setGlobal(&registry);
  EXPECT_EQ(RunRegistry::global(), &registry);
  RunRegistry::setGlobal(nullptr);
  EXPECT_EQ(RunRegistry::global(), nullptr);
}

// --- JSON schemas -----------------------------------------------------------

TEST(RunJsonTest, SnapshotSchemaRoundTripsThroughClientParser) {
  RunSnapshot snapshot;
  snapshot.id = 7;
  snapshot.name = "verify \"q1\"";
  snapshot.state = "running";
  snapshot.phase = "route.exec";
  snapshot.impact = "3 devices, 2 sessions";
  snapshot.elapsedSeconds = 1.25;
  snapshot.version = 5;
  snapshot.pending = 2;
  snapshot.running = 1;
  snapshot.succeeded = 10;
  snapshot.failed = 1;
  snapshot.retries = 3;
  snapshot.exhausted = 1;
  snapshot.cacheHits = 6;
  snapshot.cacheMisses = 2;
  snapshot.cacheBypasses = 1;
  snapshot.active.push_back({"route:9", 3, 0.5, true});

  JsonValue root;
  ASSERT_TRUE(statusclient::parseJson(obs::runSnapshotToJson(snapshot), root));
  EXPECT_EQ(root.num("id"), 7);
  EXPECT_EQ(root.str("name"), "verify \"q1\"");
  EXPECT_EQ(root.str("state"), "running");
  EXPECT_EQ(root.str("phase"), "route.exec");
  EXPECT_EQ(root.str("impact"), "3 devices, 2 sessions");
  EXPECT_DOUBLE_EQ(root.num("elapsed_seconds"), 1.25);
  const JsonValue* subtasks = root.find("subtasks");
  ASSERT_NE(subtasks, nullptr);
  EXPECT_EQ(subtasks->num("pending"), 2);
  EXPECT_EQ(subtasks->num("succeeded"), 10);
  EXPECT_EQ(subtasks->num("retries"), 3);
  EXPECT_EQ(subtasks->num("exhausted"), 1);
  const JsonValue* cache = root.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->num("hits"), 6);
  EXPECT_DOUBLE_EQ(cache->num("hit_rate"), 0.75);  // 6 / (6 + 2).
  const JsonValue* active = root.find("active");
  ASSERT_NE(active, nullptr);
  ASSERT_EQ(active->items.size(), 1u);
  EXPECT_EQ(active->items[0].str("id"), "route:9");
  EXPECT_EQ(active->items[0].num("worker"), 3);
  const JsonValue* straggler = active->items[0].find("straggler");
  ASSERT_NE(straggler, nullptr);
  EXPECT_TRUE(straggler->boolean);
}

TEST(RunJsonTest, SnapshotOmitsEmptyImpactAndZeroHitRate) {
  RunSnapshot snapshot;
  snapshot.id = 1;
  snapshot.state = "running";
  JsonValue root;
  ASSERT_TRUE(statusclient::parseJson(obs::runSnapshotToJson(snapshot), root));
  EXPECT_EQ(root.find("impact"), nullptr);
  EXPECT_DOUBLE_EQ(root.find("cache")->num("hit_rate"), 0);  // Not NaN.
}

TEST(RunJsonTest, SummarySchema) {
  obs::RunSummary summary;
  summary.id = 3;
  summary.name = "warm";
  summary.state = "succeeded";
  summary.phase = "traffic.merge";
  summary.elapsedSeconds = 0.5;
  summary.succeeded = 8;
  JsonValue root;
  ASSERT_TRUE(statusclient::parseJson(obs::runSummaryToJson(summary), root));
  EXPECT_EQ(root.num("id"), 3);
  EXPECT_EQ(root.str("state"), "succeeded");
  EXPECT_EQ(root.str("phase"), "traffic.merge");
  EXPECT_EQ(root.num("succeeded"), 8);
}

// --- handle(): socket-free endpoint routing ---------------------------------

class StatusHandleTest : public ::testing::Test {
 protected:
  StatusHandleTest() {
    options_.runs = &registry_;
    options_.metrics = &metrics_;
    server_ = std::make_unique<StatusServer>(options_);
  }

  RunRegistry registry_;
  obs::MetricsRegistry metrics_;
  StatusServerOptions options_;
  std::unique_ptr<StatusServer> server_;
};

TEST_F(StatusHandleTest, HealthzReportsCurrentRun) {
  auto empty = server_->handle("GET", "/healthz");
  EXPECT_EQ(empty.status, 200);
  JsonValue root;
  ASSERT_TRUE(statusclient::parseJson(empty.body, root)) << empty.body;
  EXPECT_EQ(root.str("status"), "ok");
  EXPECT_EQ(root.find("current")->kind, JsonValue::Kind::kNull);

  registry_.runBegin("verify-a");
  registry_.phase("route.exec");
  auto live = server_->handle("GET", "/healthz");
  ASSERT_TRUE(statusclient::parseJson(live.body, root));
  const JsonValue* current = root.find("current");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->str("name"), "verify-a");
  EXPECT_EQ(current->str("state"), "running");
  EXPECT_EQ(current->str("phase"), "route.exec");
}

TEST_F(StatusHandleTest, MetricsServesPrometheusText) {
  metrics_.counter("dist.retries", "Retried subtasks.").add(2);
  auto response = server_->handle("GET", "/metrics");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.contentType, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(response.body.find("# HELP dist_retries Retried subtasks.\n"),
            std::string::npos);
  EXPECT_NE(response.body.find("dist_retries 2\n"), std::string::npos);
}

TEST_F(StatusHandleTest, RunListAndSnapshotEndpoints) {
  const uint64_t first = registry_.runBegin("one");
  registry_.runEnd(first, 0.2);
  const uint64_t second = registry_.runBegin("two");
  registry_.subtaskEnqueued(2);

  auto list = server_->handle("GET", "/runs");
  EXPECT_EQ(list.status, 200);
  JsonValue root;
  ASSERT_TRUE(statusclient::parseJson(list.body, root));
  EXPECT_EQ(root.num("current"), static_cast<double>(second));
  ASSERT_EQ(root.find("runs")->items.size(), 2u);

  auto byId = server_->handle("GET", "/runs/" + std::to_string(first));
  EXPECT_EQ(byId.status, 200);
  ASSERT_TRUE(statusclient::parseJson(byId.body, root));
  EXPECT_EQ(root.str("name"), "one");
  EXPECT_EQ(root.str("state"), "succeeded");

  auto current = server_->handle("GET", "/runs/current");
  EXPECT_EQ(current.status, 200);
  ASSERT_TRUE(statusclient::parseJson(current.body, root));
  EXPECT_EQ(root.str("name"), "two");
  EXPECT_EQ(root.find("subtasks")->num("pending"), 2);
}

TEST_F(StatusHandleTest, ErrorStatuses) {
  EXPECT_EQ(server_->handle("GET", "/runs/banana").status, 400);
  EXPECT_EQ(server_->handle("GET", "/runs/999").status, 404);
  EXPECT_EQ(server_->handle("GET", "/runs/current").status, 404) << "no runs yet";
  EXPECT_EQ(server_->handle("GET", "/nope").status, 404);
  EXPECT_EQ(server_->handle("POST", "/healthz").status, 405);
  EXPECT_EQ(server_->handle("GET", "/explain").status, 503)
      << "no provenance recorder attached";
  // Every error body is itself valid JSON with an "error" member.
  auto error = server_->handle("GET", "/runs/banana");
  JsonValue root;
  ASSERT_TRUE(statusclient::parseJson(error.body, root));
  EXPECT_FALSE(root.str("error").empty());
}

TEST(StatusServerDetachedTest, EndpointsAnswer503WithoutSources) {
  // No options, no process globals: every data endpoint degrades to 503
  // rather than crashing (healthz stays 200 — the server itself is alive).
  ASSERT_EQ(RunRegistry::global(), nullptr);
  ASSERT_EQ(obs::Telemetry::global(), nullptr);
  StatusServer server;
  EXPECT_EQ(server.handle("GET", "/healthz").status, 200);
  EXPECT_EQ(server.handle("GET", "/metrics").status, 503);
  EXPECT_EQ(server.handle("GET", "/runs").status, 503);
  EXPECT_EQ(server.handle("GET", "/runs/current").status, 503);
}

// --- socket round-trip through the hoyan_top client -------------------------

TEST(StatusServerSocketTest, ServesOverLoopbackThroughStatusClient) {
  RunRegistry registry;
  obs::MetricsRegistry metrics;
  metrics.counter("dist.retries").add(1);
  StatusServerOptions options;
  options.runs = &registry;
  options.metrics = &metrics;
  StatusServer server(options);
  ASSERT_TRUE(server.start());
  ASSERT_NE(server.port(), 0);
  const uint64_t id = registry.runBegin("socket-run");
  registry.subtaskEnqueued(5);

  HttpResult result;
  ASSERT_TRUE(statusclient::httpGet("127.0.0.1", server.port(),
                                    "/runs/" + std::to_string(id), result));
  EXPECT_EQ(result.status, 200);
  JsonValue root;
  ASSERT_TRUE(statusclient::parseJson(result.body, root)) << result.body;
  EXPECT_EQ(root.str("name"), "socket-run");
  EXPECT_EQ(root.find("subtasks")->num("pending"), 5);

  ASSERT_TRUE(statusclient::httpGet("127.0.0.1", server.port(), "/metrics", result));
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("dist_retries 1"), std::string::npos);

  ASSERT_TRUE(statusclient::httpGet("127.0.0.1", server.port(), "/nope", result));
  EXPECT_EQ(result.status, 404);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_FALSE(
      statusclient::httpGet("127.0.0.1", server.port(), "/healthz", result));
}

TEST(StatusServerSocketTest, StartIsIdempotentAndStopTwiceIsSafe) {
  StatusServer server;
  ASSERT_TRUE(server.start());
  const uint16_t port = server.port();
  EXPECT_TRUE(server.start());
  EXPECT_EQ(server.port(), port);
  server.stop();
  server.stop();
}

// --- concurrent scrape during a distributed verification --------------------

// 4 scraper threads hammer /metrics and /runs/current over real sockets
// while a distributed verify runs. Guards the data-race surface (relaxed
// counters + worker slots + phase strings) under TSan/ASan, and checks the
// observed subtask counts never move backwards within one scraper.
TEST(ConcurrentScrapeTest, FourThreadsHammerEndpointsDuringVerify) {
  SmallWan net = buildSmallWan();
  obs::Telemetry telemetry{obs::TelemetryOptions{}};
  RunRegistry registry;
  Hoyan hoyan(net.topology, net.configs);
  hoyan.setTelemetry(&telemetry);
  hoyan.setRunRegistry(&registry);
  std::vector<InputRoute> routes;
  for (int i = 0; i < 12; ++i)
    routes.push_back(ispRoute(net, "100." + std::to_string(i + 1) + ".0.0/16"));
  hoyan.setInputRoutes(routes);
  DistSimOptions simOptions;
  simOptions.workers = 4;
  simOptions.routeSubtasks = 16;
  hoyan.setSimulationOptions(simOptions);

  StatusServerOptions serverOptions;
  serverOptions.runs = &registry;
  serverOptions.metrics = &telemetry.metrics();
  StatusServer server(serverOptions);
  ASSERT_TRUE(server.start());

  std::atomic<bool> stop{false};
  std::atomic<int> scrapeFailures{0};
  std::atomic<int> transportErrors{0};
  std::atomic<uint64_t> scrapes{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      double lastDone = -1;
      double lastRunId = -1;
      while (!stop.load(std::memory_order_acquire)) {
        HttpResult result;
        const std::string target = t % 2 == 0 ? "/metrics" : "/runs/current";
        if (!statusclient::httpGet("127.0.0.1", server.port(), target, result)) {
          // A saturated loopback can transiently refuse (backlog overflow);
          // that is retry territory, not a server defect.
          transportErrors.fetch_add(1);
          continue;
        }
        // /runs/current is 404 until the first runBegin; afterwards it must
        // parse and its completed-subtask count must be monotone *within a
        // run* (preprocess and verify are separate runs, each restarting
        // from zero).
        if (target == "/runs/current" && result.status == 200) {
          JsonValue root;
          if (!statusclient::parseJson(result.body, root)) {
            scrapeFailures.fetch_add(1);
            continue;
          }
          const double runId = root.num("id", -1);
          if (runId != lastRunId) {
            lastRunId = runId;
            lastDone = -1;
          }
          const JsonValue* subtasks = root.find("subtasks");
          const double done =
              subtasks ? subtasks->num("succeeded") + subtasks->num("failed") : 0;
          if (done + 1e-9 < lastDone) scrapeFailures.fetch_add(1);
          lastDone = done;
        } else if (result.status != 200 && result.status != 404 &&
                   result.status != 503) {
          scrapeFailures.fetch_add(1);
        }
        scrapes.fetch_add(1);
      }
    });
  }

  hoyan.preprocess();
  IntentSet intents;
  intents.rclIntents = {"PRE = POST"};
  const ChangeVerificationResult result = hoyan.verifyChange({}, intents);
  EXPECT_TRUE(result.satisfied());

  stop.store(true, std::memory_order_release);
  for (auto& scraper : scrapers) scraper.join();
  server.stop();

  EXPECT_EQ(scrapeFailures.load(), 0);
  EXPECT_GT(scrapes.load(), 0u)
      << "no scrape completed (" << transportErrors.load()
      << " transport errors)";
  // The runs the facade published are all closed and visible.
  const auto list = registry.list();
  ASSERT_GE(list.size(), 2u);  // preprocess + verify.
  for (const auto& run : list) EXPECT_NE(run.state, "running");
}

// --- status client ----------------------------------------------------------

TEST(StatusClientJsonTest, ParsesEscapesAndNesting) {
  JsonValue root;
  ASSERT_TRUE(statusclient::parseJson(
      R"({"a":[1,2.5,-3e2],"b":{"c":"x\ny A","d":true,"e":null}})", root));
  ASSERT_EQ(root.find("a")->items.size(), 3u);
  EXPECT_DOUBLE_EQ(root.find("a")->items[2].number, -300);
  EXPECT_EQ(root.find("b")->str("c"), "x\ny A");
  EXPECT_TRUE(root.find("b")->find("d")->boolean);
  EXPECT_EQ(root.find("b")->find("e")->kind, JsonValue::Kind::kNull);
}

TEST(StatusClientJsonTest, RejectsMalformedDocuments) {
  JsonValue root;
  EXPECT_FALSE(statusclient::parseJson("{\"a\":", root));
  EXPECT_FALSE(statusclient::parseJson("{} trailing", root));
  EXPECT_FALSE(statusclient::parseJson("{\"a\" 1}", root));
  EXPECT_FALSE(statusclient::parseJson("\"unterminated", root));
  EXPECT_TRUE(statusclient::parseJson(" {} ", root)) << "whitespace is fine";
}

TEST(StatusClientRenderTest, RendersDashboardFrame) {
  JsonValue run;
  ASSERT_TRUE(statusclient::parseJson(
      R"({"id":7,"name":"verify","state":"running","phase":"route.exec",)"
      R"("elapsed_seconds":65.5,"subtasks":{"pending":2,"running":1,)"
      R"("succeeded":5,"failed":0,"retries":1},"cache":{"hits":3,"misses":1,)"
      R"("bypasses":0,"hit_rate":0.75},"impact":"2 devices",)"
      R"("active":[{"id":"route:3","worker":2,"seconds":1.5,"straggler":true}]})",
      run));
  const std::string frame = statusclient::renderTop(run, 2.5);
  EXPECT_NE(frame.find("run #7 \"verify\""), std::string::npos) << frame;
  EXPECT_NE(frame.find("running"), std::string::npos);
  EXPECT_NE(frame.find("phase=route.exec"), std::string::npos);
  EXPECT_NE(frame.find("elapsed=1m05s"), std::string::npos);
  EXPECT_NE(frame.find(" 5/8"), std::string::npos) << "done/total";
  EXPECT_NE(frame.find("(2.5/s)"), std::string::npos);
  EXPECT_NE(frame.find("hit rate 75%"), std::string::npos);
  EXPECT_NE(frame.find("impact: 2 devices"), std::string::npos);
  EXPECT_NE(frame.find("STRAGGLER"), std::string::npos);
  // First frame: throughput unknown, no rate printed.
  EXPECT_EQ(statusclient::renderTop(run, -1).find("/s)"), std::string::npos);
}

}  // namespace
}  // namespace hoyan
