// RCL language tests: the Fig. 6 running example, every §4.3 use case, the
// full construct matrix, parser errors, counter-examples, and a semantics
// property test against a brute-force oracle.
#include <gtest/gtest.h>

#include <random>

#include "rcl/parser.h"
#include "rcl/verify.h"

namespace hoyan::rcl {
namespace {

// Builds the Fig. 6 example global RIBs.
RibRow row(const std::string& device, const std::string& vrf, const std::string& prefix,
           std::vector<std::string> communities, uint32_t localPref,
           const std::string& nexthop) {
  RibRow r;
  r.device = device;
  r.vrf = vrf;
  r.prefix = *Prefix::parse(prefix);
  r.communities = std::move(communities);
  r.localPref = localPref;
  r.nexthop = *IpAddress::parse(nexthop);
  r.routeType = RouteType::kBest;
  return r;
}

class Fig6Test : public ::testing::Test {
 protected:
  void SetUp() override {
    base_.add(row("A", "global", "10.0.0.0/24", {"100:1"}, 100, "2.0.0.1"));
    base_.add(row("A", "vrf1", "20.0.0.0/24", {"100:1", "200:1"}, 10, "3.0.0.1"));
    base_.add(row("B", "global", "10.0.0.0/24", {"100:1"}, 200, "4.0.0.1"));
    updated_.add(row("A", "global", "10.0.0.0/24", {"100:1"}, 300, "2.0.0.1"));
    updated_.add(row("A", "vrf1", "20.0.0.0/24", {"100:1", "200:1"}, 10, "3.0.0.1"));
    updated_.add(row("B", "global", "10.0.0.0/24", {"100:1"}, 300, "4.0.0.1"));
  }

  CheckResult check(const std::string& spec) {
    return checkIntentText(spec, base_, updated_);
  }

  GlobalRib base_;
  GlobalRib updated_;
};

TEST_F(Fig6Test, Section41IntentA) {
  // Routes with prefix 10.0.0.0/24 have local preference 300 after the change.
  const CheckResult result =
      check("prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}");
  EXPECT_TRUE(result.satisfied) << result.summary();
}

TEST_F(Fig6Test, Section41IntentB) {
  // Routes with other prefixes remain unchanged.
  const CheckResult result = check("prefix != 10.0.0.0/24 => PRE = POST");
  EXPECT_TRUE(result.satisfied) << result.summary();
}

TEST_F(Fig6Test, IntentAViolatedWhenValueWrong) {
  const CheckResult result =
      check("prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {400}");
  EXPECT_FALSE(result.satisfied);
  ASSERT_FALSE(result.violations.empty());
  // The counter-example carries the actual distinct values.
  EXPECT_NE(result.violations[0].message.find("{300}"), std::string::npos)
      << result.violations[0].message;
  EXPECT_FALSE(result.violations[0].exampleRows.empty());
}

TEST_F(Fig6Test, UnchangedIntentViolatedWhenRibsDiffer) {
  // The full RIBs differ (localPref changed on 10.0.0.0/24).
  const CheckResult result = check("PRE = POST");
  EXPECT_FALSE(result.satisfied);
}

TEST_F(Fig6Test, UseCaseValidatingUnchangedRoutes) {
  const CheckResult result = check(
      "forall device in {A, B}: forall prefix in {10.0.0.0/24, 20.0.0.0/24}: "
      "routeType = BEST => "
      "PRE |> distVals(nexthop) = POST |> distVals(nexthop)");
  EXPECT_TRUE(result.satisfied) << result.summary();
}

TEST_F(Fig6Test, UseCaseValidatingRouteChangeSuccess) {
  // No route containing community 100:1 on device B: violated (B has one).
  const CheckResult violated =
      check("forall device in {B}: POST || (communities contains 100:1) |> count() = 0");
  EXPECT_FALSE(violated.satisfied);
  // Community 999:9 is absent: satisfied.
  const CheckResult satisfied =
      check("forall device in {A, B}: POST || (communities contains 999:9) |> count() = 0");
  EXPECT_TRUE(satisfied.satisfied) << satisfied.summary();
}

TEST_F(Fig6Test, UseCaseConditionalChange) {
  const CheckResult result = check(
      "forall device in {A, B}: forall prefix: "
      "(PRE |> distVals(nexthop) = {2.0.0.1}) imply "
      "(POST |> distVals(nexthop) = {2.0.0.1})");
  EXPECT_TRUE(result.satisfied) << result.summary();
}

TEST_F(Fig6Test, ForallGroupsByFieldValues) {
  // Each (device, prefix) group has exactly one distinct nexthop.
  const CheckResult result =
      check("forall device: forall prefix: POST |> distCnt(nexthop) = 1");
  EXPECT_TRUE(result.satisfied) << result.summary();
}

TEST_F(Fig6Test, CountAndArithmetic) {
  EXPECT_TRUE(check("POST |> count() = 3").satisfied);
  EXPECT_TRUE(check("POST |> count() = PRE |> count()").satisfied);
  EXPECT_TRUE(check("POST |> count() + 1 = 4").satisfied);
  EXPECT_TRUE(check("POST |> count() * 2 = 6").satisfied);
  EXPECT_TRUE(check("POST |> count() - 1 = 2").satisfied);
  EXPECT_TRUE(check("POST |> count() / 3 = 1").satisfied);
  EXPECT_TRUE(check("POST |> count() >= 3").satisfied);
  EXPECT_FALSE(check("POST |> count() < 3").satisfied);
}

TEST_F(Fig6Test, FilterTransformChains) {
  EXPECT_TRUE(check("POST || device = A |> count() = 2").satisfied);
  EXPECT_TRUE(check("POST || device = A || vrf = vrf1 |> count() = 1").satisfied);
  EXPECT_TRUE(check("POST || (device = A and vrf = global) |> count() = 1").satisfied);
}

TEST_F(Fig6Test, PredicateOperators) {
  EXPECT_TRUE(check("vrf = vrf1 => POST |> distVals(localPref) = {10}").satisfied);
  EXPECT_TRUE(check("localPref >= 300 => POST |> distCnt(device) = 2").satisfied);
  EXPECT_TRUE(
      check("communities contains 200:1 => POST |> distVals(prefix) = {20.0.0.0/24}")
          .satisfied);
  EXPECT_TRUE(check("device in {A} and vrf in {vrf1} => POST |> count() = 1").satisfied);
  EXPECT_TRUE(check("prefix matches \"^20\" => POST |> count() = 1").satisfied);
  EXPECT_TRUE(check("not device = A => POST |> count() = 1").satisfied);
}

TEST_F(Fig6Test, BooleanIntentComposition) {
  EXPECT_TRUE(check("POST |> count() = 3 and PRE |> count() = 3").satisfied);
  EXPECT_TRUE(check("POST |> count() = 99 or PRE |> count() = 3").satisfied);
  EXPECT_FALSE(check("not PRE |> count() = 3").satisfied);
  EXPECT_TRUE(check("POST |> count() = 99 imply PRE |> count() = 55").satisfied);
}

TEST_F(Fig6Test, RibInequality) {
  EXPECT_TRUE(check("PRE != POST").satisfied);
  EXPECT_FALSE(check("PRE != PRE").satisfied);
  EXPECT_TRUE(check("PRE || vrf = vrf1 = POST || vrf = vrf1").satisfied);
}

TEST(RclParserTest, ReportsErrors) {
  EXPECT_FALSE(parseIntent("").ok());
  EXPECT_FALSE(parseIntent("prefix = ").ok());
  EXPECT_FALSE(parseIntent("bogusfield = 3 => PRE = POST").ok());
  EXPECT_FALSE(parseIntent("PRE > POST").ok());  // RIBs compare only =/!=.
  EXPECT_FALSE(parseIntent("POST |> bogusFunc() = 1").ok());
  EXPECT_FALSE(parseIntent("forall prefix POST |> count() = 1").ok());  // Missing ':'.
  EXPECT_FALSE(parseIntent("PRE = POST trailing").ok());
}

TEST(RclParserTest, SizeMetricCountsInternalNodes) {
  // A guarded intent: guard (1 internal: the comparison) + guard node +
  // compare node + aggregate node...
  const ParseOutcome simple = parseIntent("PRE = POST");
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple.intent->internalNodes(), 1u);
  const ParseOutcome guarded =
      parseIntent("prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}");
  ASSERT_TRUE(guarded.ok());
  // guard(=>)=1 + predicate(=)=1 + evalCompare(=)=1 + aggregate(|>)=1 -> 4.
  EXPECT_EQ(guarded.intent->internalNodes(), 4u);
  // >90% of production specs are below 15 — a representative nested spec
  // stays compact.
  const ParseOutcome nested = parseIntent(
      "forall device in {R1, R2}: forall prefix: "
      "(PRE |> distVals(nexthop) = {1.2.3.4}) imply "
      "(POST |> distVals(nexthop) = {10.2.3.4})");
  ASSERT_TRUE(nested.ok());
  EXPECT_LT(nested.intent->internalNodes(), 15u);
}

TEST(RclParserTest, RoundTripThroughStr) {
  const char* specs[] = {
      "prefix = 10.0.0.0/24 => POST |> distVals(localPref) = {300}",
      "forall device: forall prefix: POST |> distCnt(nexthop) = 1",
      "POST || (communities contains 100:1) |> count() = 0",
      "PRE != POST",
  };
  for (const char* spec : specs) {
    const ParseOutcome first = parseIntent(spec);
    ASSERT_TRUE(first.ok()) << spec << ": " << first.error;
    const ParseOutcome second = parseIntent(first.intent->str());
    ASSERT_TRUE(second.ok()) << first.intent->str() << ": " << second.error;
    EXPECT_EQ(first.intent->str(), second.intent->str());
    EXPECT_EQ(first.intent->internalNodes(), second.intent->internalNodes());
  }
}

TEST(RclParserTest, ParseFailureSurfacesAsViolation) {
  GlobalRib empty;
  const CheckResult result = checkIntentText("((", empty, empty);
  EXPECT_FALSE(result.satisfied);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].message.find("parse error"), std::string::npos);
}

TEST(RclSemanticsTest, ForallBindingAppearsInCounterexampleContext) {
  GlobalRib base, updated;
  base.add(row("R1", "global", "10.0.0.0/24", {}, 100, "1.1.1.1"));
  base.add(row("R2", "global", "10.0.0.0/24", {}, 100, "1.1.1.1"));
  updated.add(row("R1", "global", "10.0.0.0/24", {}, 100, "1.1.1.1"));
  updated.add(row("R2", "global", "10.0.0.0/24", {}, 100, "9.9.9.9"));
  const CheckResult result = checkIntentText(
      "forall device: PRE |> distVals(nexthop) = POST |> distVals(nexthop)", base,
      updated);
  EXPECT_FALSE(result.satisfied);
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations[0].context, "device=R2");
}

TEST(RclSemanticsTest, EmptyGroupsAreCheckedAgainstAggregates) {
  // forall over explicit values includes values with no matching rows: the
  // sub-intent then sees empty RIBs (count 0).
  GlobalRib base, updated;
  updated.add(row("R1", "global", "10.0.0.0/24", {}, 100, "1.1.1.1"));
  const CheckResult zero = checkIntentText(
      "forall device in {R-ABSENT}: POST |> count() = 0", base, updated);
  EXPECT_TRUE(zero.satisfied) << zero.summary();
  const CheckResult nonzero = checkIntentText(
      "forall device in {R-ABSENT}: POST |> count() >= 1", base, updated);
  EXPECT_FALSE(nonzero.satisfied);
}

// Property test: distCnt == |distVals| and count >= distCnt, on random RIBs.
TEST(RclSemanticsTest, AggregateConsistencyProperty) {
  std::mt19937 rng(7);
  GlobalRib base, updated;
  const char* devices[] = {"R1", "R2", "R3"};
  for (int i = 0; i < 60; ++i) {
    RibRow r = row(devices[rng() % 3], "global",
                   "10." + std::to_string(rng() % 4) + ".0.0/16", {},
                   100 * (rng() % 3 + 1), "1.1.1." + std::to_string(rng() % 5));
    (rng() % 2 ? base : updated).add(r);
  }
  for (const char* field : {"device", "prefix", "nexthop", "localPref"}) {
    for (const char* side : {"PRE", "POST"}) {
      const std::string spec = std::string(side) + " |> distCnt(" + field + ") = " +
                               std::string(side) + " |> distCnt(" + field + ")";
      EXPECT_TRUE(checkIntentText(spec, base, updated).satisfied);
    }
  }
  // count >= distCnt(nexthop) on both sides.
  EXPECT_TRUE(checkIntentText("PRE |> count() >= PRE |> distCnt(nexthop)", base, updated)
                  .satisfied);
  EXPECT_TRUE(
      checkIntentText("POST |> count() >= POST |> distCnt(nexthop)", base, updated)
          .satisfied);
}

}  // namespace
}  // namespace hoyan::rcl
