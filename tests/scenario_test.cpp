// Integration tests: all 12 Table-2 change types verify cleanly, and every
// Table-6 risky change is flagged, via the full Hoyan pipeline.
#include <gtest/gtest.h>

#include <map>

#include "scenario/scenarios.h"

namespace hoyan {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    environment_ = new ScenarioEnvironment(makeStandardEnvironment());
    hoyan_ = new Hoyan(makeHoyan(*environment_));
  }
  static void TearDownTestSuite() {
    delete hoyan_;
    delete environment_;
    hoyan_ = nullptr;
    environment_ = nullptr;
  }

  static ScenarioEnvironment* environment_;
  static Hoyan* hoyan_;
};

ScenarioEnvironment* ScenarioTest::environment_ = nullptr;
Hoyan* ScenarioTest::hoyan_ = nullptr;

TEST_F(ScenarioTest, AllTable2ChangeTypesVerifyClean) {
  const std::vector<Scenario> scenarios = table2ChangeScenarios(*environment_);
  ASSERT_EQ(scenarios.size(), 12u);
  for (const Scenario& scenario : scenarios) {
    const ScenarioOutcome outcome = runScenario(*hoyan_, scenario);
    EXPECT_FALSE(outcome.flagged)
        << scenario.name << " (" << scenario.changeType << ")\n"
        << outcome.verification.report();
  }
}

TEST_F(ScenarioTest, AllTable6RisksAreFlagged) {
  const std::vector<Scenario> scenarios = table6RiskScenarios(*environment_);
  ASSERT_EQ(scenarios.size(), 32u);
  std::map<RiskRootCause, int> counts;
  for (const Scenario& scenario : scenarios) {
    const ScenarioOutcome outcome = runScenario(*hoyan_, scenario);
    EXPECT_TRUE(outcome.flagged) << scenario.name << " (" << scenario.description
                                 << ")\n"
                                 << outcome.verification.report();
    ++counts[scenario.risk];
  }
  // The paper's Table 6 root-cause mix.
  EXPECT_EQ(counts[RiskRootCause::kIncorrectCommands], 12);
  EXPECT_EQ(counts[RiskRootCause::kDesignFlaw], 11);
  EXPECT_EQ(counts[RiskRootCause::kExistingMisconfiguration], 5);
  EXPECT_EQ(counts[RiskRootCause::kTopologyIssue], 2);
  EXPECT_EQ(counts[RiskRootCause::kOther], 2);
}

}  // namespace
}  // namespace hoyan
