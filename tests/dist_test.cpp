// Tests of the distributed simulation framework: queue/store/db primitives,
// distributed == centralized result equivalence, failure retry, the ordering
// heuristic's dependency pruning, and the random-split comparison.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dist/dist_sim.h"
#include "dist/message_queue.h"
#include "dist/object_store.h"
#include "dist/subtask_db.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "obs/telemetry.h"

namespace hoyan {
namespace {

TEST(MessageQueueTest, FifoAndClose) {
  MessageQueue<int> queue;
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_EQ(queue.pop(), 2);
  queue.close();
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(MessageQueueTest, BlockingPopWakesOnPush) {
  MessageQueue<int> queue;
  std::atomic<int> got{0};
  std::thread consumer([&] { got = queue.pop().value_or(-1); });
  queue.push(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(MessageQueueTest, CloseWakesAllConsumers) {
  MessageQueue<int> queue;
  std::vector<std::thread> consumers;
  std::atomic<int> finished{0};
  for (int i = 0; i < 4; ++i)
    consumers.emplace_back([&] {
      while (queue.pop().has_value()) {
      }
      ++finished;
    });
  queue.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 4);
}

TEST(ObjectStoreTest, TypedPutGetAndAccounting) {
  ObjectStore store;
  store.put("k", std::vector<int>{1, 2, 3}, 12);
  EXPECT_TRUE(store.contains("k"));
  const auto blob = store.get<std::vector<int>>("k");
  EXPECT_EQ(blob->size(), 3u);
  EXPECT_EQ(store.bytesWritten(), 12u);
  EXPECT_EQ(store.bytesRead(), 12u);
  EXPECT_EQ(store.readCount(), 1u);
  EXPECT_THROW(store.get<std::vector<int>>("missing"), std::out_of_range);
  store.erase("k");
  EXPECT_FALSE(store.contains("k"));
}

TEST(SubtaskDbTest, StatusLifecycle) {
  SubtaskDb db;
  SubtaskRecord record;
  record.id = "route-0";
  db.upsert(record);
  db.update("route-0", [](SubtaskRecord& r) { r.status = SubtaskStatus::kRunning; });
  EXPECT_EQ(db.get("route-0")->status, SubtaskStatus::kRunning);
  EXPECT_EQ(db.countWithStatus(SubtaskStatus::kRunning), 1u);
  db.update("nonexistent", [](SubtaskRecord&) { FAIL(); });
  EXPECT_EQ(db.all().size(), 1u);
}

class DistSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WanSpec spec;
    spec.regions = 3;
    wan_ = generateWan(spec);
    model_ = std::make_unique<NetworkModel>(wan_.buildModel());
    WorkloadSpec workload;
    workload.prefixesPerIsp = 24;
    workload.prefixesPerDc = 12;
    workload.v6Share = 0;
    inputs_ = generateInputRoutes(wan_, workload);
    flows_ = generateFlows(wan_, workload, 600);
  }

  GeneratedWan wan_;
  std::unique_ptr<NetworkModel> model_;
  std::vector<InputRoute> inputs_;
  std::vector<Flow> flows_;
};

TEST_F(DistSimTest, DistributedEqualsCentralizedRouteSimulation) {
  // Centralized reference.
  RouteSimOptions central;
  central.includeLocalRoutes = true;
  RouteSimResult reference = simulateRoutes(*model_, inputs_, central);

  DistSimOptions options;
  options.workers = 4;
  options.routeSubtasks = 16;
  DistributedSimulator sim(*model_, options);
  DistRouteResult distributed = sim.runRouteSimulation(inputs_);
  ASSERT_TRUE(distributed.succeeded);
  EXPECT_EQ(distributed.ribs.routeCount(), reference.ribs.routeCount());

  // Every best route agrees (spot check through all devices/prefixes).
  reference.ribs.buildForwardingIndex();
  for (const auto& [deviceId, deviceRib] : reference.ribs.devices()) {
    const DeviceRib* other = distributed.ribs.findDevice(deviceId);
    ASSERT_NE(other, nullptr);
    for (const auto& [vrfId, vrfRib] : deviceRib.vrfs()) {
      const VrfRib* otherVrf = other->findVrf(vrfId);
      ASSERT_NE(otherVrf, nullptr) << Names::str(deviceId);
      ASSERT_EQ(otherVrf->prefixCount(), vrfRib.prefixCount()) << Names::str(deviceId);
      for (const auto& [prefix, routes] : vrfRib.routes()) {
        const auto* otherRoutes = otherVrf->find(prefix);
        ASSERT_NE(otherRoutes, nullptr) << prefix.str();
        ASSERT_EQ(otherRoutes->size(), routes.size()) << prefix.str();
        // Best routes must be identical.
        EXPECT_TRUE(otherRoutes->front() == routes.front())
            << Names::str(deviceId) << " " << prefix.str() << "\n  ref:  "
            << routes.front().str() << "\n  dist: " << otherRoutes->front().str();
      }
    }
  }
}

TEST_F(DistSimTest, DistributedTrafficMatchesCentralized) {
  RouteSimOptions central;
  central.includeLocalRoutes = true;
  RouteSimResult reference = simulateRoutes(*model_, inputs_, central);
  reference.ribs.buildForwardingIndex();
  const TrafficSimResult referenceTraffic =
      simulateTraffic(*model_, reference.ribs, flows_);

  DistSimOptions options;
  options.workers = 4;
  options.routeSubtasks = 16;
  options.trafficSubtasks = 8;
  DistributedSimulator sim(*model_, options);
  ASSERT_TRUE(sim.runRouteSimulation(inputs_).succeeded);
  const DistTrafficResult distributed = sim.runTrafficSimulation(flows_);
  ASSERT_TRUE(distributed.succeeded);
  EXPECT_EQ(distributed.stats.inputFlows, flows_.size());
  // Per-link loads agree with the centralized run.
  for (const auto& entry : referenceTraffic.linkLoads.entries()) {
    EXPECT_NEAR(distributed.linkLoads.get(entry.from, entry.to), entry.bps,
                entry.bps * 1e-6 + 1e-6)
        << Names::str(entry.from) << "->" << Names::str(entry.to);
  }
}

TEST_F(DistSimTest, WorkerCrashesAreRetried) {
  DistSimOptions options;
  options.workers = 4;
  options.routeSubtasks = 12;
  options.workerFailureProbability = 0.4;
  options.failureSeed = 3;
  options.maxAttempts = 10;
  DistributedSimulator sim(*model_, options);
  const DistRouteResult result = sim.runRouteSimulation(inputs_);
  EXPECT_TRUE(result.succeeded);
  EXPECT_GT(result.retries, 0u);
  // Retried subtasks recorded multiple attempts in the DB.
  bool sawRetriedRecord = false;
  for (const SubtaskRecord& record : sim.db().all())
    if (record.attempts > 1) sawRetriedRecord = true;
  EXPECT_TRUE(sawRetriedRecord);
  // And the result still matches the centralized reference count.
  RouteSimOptions central;
  central.includeLocalRoutes = true;
  EXPECT_EQ(result.ribs.routeCount(), simulateRoutes(*model_, inputs_, central).ribs.routeCount());
}

TEST_F(DistSimTest, ExhaustedRetriesFailTheTask) {
  DistSimOptions options;
  options.workers = 2;
  options.routeSubtasks = 4;
  options.workerFailureProbability = 1.0;  // Always crash.
  options.maxAttempts = 2;
  DistributedSimulator sim(*model_, options);
  const DistRouteResult result = sim.runRouteSimulation(inputs_);
  EXPECT_FALSE(result.succeeded);
}

TEST_F(DistSimTest, OrderingHeuristicPrunesRibFileLoads) {
  DistSimOptions ordering;
  ordering.workers = 4;
  ordering.routeSubtasks = 16;
  ordering.trafficSubtasks = 8;
  ordering.strategy = SplitStrategy::kOrdering;
  DistributedSimulator orderingSim(*model_, ordering);
  ASSERT_TRUE(orderingSim.runRouteSimulation(inputs_).succeeded);
  const DistTrafficResult orderingResult = orderingSim.runTrafficSimulation(flows_);

  DistSimOptions random = ordering;
  random.strategy = SplitStrategy::kRandom;
  DistributedSimulator randomSim(*model_, random);
  ASSERT_TRUE(randomSim.runRouteSimulation(inputs_).succeeded);
  const DistTrafficResult randomResult = randomSim.runTrafficSimulation(flows_);

  const auto averageLoadedFraction = [](const DistTrafficResult& result) {
    double sum = 0;
    for (const SubtaskMetric& metric : result.subtasks)
      sum += static_cast<double>(metric.ribFilesLoaded) /
             static_cast<double>(metric.ribFilesTotal);
    return sum / static_cast<double>(result.subtasks.size());
  };
  const double orderingFraction = averageLoadedFraction(orderingResult);
  const double randomFraction = averageLoadedFraction(randomResult);
  // Ordering loads a strict subset; random needs (nearly) everything.
  EXPECT_LT(orderingFraction, randomFraction);
  EXPECT_GT(randomFraction, 0.9);
  // Both strategies still compute identical loads.
  for (const auto& entry : orderingResult.linkLoads.entries())
    EXPECT_NEAR(randomResult.linkLoads.get(entry.from, entry.to), entry.bps,
                entry.bps * 1e-6 + 1e-6);
}

TEST_F(DistSimTest, LoadAllBaselineReadsMoreBytes) {
  DistSimOptions pruned;
  pruned.workers = 2;
  pruned.routeSubtasks = 16;
  pruned.trafficSubtasks = 8;
  DistributedSimulator prunedSim(*model_, pruned);
  ASSERT_TRUE(prunedSim.runRouteSimulation(inputs_).succeeded);
  const DistTrafficResult prunedResult = prunedSim.runTrafficSimulation(flows_);

  DistSimOptions baseline = pruned;
  baseline.loadAllRibs = true;
  DistributedSimulator baselineSim(*model_, baseline);
  ASSERT_TRUE(baselineSim.runRouteSimulation(inputs_).succeeded);
  const DistTrafficResult baselineResult = baselineSim.runTrafficSimulation(flows_);

  EXPECT_LT(prunedResult.storeBytesRead, baselineResult.storeBytesRead);
}

TEST_F(DistSimTest, SpansCoverEverySubtaskAttemptIncludingRetries) {
  // Under fault injection, every attempt — the completed ones *and* the
  // crashed-then-retried ones — must show up as a subtask span, and the
  // retry counter must agree with the task results.
  obs::TelemetryOptions telemetryOptions;
  telemetryOptions.tracing = true;
  obs::Telemetry telemetry(telemetryOptions);

  DistSimOptions options;
  options.workers = 4;
  options.routeSubtasks = 12;
  options.trafficSubtasks = 8;
  options.workerFailureProbability = 0.4;
  options.failureSeed = 3;
  options.maxAttempts = 10;
  options.telemetry = &telemetry;
  DistributedSimulator sim(*model_, options);
  const DistRouteResult route = sim.runRouteSimulation(inputs_);
  ASSERT_TRUE(route.succeeded);
  const DistTrafficResult traffic = sim.runTrafficSimulation(flows_);
  ASSERT_TRUE(traffic.succeeded);
  EXPECT_GT(route.retries + traffic.retries, 0u) << "fault injection never fired";

  const auto countSpans = [&](const std::string& name) {
    size_t n = 0;
    for (const obs::TraceEvent& event : telemetry.tracer().events())
      if (event.name == name) ++n;
    return n;
  };
  EXPECT_EQ(countSpans("route.subtask"), route.subtasks.size() + route.retries);
  EXPECT_EQ(countSpans("traffic.subtask"), traffic.subtasks.size() + traffic.retries);
  // Successful attempts additionally record an execute phase; crashed ones
  // die before reaching it.
  EXPECT_EQ(countSpans("route.subtask.execute"), route.subtasks.size());
  EXPECT_EQ(countSpans("traffic.subtask.execute"), traffic.subtasks.size());
  EXPECT_EQ(countSpans("route.task"), 1u);
  EXPECT_EQ(countSpans("route.split"), 1u);
  EXPECT_EQ(countSpans("route.merge"), 1u);

  obs::MetricsRegistry& metrics = telemetry.metrics();
  EXPECT_EQ(metrics.counter("dist.retries").value(), route.retries + traffic.retries);
  EXPECT_EQ(metrics.counter("dist.subtasks.completed").value(),
            route.subtasks.size() + traffic.subtasks.size());
}

TEST_F(DistSimTest, SubtaskRuntimesAreRecorded) {
  DistSimOptions options;
  options.workers = 2;
  options.routeSubtasks = 8;
  DistributedSimulator sim(*model_, options);
  const DistRouteResult result = sim.runRouteSimulation(inputs_);
  ASSERT_TRUE(result.succeeded);
  EXPECT_GE(result.subtasks.size(), 8u);
  for (const SubtaskMetric& metric : result.subtasks) EXPECT_GE(metric.seconds, 0.0);
}

TEST(ObjectStoreTest, ByteAccountingRoundTripsToZero) {
  ObjectStore store;
  store.put("run1/a", std::string("aa"), 100);
  store.put("run1/b", std::string("bb"), 200);
  store.put("cas/r/x", std::string("xx"), 300);
  EXPECT_EQ(store.liveBytes(), 600u);
  EXPECT_EQ(store.blobCount(), 3u);
  // Overwrite replaces the old blob's bytes instead of double-counting.
  store.put("cas/r/x", std::string("yy"), 50);
  EXPECT_EQ(store.liveBytes(), 350u);
  EXPECT_EQ(store.blobCount(), 3u);

  EXPECT_FALSE(store.erase("missing"));
  EXPECT_TRUE(store.erase("cas/r/x"));
  EXPECT_EQ(store.liveBytes(), 300u);
  EXPECT_EQ(store.erasePrefix("run1/"), 2u);
  EXPECT_EQ(store.liveBytes(), 0u);
  EXPECT_EQ(store.blobCount(), 0u);

  // Cumulative traffic counters survive deletion; clear() resets residency
  // only.
  const size_t written = store.bytesWritten();
  EXPECT_GT(written, 0u);
  store.put("again", std::string("zz"), 10);
  store.clear();
  EXPECT_EQ(store.liveBytes(), 0u);
  EXPECT_EQ(store.blobCount(), 0u);
  EXPECT_EQ(store.bytesWritten(), written + 10);
}

TEST_F(DistSimTest, ExhaustedSubtasksAreSurfacedWithCounter) {
  obs::Telemetry telemetry{{}};
  DistSimOptions options;
  options.workers = 2;
  options.routeSubtasks = 4;
  options.workerFailureProbability = 1.0;  // Always crash.
  options.maxAttempts = 2;
  options.telemetry = &telemetry;
  DistributedSimulator sim(*model_, options);
  const DistRouteResult result = sim.runRouteSimulation(inputs_);
  EXPECT_FALSE(result.succeeded);
  ASSERT_FALSE(result.failedSubtasks.empty());
  EXPECT_EQ(result.failedSubtasks.size(),
            telemetry.metrics().counter("dist.subtask_exhausted").value());
  // Every surfaced id names a subtask that exhausted its attempts.
  for (const std::string& id : result.failedSubtasks) {
    const auto record = sim.db().get(id);
    ASSERT_TRUE(record.has_value()) << id;
    EXPECT_EQ(record->status, SubtaskStatus::kFailed) << id;
    EXPECT_EQ(record->attempts, options.maxAttempts) << id;
  }
}

TEST_F(DistSimTest, ExhaustedTrafficSubtasksAreSurfaced) {
  // Route phase runs clean into a shared store; a second simulator with
  // certain crashes then runs only the traffic phase against it.
  ObjectStore shared;
  DistSimOptions clean;
  clean.workers = 2;
  clean.routeSubtasks = 8;
  clean.store = &shared;
  DistributedSimulator routeSim(*model_, clean);
  ASSERT_TRUE(routeSim.runRouteSimulation(inputs_).succeeded);

  DistSimOptions crashing = clean;
  crashing.trafficSubtasks = 4;
  crashing.workerFailureProbability = 1.0;
  crashing.maxAttempts = 2;
  DistributedSimulator trafficSim(*model_, crashing);
  const DistTrafficResult result = trafficSim.runTrafficSimulation(flows_);
  EXPECT_FALSE(result.succeeded);
  EXPECT_FALSE(result.failedSubtasks.empty());
}

TEST_F(DistSimTest, RetriesEqualExtraAttemptsAtEveryWorkerCount) {
  // Invariant linking the result-level retry count to per-subtask attempts:
  // every retry re-queued exactly one subtask, so
  //   retries == sum over ran subtasks of (attempts - 1),
  // with exhausted subtasks contributing maxAttempts - 1.
  for (const size_t workers : {1u, 3u, 6u}) {
    DistSimOptions options;
    options.workers = workers;
    options.routeSubtasks = 10;
    options.trafficSubtasks = 6;
    options.workerFailureProbability = 0.35;
    options.failureSeed = 11;
    options.maxAttempts = 8;
    DistributedSimulator sim(*model_, options);
    const DistRouteResult route = sim.runRouteSimulation(inputs_);
    ASSERT_TRUE(route.succeeded) << workers;
    const DistTrafficResult traffic = sim.runTrafficSimulation(flows_);
    ASSERT_TRUE(traffic.succeeded) << workers;
    size_t extraAttempts = 0;
    for (const SubtaskRecord& record : sim.db().all()) {
      ASSERT_GE(record.attempts, 1) << record.id;
      extraAttempts += static_cast<size_t>(record.attempts - 1);
    }
    EXPECT_EQ(route.retries + traffic.retries, extraAttempts) << workers;
    // The same per-subtask attempts surface through the result metrics.
    size_t metricExtra = 0;
    for (const SubtaskMetric& metric : route.subtasks)
      metricExtra += static_cast<size_t>(metric.attempts - 1);
    EXPECT_EQ(route.retries, metricExtra) << workers;
  }
}

}  // namespace
}  // namespace hoyan
