// Tests for the configuration language: lexing, parsing, incremental command
// application (`no` forms), printer round-trip, and the filter/ACL matchers.
#include <gtest/gtest.h>

#include "config/parser.h"
#include "config/printer.h"
#include "config/vendor.h"

namespace hoyan {
namespace {

constexpr std::string_view kSampleConfig = R"(
vendor VendorA
hostname R1
router-id 1.1.1.1
vrf blue
 import-rt 100:1
 export-rt 100:2
 export-policy EXP
!
ip-prefix PL1 index 10 permit 10.0.0.0/24 ge 24 le 32
ip-prefix PL1 index 20 deny 0.0.0.0/0 le 32
ipv6-prefix PL6 index 10 permit 2400:db8::/32
community-list CL1 index 10 permit 100:1
as-path-list AP1 index 10 permit "_123_"
route-policy IMPORT node 10 permit
 match ip-prefix PL1
 match community-list CL1
 apply local-pref 300
 apply community add 100:2
 apply community delete 100:1
 apply as-path prepend 65000 2
route-policy IMPORT node 20 deny
router bgp 65001
 neighbor 10.0.0.2 remote-as 65002
 neighbor 10.0.0.2 import-policy IMPORT
 neighbor 10.0.0.2 export-policy IMPORT
 neighbor 10.0.0.2 next-hop-self
 neighbor 2.2.2.2 remote-as 65001
 neighbor 2.2.2.2 reflect-client
 neighbor 2.2.2.2 add-path-send
 peer-group PG1 import-policy IMPORT
 redistribute static policy IMPORT
 redistribute direct
 aggregate 10.0.0.0/16 as-set
!
static-route 10.9.0.0/24 nexthop 10.0.0.2 preference 5
static-route 10.8.0.0/24 discard
sr-policy SRP1 endpoint 2.2.2.2 color 100 segments 3.3.3.3 4.4.4.4
pbr-policy P1 rule src 10.0.0.0/8 dst 20.0.0.0/8 port 80 nexthop 10.0.0.6
apply pbr P1 interface eth0
acl ACL1 rule deny src 10.0.0.0/8 dst 20.0.0.0/8 port 443
acl ACL1 rule permit
apply acl ACL1 interface eth0
)";

TEST(ConfigParserTest, ParsesFullSampleWithoutErrors) {
  const ParseResult result = parseDeviceConfig(kSampleConfig);
  for (const ParseError& error : result.errors) ADD_FAILURE() << error.str();
  const DeviceConfig& config = result.config;
  EXPECT_EQ(Names::str(config.hostname), "R1");
  EXPECT_EQ(Names::str(config.vendor), "VendorA");
  EXPECT_EQ(config.routerId.str(), "1.1.1.1");
  EXPECT_EQ(config.bgp.asn, 65001u);
  EXPECT_EQ(config.bgp.neighbors.size(), 2u);
  EXPECT_EQ(config.bgp.redistributions.size(), 2u);
  EXPECT_EQ(config.bgp.aggregates.size(), 1u);
  EXPECT_TRUE(config.bgp.aggregates[0].asSet);
  EXPECT_EQ(config.staticRoutes.size(), 2u);
  EXPECT_TRUE(config.staticRoutes[1].discard);
  EXPECT_EQ(config.srPolicies.size(), 1u);
  EXPECT_EQ(config.srPolicies[0].segments.size(), 2u);
  EXPECT_EQ(config.vrfs.size(), 1u);
  // Only IMPORT is defined (the vrf's EXP is referenced, not defined).
  ASSERT_EQ(config.routePolicies.size(), 1u);
}

TEST(ConfigParserTest, PolicyNodesParsedInSequenceOrder) {
  const ParseResult result = parseDeviceConfig(kSampleConfig);
  const RoutePolicy* policy = result.config.findRoutePolicy(Names::id("IMPORT"));
  ASSERT_NE(policy, nullptr);
  ASSERT_EQ(policy->nodes.size(), 2u);
  EXPECT_EQ(policy->nodes[0].sequence, 10u);
  EXPECT_EQ(policy->nodes[0].action, PolicyAction::kPermit);
  EXPECT_EQ(policy->nodes[1].action, PolicyAction::kDeny);
  ASSERT_TRUE(policy->nodes[0].sets.localPref.has_value());
  EXPECT_EQ(*policy->nodes[0].sets.localPref, 300u);
  ASSERT_TRUE(policy->nodes[0].sets.prepend.has_value());
  EXPECT_EQ(policy->nodes[0].sets.prepend->second, 2u);
}

TEST(ConfigParserTest, PrefixListFamilyComesFromCommandKeyword) {
  // The §6.1(b) VSB: ip-prefix vs ipv6-prefix determines the list family.
  const ParseResult result = parseDeviceConfig(
      "ip-prefix V4LIST index 10 permit 10.0.0.0/24\n"
      "ipv6-prefix V6LIST index 10 permit 2400:db8::/32\n"
      // The incident pattern: IPv6 prefixes mistakenly under ip-prefix.
      "ip-prefix OOPS index 10 permit 2400:db8::/32\n");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.config.findPrefixList(Names::id("V4LIST"))->family, IpFamily::kV4);
  EXPECT_EQ(result.config.findPrefixList(Names::id("V6LIST"))->family, IpFamily::kV6);
  EXPECT_EQ(result.config.findPrefixList(Names::id("OOPS"))->family, IpFamily::kV4);
}

TEST(ConfigParserTest, CollectsErrorsInsteadOfThrowing) {
  const ParseResult result = parseDeviceConfig(
      "bogus-command 1\n"
      "router-id not-an-ip\n"
      "hostname R1\n");
  EXPECT_EQ(result.errors.size(), 2u);
  EXPECT_EQ(Names::str(result.config.hostname), "R1");  // Parsing continued.
}

TEST(ConfigParserTest, NoFormsRemoveConfiguration) {
  DeviceConfig config = parseDeviceConfig(kSampleConfig).config;
  const auto errors = applyDeviceCommands(config, nullptr,
                                          "no static-route 10.9.0.0/24 nexthop 10.0.0.2\n"
                                          "no route-policy IMPORT node 20\n"
                                          "router bgp 65001\n"
                                          " no neighbor 10.0.0.2\n"
                                          " no aggregate 10.0.0.0/16\n"
                                          "no sr-policy SRP1\n");
  for (const ParseError& error : errors) ADD_FAILURE() << error.str();
  EXPECT_EQ(config.staticRoutes.size(), 1u);
  EXPECT_EQ(config.findRoutePolicy(Names::id("IMPORT"))->nodes.size(), 1u);
  EXPECT_EQ(config.bgp.neighbors.size(), 1u);
  EXPECT_TRUE(config.bgp.aggregates.empty());
  EXPECT_TRUE(config.srPolicies.empty());
}

TEST(ConfigParserTest, IncrementalPolicyNodeEdit) {
  DeviceConfig config = parseDeviceConfig(kSampleConfig).config;
  // Re-entering a node updates it; adding a new node inserts in order.
  const auto errors = applyDeviceCommands(config, nullptr,
                                          "route-policy IMPORT node 10 permit\n"
                                          " apply local-pref 500\n"
                                          "route-policy IMPORT node 15 deny\n"
                                          " match ip-prefix PL1\n");
  EXPECT_TRUE(errors.empty());
  const RoutePolicy* policy = config.findRoutePolicy(Names::id("IMPORT"));
  ASSERT_EQ(policy->nodes.size(), 3u);
  EXPECT_EQ(policy->nodes[0].sequence, 10u);
  EXPECT_EQ(*policy->nodes[0].sets.localPref, 500u);
  EXPECT_EQ(policy->nodes[1].sequence, 15u);
  EXPECT_EQ(policy->nodes[2].sequence, 20u);
}

TEST(ConfigParserTest, InterfaceBlockEditsTopologyDevice) {
  Device device;
  device.name = Names::id("R9");
  DeviceConfig config;
  const auto errors = applyDeviceCommands(config, &device,
                                          "interface eth0\n"
                                          " address 10.0.0.1/30\n"
                                          " isis enable\n"
                                          " isis cost 25\n"
                                          " vrf blue\n"
                                          "interface eth1\n"
                                          " address 10.0.0.5/30\n"
                                          " shutdown\n");
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(device.interfaces.size(), 2u);
  EXPECT_EQ(device.interfaces[0].address.str(), "10.0.0.1");
  EXPECT_EQ(device.interfaces[0].prefixLength, 30);
  EXPECT_TRUE(device.interfaces[0].isisEnabled);
  EXPECT_EQ(device.interfaces[0].isisCost, 25u);
  EXPECT_EQ(Names::str(device.interfaces[0].vrf), "blue");
  EXPECT_TRUE(device.interfaces[1].shutdown);
}

TEST(ConfigPrinterTest, RoundTripPreservesModel) {
  const ParseResult first = parseDeviceConfig(kSampleConfig);
  ASSERT_TRUE(first.errors.empty());
  const std::string printed = printDeviceConfig(first.config, nullptr);
  const ParseResult second = parseDeviceConfig(printed);
  for (const ParseError& error : second.errors) ADD_FAILURE() << error.str();
  // Spot-check semantic equality of the round-tripped model.
  EXPECT_EQ(second.config.bgp.asn, first.config.bgp.asn);
  EXPECT_EQ(second.config.bgp.neighbors.size(), first.config.bgp.neighbors.size());
  EXPECT_EQ(second.config.staticRoutes.size(), first.config.staticRoutes.size());
  EXPECT_EQ(second.config.routePolicies.size(), first.config.routePolicies.size());
  EXPECT_EQ(second.config.prefixLists.size(), first.config.prefixLists.size());
  EXPECT_EQ(second.config.srPolicies.size(), first.config.srPolicies.size());
  EXPECT_EQ(second.config.pbrPolicies.size(), first.config.pbrPolicies.size());
  EXPECT_EQ(second.config.acls.size(), first.config.acls.size());
  EXPECT_EQ(second.config.vrfs.size(), first.config.vrfs.size());
  const RoutePolicy* policy = second.config.findRoutePolicy(Names::id("IMPORT"));
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->nodes.size(), 2u);
  EXPECT_EQ(*policy->nodes[0].sets.localPref, 300u);
}

// --- filter matchers -----------------------------------------------------------

TEST(PrefixListTest, GeLe) {
  PrefixListEntry entry;
  entry.prefix = *Prefix::parse("10.0.0.0/8");
  entry.ge = 16;
  entry.le = 24;
  EXPECT_FALSE(entry.matches(*Prefix::parse("10.0.0.0/8")));
  EXPECT_TRUE(entry.matches(*Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(entry.matches(*Prefix::parse("10.1.2.0/24")));
  EXPECT_FALSE(entry.matches(*Prefix::parse("10.1.2.128/25")));
  EXPECT_FALSE(entry.matches(*Prefix::parse("11.0.0.0/16")));
}

TEST(PrefixListTest, ExactMatchWhenNoBounds) {
  PrefixListEntry entry;
  entry.prefix = *Prefix::parse("10.0.0.0/24");
  EXPECT_TRUE(entry.matches(*Prefix::parse("10.0.0.0/24")));
  EXPECT_FALSE(entry.matches(*Prefix::parse("10.0.0.0/25")));
}

TEST(PrefixListTest, FirstMatchWins) {
  PrefixList list;
  list.entries.push_back({false, *Prefix::parse("10.0.1.0/24"), 0, 0});
  list.entries.push_back({true, *Prefix::parse("10.0.0.0/16"), 16, 32});
  EXPECT_FALSE(list.permits(*Prefix::parse("10.0.1.0/24")));
  EXPECT_TRUE(list.permits(*Prefix::parse("10.0.2.0/24")));
  EXPECT_FALSE(list.permits(*Prefix::parse("11.0.0.0/24")));  // No match => no.
}

TEST(CommunityListTest, FirstMatchOnMembership) {
  CommunityList list;
  list.entries.push_back({false, Community(666, 0)});
  list.entries.push_back({true, Community(100, 1)});
  CommunitySet good{Community(100, 1)};
  CommunitySet bad{Community(666, 0), Community(100, 1)};
  EXPECT_TRUE(list.permits(good));
  EXPECT_FALSE(list.permits(bad));
  EXPECT_FALSE(list.permits(CommunitySet{}));
}

TEST(AclTest, FirstMatchThenImplicitDeny) {
  AclConfig acl;
  acl.rules.push_back({false, Prefix::parse("10.0.0.0/8"), Prefix::parse("20.0.0.0/8"),
                       uint16_t{443}, {}});
  acl.rules.push_back({true, {}, {}, {}, {}});
  EXPECT_FALSE(acl.permits(*IpAddress::parse("10.1.1.1"), *IpAddress::parse("20.1.1.1"),
                           443, 6));
  EXPECT_TRUE(acl.permits(*IpAddress::parse("10.1.1.1"), *IpAddress::parse("20.1.1.1"),
                          80, 6));
  AclConfig onlyDeny;
  onlyDeny.rules.push_back({false, {}, Prefix::parse("20.0.0.0/8"), {}, {}});
  // Non-matching traffic hits the implicit deny once rules exist.
  EXPECT_FALSE(onlyDeny.permits(*IpAddress::parse("1.1.1.1"),
                                *IpAddress::parse("8.8.8.8"), 80, 6));
}

TEST(VendorProfileTest, ThreeVendorsDivergeOnEveryVsb) {
  const VendorProfile& a = vendorA();
  const VendorProfile& b = vendorB();
  const VendorProfile& c = vendorC();
  // Spot checks on the semantically loaded knobs.
  EXPECT_TRUE(a.igpCostZeroViaSrTunnel);
  EXPECT_FALSE(b.igpCostZeroViaSrTunnel);
  EXPECT_TRUE(c.ipv4PrefixListPermitsAllV6);
  EXPECT_FALSE(a.ipv4PrefixListPermitsAllV6);
  EXPECT_NE(a.ebgpAdminDistance, b.ebgpAdminDistance);
  EXPECT_NE(a.acceptWhenPolicyUndefined, b.acceptWhenPolicyUndefined);
  EXPECT_NE(b.acceptWhenNoNodeMatches, c.acceptWhenNoNodeMatches);
  // Lookup by name falls back to VendorB.
  EXPECT_EQ(&vendorProfile(Names::id("VendorC")), &c);
  EXPECT_EQ(&vendorProfile(Names::id("nonexistent")), &b);
}

TEST(DeviceConfigTest, EffectiveNeighborInheritsPeerGroupPerVsb) {
  DeviceConfig config;
  BgpPeerGroup group;
  group.name = Names::id("PG");
  group.importPolicy = Names::id("GROUP-IN");
  group.nextHopSelf = true;
  config.bgp.peerGroups.push_back(group);
  BgpNeighbor neighbor;
  neighbor.peerAddress = *IpAddress::parse("1.2.3.4");
  neighbor.peerGroup = group.name;
  const BgpNeighbor inherited = config.effectiveNeighbor(neighbor, true);
  EXPECT_EQ(inherited.importPolicy, group.importPolicy);
  EXPECT_TRUE(inherited.nextHopSelf);
  // The "inheriting views" VSB off: peer-group options ignored.
  const BgpNeighbor bare = config.effectiveNeighbor(neighbor, false);
  EXPECT_FALSE(bare.importPolicy.has_value());
  EXPECT_FALSE(bare.nextHopSelf);
}

TEST(TokenizerTest, QuotedTokensKeepSpaces) {
  const auto tokens = tokenizeConfigLine("as-path-list X index 10 permit \".* 123 .*\"");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[5], ".* 123 .*");
}

}  // namespace
}  // namespace hoyan
