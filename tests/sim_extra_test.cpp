// Further route/traffic simulation coverage: add-path, as-set aggregation,
// VRF route-target leaking (+ both leaking VSBs), deny-policy isolation,
// SR tunnels in the data plane, ECMP volume splitting, withdrawals on
// re-advertisement, and EC soundness under anycast.
#include <gtest/gtest.h>

#include "sim/local_routes.h"
#include "sim/route_sim.h"
#include "sim/traffic_sim.h"
#include "test_fixtures.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

const std::vector<Route>* routesAt(const RouteSimResult& result, NameId device,
                                   const std::string& prefix,
                                   NameId vrf = kInvalidName) {
  const DeviceRib* deviceRib = result.ribs.findDevice(device);
  const VrfRib* vrfRib = deviceRib ? deviceRib->findVrf(vrf) : nullptr;
  return vrfRib ? vrfRib->find(*Prefix::parse(prefix)) : nullptr;
}

TEST(AddPathTest, RrWithAddPathAdvertisesEcmpSet) {
  // Two equal routes at the RR (originated at C1 and C2); with add-path on
  // the RR->BR1 session, BR1 receives both.
  SmallWan net = buildSmallWan();
  for (BgpNeighbor& neighbor : net.configs.device(net.rr1).bgp.neighbors)
    neighbor.addPathSend = true;
  const NetworkModel model = net.model();
  InputRoute fromC1;
  fromC1.device = net.c1;
  fromC1.route.prefix = *Prefix::parse("21.0.0.0/16");
  fromC1.route.protocol = Protocol::kBgp;
  fromC1.route.nexthop = net.topology.findDevice(net.c1)->loopback;
  InputRoute fromC2 = fromC1;
  fromC2.device = net.c2;
  fromC2.route.nexthop = net.topology.findDevice(net.c2)->loopback;
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{fromC1, fromC2});
  const auto* onBorder = routesAt(result, net.br1, "21.0.0.0/16");
  ASSERT_NE(onBorder, nullptr);
  EXPECT_GE(onBorder->size(), 2u);  // Both paths delivered via add-path.

  // Without add-path, only the RR's best path arrives.
  SmallWan plain = buildSmallWan();
  const NetworkModel plainModel = plain.model();
  InputRoute planC1 = fromC1;
  planC1.device = plain.c1;
  planC1.route.nexthop = plain.topology.findDevice(plain.c1)->loopback;
  InputRoute planC2 = fromC1;
  planC2.device = plain.c2;
  planC2.route.nexthop = plain.topology.findDevice(plain.c2)->loopback;
  const RouteSimResult plainResult =
      simulateRoutes(plainModel, std::vector<InputRoute>{planC1, planC2});
  const auto* plainBorder = routesAt(plainResult, plain.br1, "21.0.0.0/16");
  ASSERT_NE(plainBorder, nullptr);
  EXPECT_EQ(plainBorder->size(), 1u);
}

TEST(AggregateTest, AsSetCollectsContributorAsns) {
  SmallWan net = buildSmallWan();
  AggregateConfig aggregate;
  aggregate.prefix = *Prefix::parse("100.0.0.0/8");
  aggregate.asSet = true;
  aggregate.summaryOnly = false;
  net.configs.device(net.br1).bgp.aggregates.push_back(aggregate);
  const NetworkModel model = net.model();
  InputRoute a = ispRoute(net, "100.1.0.0/16");
  a.route.attrs.asPath = AsPath({70001});
  InputRoute b = ispRoute(net, "100.2.0.0/16");
  b.route.attrs.asPath = AsPath({70002});
  const RouteSimResult result = simulateRoutes(model, std::vector<InputRoute>{a, b});
  const auto* agg = routesAt(result, net.br1, "100.0.0.0/8");
  ASSERT_NE(agg, nullptr);
  const std::string path = agg->front().attrs.asPath.str();
  // AS_SET containing the contributor ASNs (incl. the ISP AS).
  EXPECT_NE(path.find('{'), std::string::npos) << path;
  EXPECT_NE(path.find("70001"), std::string::npos) << path;
  EXPECT_NE(path.find("70002"), std::string::npos) << path;
  // AS_SET counts as one hop.
  EXPECT_EQ(agg->front().attrs.asPath.length(), 1u);
}

TEST(VrfLeakTest, RouteTargetLeakingBetweenVrfs) {
  SmallWan net = buildSmallWan();
  DeviceConfig& core = net.configs.device(net.c1);
  VrfConfig vrfA;
  vrfA.name = Names::id("lt-A");
  vrfA.exportRouteTargets.push_back((9ULL << 32) | 9);
  core.vrfs.emplace(vrfA.name, vrfA);
  VrfConfig vrfB;
  vrfB.name = Names::id("lt-B");
  vrfB.importRouteTargets.push_back((9ULL << 32) | 9);
  core.vrfs.emplace(vrfB.name, vrfB);
  const NetworkModel model = net.model();
  InputRoute input;
  input.device = net.c1;
  input.route.prefix = *Prefix::parse("22.0.0.0/16");
  input.route.vrf = vrfA.name;
  input.route.protocol = Protocol::kBgp;
  input.route.nexthop = net.topology.findDevice(net.c1)->loopback;
  const RouteSimResult result = simulateRoutes(model, std::vector<InputRoute>{input});
  const auto* leaked = routesAt(result, net.c1, "22.0.0.0/16", vrfB.name);
  ASSERT_NE(leaked, nullptr);
  EXPECT_TRUE(leaked->front().leaked);
}

TEST(VrfLeakTest, GlobalLeakExportPolicyVsb) {
  // A VRF importing rt 0:0 receives global routes; whether its export
  // policy filters them is the Table-5 "VRF export policy" VSB.
  for (const bool vsbApplies : {true, false}) {
    SmallWan net = buildSmallWan(/*borderVendor=*/vendorB().name,
                                 /*coreVendor=*/vsbApplies ? vendorA().name
                                                           : vendorB().name);
    DeviceConfig& core = net.configs.device(net.c1);
    VrfConfig vrf;
    vrf.name = Names::id("lt-G");
    vrf.importRouteTargets.push_back(0);  // Import from global.
    vrf.exportPolicy = Names::id("LEAK-DENY");
    core.vrfs.emplace(vrf.name, vrf);
    RoutePolicy& policy = core.routePolicy(Names::id("LEAK-DENY"));
    PolicyNode deny;
    deny.sequence = 10;
    deny.action = PolicyAction::kDeny;
    policy.upsertNode(deny);
    const NetworkModel model = net.model();
    const RouteSimResult result =
        simulateRoutes(model, std::vector<InputRoute>{ispRoute(net, "100.4.0.0/16")});
    const auto* leaked = routesAt(result, net.c1, "100.4.0.0/16", vrf.name);
    if (vsbApplies) {
      // VendorA applies the export policy to global leaks: filtered out.
      EXPECT_TRUE(leaked == nullptr || leaked->empty());
    } else {
      ASSERT_NE(leaked, nullptr);
      EXPECT_FALSE(leaked->empty());
    }
  }
}

TEST(IsolationTest, DenyPolicyIsolationBlocksRoutesButKeepsSessions) {
  SmallWan net = buildSmallWan();
  net.configs.device(net.br1).vendor = vendorA().name;  // Deny-policy vendor.
  net.configs.device(net.br1).isolated = true;
  const NetworkModel model = net.model();
  // Sessions stay up...
  bool borderSession = false;
  for (const BgpSession& session : model.sessions)
    if (session.local == net.br1) borderSession = true;
  EXPECT_TRUE(borderSession);
  // ...but no routes pass through the isolated device.
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{ispRoute(net, "100.6.0.0/16")});
  EXPECT_EQ(routesAt(result, net.br1, "100.6.0.0/16"), nullptr);
  EXPECT_EQ(routesAt(result, net.c1, "100.6.0.0/16"), nullptr);
}

TEST(WithdrawTest, BetterRouteReplacesAndWorseWithdraws) {
  // When the border's import policy starts denying the route mid-change we
  // can't test dynamically (fixpoint is per run), but withdraw logic shows
  // through competing inputs: a later-better route replaces the earlier
  // advertisement at every device (no duplicates linger).
  SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  InputRoute weak = ispRoute(net, "100.7.0.0/16");
  weak.route.attrs.asPath = AsPath({70001, 70002, 70003});
  InputRoute strong = ispRoute(net, "100.7.0.0/16");
  strong.route.attrs.asPath = AsPath({70009});
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{weak, strong});
  const auto* onCore = routesAt(result, net.c2, "100.7.0.0/16");
  ASSERT_NE(onCore, nullptr);
  // The core sees exactly one path (the RR advertises only its best), and it
  // is the strong one.
  EXPECT_EQ(onCore->size(), 1u);
  EXPECT_EQ(onCore->front().attrs.asPath.originAsn(), 70009u);
}

TEST(RouteEcAnycastTest, CompetingInputsKeepSoundResults) {
  // The same prefix announced at two devices (anycast) must not be merged
  // with a single-origin prefix: verify EC results equal the no-EC oracle.
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  std::vector<InputRoute> inputs;
  // Anycast pair: same prefix at ISP and at C2.
  inputs.push_back(ispRoute(net, "100.8.0.0/16"));
  InputRoute atCore;
  atCore.device = net.c2;
  atCore.route.prefix = *Prefix::parse("100.8.0.0/16");
  atCore.route.protocol = Protocol::kBgp;
  atCore.route.nexthop = net.topology.findDevice(net.c2)->loopback;
  inputs.push_back(atCore);
  // A lookalike single-origin prefix with identical ISP attrs.
  inputs.push_back(ispRoute(net, "100.9.0.0/16"));

  RouteSimOptions withEc;
  RouteSimOptions withoutEc;
  withoutEc.useEquivalenceClasses = false;
  const RouteSimResult fast = simulateRoutes(model, inputs, withEc);
  const RouteSimResult slow = simulateRoutes(model, inputs, withoutEc);
  for (const NameId device : {net.br1, net.c1, net.c2, net.rr1}) {
    for (const char* prefix : {"100.8.0.0/16", "100.9.0.0/16"}) {
      const auto* a = routesAt(fast, device, prefix);
      const auto* b = routesAt(slow, device, prefix);
      ASSERT_EQ(a == nullptr, b == nullptr) << prefix;
      if (!a) continue;
      ASSERT_EQ(a->size(), b->size()) << prefix << " on " << Names::str(device);
      for (size_t i = 0; i < a->size(); ++i) EXPECT_TRUE((*a)[i] == (*b)[i]);
    }
  }
}

class SrTrafficTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = buildSmallWan(/*borderVendor=*/vendorB().name,
                         /*coreVendor=*/vendorA().name);
    // SR policy on C2: traffic toward BR1's loopback tunnels via RR1.
    SrPolicyConfig sr;
    sr.name = Names::id("SR-VIA-RR");
    sr.endpoint = net_.topology.findDevice(net_.br1)->loopback;
    sr.segments.push_back(net_.topology.findDevice(net_.rr1)->loopback);
    net_.configs.device(net_.c2).srPolicies.push_back(sr);
    model_ = std::make_unique<NetworkModel>(net_.model());
    RouteSimOptions options;
    options.includeLocalRoutes = true;
    result_ = simulateRoutes(*model_,
                             std::vector<InputRoute>{ispRoute(net_, "100.1.0.0/16")},
                             options);
    result_.ribs.buildForwardingIndex();
  }

  SmallWan net_;
  std::unique_ptr<NetworkModel> model_;
  RouteSimResult result_;
};

TEST_F(SrTrafficTest, TunnelledFlowFollowsSegmentList) {
  Flow flow;
  flow.ingressDevice = net_.c2;
  flow.src = *IpAddress::parse("20.0.0.1");
  flow.dst = *IpAddress::parse("100.1.2.3");
  flow.volumeBps = 100;
  const FlowPath path = simulateSingleFlow(*model_, result_.ribs, flow);
  EXPECT_EQ(path.outcome, FlowOutcome::kExited);
  // The SR segment steers via RR1 (C2 -> RR1 -> C1 -> BR1) instead of the
  // shortest IGP path (C2 -> C1 -> BR1).
  EXPECT_TRUE(path.usesLink(net_.c2, net_.rr1)) << path.str();
  EXPECT_TRUE(path.usesLink(net_.br1, net_.isp1));
}

TEST_F(SrTrafficTest, RouteMarkedViaSrAndCostZeroed) {
  const DeviceRib* rib = result_.ribs.findDevice(net_.c2);
  const auto* routes = rib->findVrf(kInvalidName)->find(*Prefix::parse("100.1.0.0/16"));
  ASSERT_NE(routes, nullptr);
  EXPECT_TRUE(routes->front().viaSrTunnel);
  EXPECT_EQ(routes->front().igpCost, 0u);  // VendorA zeroes SR-reached costs.
}

TEST(EcmpVolumeTest, SplitsConserveVolume) {
  // DCGW-style ingress with two equal uplinks: volume halves per branch and
  // downstream sums equal the input volume.
  SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  NetworkRibs ribs;
  installLocalRoutes(model, ribs);
  // Static ECMP on RR1: two routes toward C1 and C2 loopback nexthops.
  ribs.device(net.rr1).vrf(kInvalidName).routesFor(*Prefix::parse("23.0.0.0/16")) = {};
  Route viaC1;
  viaC1.prefix = *Prefix::parse("23.0.0.0/16");
  viaC1.protocol = Protocol::kStatic;
  viaC1.adminDistance = 1;
  viaC1.nexthop = net.topology.findDevice(net.c1)->loopback;
  viaC1.nexthopDevice = net.c1;
  viaC1.type = RouteType::kBest;
  Route viaC2 = viaC1;
  viaC2.nexthop = net.topology.findDevice(net.c2)->loopback;
  viaC2.nexthopDevice = net.c2;
  viaC2.type = RouteType::kEcmp;
  auto& list = ribs.device(net.rr1).vrf(kInvalidName).routesFor(*Prefix::parse("23.0.0.0/16"));
  list = {viaC1, viaC2};
  ribs.buildForwardingIndex();
  Flow flow;
  flow.ingressDevice = net.rr1;
  flow.src = *IpAddress::parse("20.0.0.1");
  flow.dst = *IpAddress::parse("23.0.0.9");
  flow.volumeBps = 1000;
  TrafficSimOptions options;
  options.useEquivalenceClasses = false;
  const TrafficSimResult result =
      simulateTraffic(model, ribs, std::vector<Flow>{flow}, options);
  EXPECT_DOUBLE_EQ(result.linkLoads.get(net.rr1, net.c1), 500.0);
  EXPECT_DOUBLE_EQ(result.linkLoads.get(net.rr1, net.c2), 500.0);
}

}  // namespace
}  // namespace hoyan
