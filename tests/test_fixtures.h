// Shared hand-built fixtures for protocol/simulation tests: a tiny WAN with
// two core routers, a route reflector, a border, and an external ISP peer.
#pragma once

#include <string>

#include "config/device_config.h"
#include "config/vendor.h"
#include "proto/network_model.h"
#include "topo/topology.h"

namespace hoyan::testing {

// Builds a small network:
//
//   ISP1 --- BR1 --- C1 --- C2
//                     \    /
//                      RR1
//
// All internal devices are in AS 64512 with iBGP to RR1 (clients), IS-IS on
// internal links; BR1 has an eBGP session to ISP1 (AS 65001). Every internal
// session carries a permit-all PASS policy.
struct SmallWan {
  Topology topology;
  NetworkConfig configs;
  NameId isp1, br1, c1, c2, rr1;
  IpAddress ispLinkAddr;     // ISP1's address on the BR1 link.
  IpAddress borderLinkAddr;  // BR1's address on the ISP1 link.

  NetworkModel model() const { return NetworkModel::build(topology, configs); }
};

inline SmallWan buildSmallWan(NameId borderVendor = vendorB().name,
                              NameId coreVendor = vendorB().name) {
  SmallWan net;
  const NameId wanDomain = Names::id("test-igp");
  uint32_t loopback = (9u << 24) | 1;  // 9.0.0.x loopbacks.
  uint32_t linkBase = (172u << 24) | (20u << 16);

  const auto addDevice = [&](const std::string& name, DeviceRole role, NameId domain,
                             NameId vendor, Asn asn) {
    Device device;
    device.name = Names::id(name);
    device.role = role;
    device.loopback = IpAddress::v4(loopback++);
    device.igpDomain = domain;
    net.topology.addDevice(device);
    DeviceConfig config;
    config.hostname = device.name;
    config.vendor = vendor;
    config.routerId = device.loopback;
    config.bgp.asn = asn;
    net.configs.mutableDevices().emplace(device.name, std::move(config));
    return device.name;
  };
  const auto link = [&](NameId a, NameId b, uint32_t cost, bool isis) {
    Device* deviceA = net.topology.findDevice(a);
    Device* deviceB = net.topology.findDevice(b);
    const uint32_t base = linkBase;
    linkBase += 4;
    Interface itfA;
    itfA.name = Names::id(Names::str(a) + ":e" + std::to_string(deviceA->interfaces.size()));
    itfA.address = IpAddress::v4(base + 1);
    itfA.prefixLength = 30;
    itfA.isisEnabled = isis;
    itfA.isisCost = cost;
    deviceA->interfaces.push_back(itfA);
    Interface itfB;
    itfB.name = Names::id(Names::str(b) + ":e" + std::to_string(deviceB->interfaces.size()));
    itfB.address = IpAddress::v4(base + 2);
    itfB.prefixLength = 30;
    itfB.isisEnabled = isis;
    itfB.isisCost = cost;
    deviceB->interfaces.push_back(itfB);
    net.topology.addLink(a, itfA.name, b, itfB.name);
    return std::pair{itfA.address, itfB.address};
  };
  const auto pass = [&](NameId device) {
    const NameId name = Names::id("PASS");
    RoutePolicy& policy = net.configs.device(device).routePolicy(name);
    if (policy.nodes.empty()) {
      PolicyNode node;
      node.sequence = 10;
      node.action = PolicyAction::kPermit;
      policy.upsertNode(node);
    }
    return name;
  };
  const auto ibgp = [&](NameId a, NameId b, bool bIsClient) {
    BgpNeighbor toB;
    toB.peerAddress = net.topology.findDevice(b)->loopback;
    toB.remoteAs = 64512;
    toB.importPolicy = pass(a);
    toB.exportPolicy = pass(a);
    toB.routeReflectorClient = bIsClient;
    net.configs.device(a).bgp.neighbors.push_back(toB);
    BgpNeighbor toA;
    toA.peerAddress = net.topology.findDevice(a)->loopback;
    toA.remoteAs = 64512;
    toA.importPolicy = pass(b);
    toA.exportPolicy = pass(b);
    net.configs.device(b).bgp.neighbors.push_back(toA);
  };

  net.rr1 = addDevice("t-RR1", DeviceRole::kRouteReflector, wanDomain,
                      vendorB().name, 64512);
  net.c1 = addDevice("t-C1", DeviceRole::kCore, wanDomain, coreVendor, 64512);
  net.c2 = addDevice("t-C2", DeviceRole::kCore, wanDomain, coreVendor, 64512);
  net.br1 = addDevice("t-BR1", DeviceRole::kBorder, wanDomain, borderVendor, 64512);
  net.isp1 = addDevice("t-ISP1", DeviceRole::kExternalPeer, kInvalidName,
                       vendorB().name, 65001);

  link(net.c1, net.c2, 10, true);
  link(net.c1, net.rr1, 10, true);
  link(net.c2, net.rr1, 10, true);
  link(net.br1, net.c1, 10, true);
  const auto [borderAddr, ispAddr] = link(net.br1, net.isp1, 10, false);
  net.borderLinkAddr = borderAddr;
  net.ispLinkAddr = ispAddr;

  ibgp(net.rr1, net.c1, true);
  ibgp(net.rr1, net.c2, true);
  ibgp(net.rr1, net.br1, true);

  // eBGP BR1 <-> ISP1, with next-hop-self on BR1's iBGP sessions.
  DeviceConfig& border = net.configs.device(net.br1);
  BgpNeighbor toIsp;
  toIsp.peerAddress = ispAddr;
  toIsp.remoteAs = 65001;
  border.bgp.neighbors.push_back(toIsp);
  for (BgpNeighbor& neighbor : border.bgp.neighbors)
    if (neighbor.remoteAs == 64512) neighbor.nextHopSelf = true;
  DeviceConfig& isp = net.configs.device(net.isp1);
  BgpNeighbor toBorder;
  toBorder.peerAddress = borderAddr;
  toBorder.remoteAs = 64512;
  isp.bgp.neighbors.push_back(toBorder);
  return net;
}

// An input route announced by ISP1 (as if learned from its upstreams).
inline InputRoute ispRoute(const SmallWan& net, const std::string& prefix,
                           uint32_t med = 0) {
  InputRoute input;
  input.device = net.isp1;
  input.route.prefix = *Prefix::parse(prefix);
  input.route.protocol = Protocol::kBgp;
  input.route.attrs.origin = BgpOrigin::kIgp;
  input.route.attrs.med = med;
  input.route.nexthop = net.topology.findDevice(net.isp1)->loopback;
  input.route.nexthopDevice = net.isp1;
  return input;
}

}  // namespace hoyan::testing
