// End-to-end tests of route and traffic simulation on the hand-built small
// WAN and on generated networks: propagation, policies, RR behaviour,
// aggregates, equivalence classes, forwarding, ECMP, loops, ACL/PBR/SR.
#include <gtest/gtest.h>

#include "config/parser.h"
#include "config/printer.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "sim/local_routes.h"
#include "sim/route_sim.h"
#include "sim/traffic_sim.h"
#include "test_fixtures.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

// Finds the best route for `prefix` on `device` (global VRF), or nullptr.
const Route* bestRoute(const NetworkRibs& ribs, NameId device,
                       const std::string& prefix) {
  const DeviceRib* deviceRib = ribs.findDevice(device);
  if (!deviceRib) return nullptr;
  const VrfRib* vrf = deviceRib->findVrf(kInvalidName);
  if (!vrf) return nullptr;
  const auto* routes = vrf->find(*Prefix::parse(prefix));
  if (!routes) return nullptr;
  for (const Route& route : *routes)
    if (route.type == RouteType::kBest) return &route;
  return nullptr;
}

TEST(RouteSimTest, IspRoutePropagatesToAllInternalRouters) {
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  const std::vector<InputRoute> inputs = {ispRoute(net, "100.1.0.0/16")};
  const RouteSimResult result = simulateRoutes(model, inputs);
  EXPECT_TRUE(result.stats.converged);
  // Every internal router should have the route.
  for (const NameId device : {net.br1, net.rr1, net.c1, net.c2}) {
    const Route* route = bestRoute(result.ribs, device, "100.1.0.0/16");
    ASSERT_NE(route, nullptr) << Names::str(device);
    EXPECT_EQ(route->protocol, Protocol::kBgp);
    // The ISP ASN was prepended on the eBGP hop.
    EXPECT_EQ(route->attrs.asPath.firstAsn(), 65001u);
  }
  // BR1 learned it over eBGP; C1 over iBGP (reflected by RR1).
  EXPECT_TRUE(bestRoute(result.ribs, net.br1, "100.1.0.0/16")->ebgpLearned);
  EXPECT_FALSE(bestRoute(result.ribs, net.c1, "100.1.0.0/16")->ebgpLearned);
}

TEST(RouteSimTest, NextHopSelfRewritesNexthopTowardIbgp) {
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{ispRoute(net, "100.1.0.0/16")});
  const Route* onCore = bestRoute(result.ribs, net.c1, "100.1.0.0/16");
  ASSERT_NE(onCore, nullptr);
  // BR1 set next-hop-self, so C1's nexthop is BR1's loopback.
  EXPECT_EQ(onCore->nexthop, net.topology.findDevice(net.br1)->loopback);
  EXPECT_EQ(onCore->nexthopDevice, net.br1);
  EXPECT_GT(onCore->igpCost, 0u);
}

TEST(RouteSimTest, AsLoopPreventionDropsOwnAsn) {
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  InputRoute poisoned = ispRoute(net, "100.2.0.0/16");
  poisoned.route.attrs.asPath = AsPath({70000, 64512});  // Contains our ASN.
  const RouteSimResult result = simulateRoutes(model, std::vector<InputRoute>{poisoned});
  EXPECT_EQ(bestRoute(result.ribs, net.br1, "100.2.0.0/16"), nullptr);
}

TEST(RouteSimTest, ImportPolicyDenyBlocksRoute) {
  SmallWan net = buildSmallWan();
  // BR1 denies routes with community 666:0 from the ISP.
  DeviceConfig& border = net.configs.device(net.br1);
  const NameId listName = Names::id("BLOCKLIST");
  CommunityList list;
  list.name = listName;
  list.entries.push_back({true, Community(666, 0)});
  border.communityLists.emplace(listName, list);
  const NameId policyName = Names::id("ISP-IN");
  RoutePolicy& policy = border.routePolicy(policyName);
  PolicyNode deny;
  deny.sequence = 10;
  deny.action = PolicyAction::kDeny;
  deny.match.communityList = listName;
  policy.upsertNode(deny);
  PolicyNode permit;
  permit.sequence = 20;
  permit.action = PolicyAction::kPermit;
  policy.upsertNode(permit);
  for (BgpNeighbor& neighbor : border.bgp.neighbors)
    if (neighbor.remoteAs == 65001) neighbor.importPolicy = policyName;

  const NetworkModel model = net.model();
  InputRoute blocked = ispRoute(net, "100.3.0.0/16");
  blocked.route.attrs.communities.insert(Community(666, 0));
  InputRoute allowed = ispRoute(net, "100.4.0.0/16");
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{blocked, allowed});
  EXPECT_EQ(bestRoute(result.ribs, net.br1, "100.3.0.0/16"), nullptr);
  ASSERT_NE(bestRoute(result.ribs, net.br1, "100.4.0.0/16"), nullptr);
}

TEST(RouteSimTest, ImportPolicyRewritesAttributes) {
  SmallWan net = buildSmallWan();
  DeviceConfig& border = net.configs.device(net.br1);
  const NameId policyName = Names::id("TAG");
  RoutePolicy& policy = border.routePolicy(policyName);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.sets.localPref = 300;
  node.sets.addCommunities.push_back(Community(100, 9));
  policy.upsertNode(node);
  for (BgpNeighbor& neighbor : border.bgp.neighbors)
    if (neighbor.remoteAs == 65001) neighbor.importPolicy = policyName;
  const NetworkModel model = net.model();
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{ispRoute(net, "100.5.0.0/16")});
  const Route* onBorder = bestRoute(result.ribs, net.br1, "100.5.0.0/16");
  ASSERT_NE(onBorder, nullptr);
  EXPECT_EQ(onBorder->attrs.localPref, 300u);
  EXPECT_TRUE(onBorder->attrs.communities.contains(Community(100, 9)));
  // localPref propagates over iBGP to the cores.
  const Route* onCore = bestRoute(result.ribs, net.c2, "100.5.0.0/16");
  ASSERT_NE(onCore, nullptr);
  EXPECT_EQ(onCore->attrs.localPref, 300u);
}

TEST(RouteSimTest, NonClientIbgpRouteIsNotReflectedBack) {
  // A route originated at C1 (client) reaches BR1 via RR reflection; a route
  // originated at the RR itself reaches clients directly.
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  InputRoute fromCore;
  fromCore.device = net.c1;
  fromCore.route.prefix = *Prefix::parse("20.1.0.0/16");
  fromCore.route.protocol = Protocol::kBgp;
  fromCore.route.nexthop = net.topology.findDevice(net.c1)->loopback;
  fromCore.route.nexthopDevice = net.c1;
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{fromCore});
  EXPECT_NE(bestRoute(result.ribs, net.rr1, "20.1.0.0/16"), nullptr);
  EXPECT_NE(bestRoute(result.ribs, net.br1, "20.1.0.0/16"), nullptr);
  EXPECT_NE(bestRoute(result.ribs, net.c2, "20.1.0.0/16"), nullptr);
}

TEST(RouteSimTest, AggregateOriginatedFromContributor) {
  SmallWan net = buildSmallWan();
  DeviceConfig& core = net.configs.device(net.c1);
  AggregateConfig aggregate;
  aggregate.prefix = *Prefix::parse("20.0.0.0/8");
  aggregate.summaryOnly = true;
  core.bgp.aggregates.push_back(aggregate);
  const NetworkModel model = net.model();
  InputRoute contributor;
  contributor.device = net.c1;
  contributor.route.prefix = *Prefix::parse("20.5.0.0/16");
  contributor.route.protocol = Protocol::kBgp;
  contributor.route.nexthop = net.topology.findDevice(net.c1)->loopback;
  contributor.route.nexthopDevice = net.c1;
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{contributor});
  // The aggregate exists on C1 and propagates to others.
  const Route* aggOnC1 = bestRoute(result.ribs, net.c1, "20.0.0.0/8");
  ASSERT_NE(aggOnC1, nullptr);
  EXPECT_EQ(aggOnC1->protocol, Protocol::kAggregate);
  EXPECT_NE(bestRoute(result.ribs, net.c2, "20.0.0.0/8"), nullptr);
  // Summary-only: the contributor is suppressed on other routers.
  EXPECT_EQ(bestRoute(result.ribs, net.c2, "20.5.0.0/16"), nullptr);
  // ...but still present locally on C1.
  EXPECT_NE(bestRoute(result.ribs, net.c1, "20.5.0.0/16"), nullptr);
}

TEST(RouteSimTest, EcmpFromTwoIsps) {
  // Add a second ISP on BR1 announcing the same prefix: BR1 sees two eBGP
  // paths; with equal attributes both become forwarding entries.
  SmallWan net = buildSmallWan();
  // Second external peer.
  Device isp2;
  isp2.name = Names::id("t-ISP2");
  isp2.role = DeviceRole::kExternalPeer;
  isp2.loopback = *IpAddress::parse("9.0.0.99");
  net.topology.addDevice(isp2);
  Device* border = net.topology.findDevice(net.br1);
  Interface borderItf;
  borderItf.name = Names::id("t-BR1:e9");
  borderItf.address = *IpAddress::parse("172.21.0.1");
  borderItf.prefixLength = 30;
  border->interfaces.push_back(borderItf);
  Device* isp2Device = net.topology.findDevice(isp2.name);
  Interface ispItf;
  ispItf.name = Names::id("t-ISP2:e0");
  ispItf.address = *IpAddress::parse("172.21.0.2");
  ispItf.prefixLength = 30;
  isp2Device->interfaces.push_back(ispItf);
  net.topology.addLink(net.br1, borderItf.name, isp2.name, ispItf.name);
  DeviceConfig isp2Config;
  isp2Config.hostname = isp2.name;
  isp2Config.vendor = vendorB().name;
  isp2Config.routerId = isp2.loopback;
  isp2Config.bgp.asn = 65001;  // Same AS as ISP1 so MED/ECMP compare applies.
  BgpNeighbor toBorder;
  toBorder.peerAddress = borderItf.address;
  toBorder.remoteAs = 64512;
  isp2Config.bgp.neighbors.push_back(toBorder);
  net.configs.mutableDevices().emplace(isp2.name, std::move(isp2Config));
  BgpNeighbor toIsp2;
  toIsp2.peerAddress = ispItf.address;
  toIsp2.remoteAs = 65001;
  net.configs.device(net.br1).bgp.neighbors.push_back(toIsp2);

  const NetworkModel model = net.model();
  InputRoute fromIsp1 = ispRoute(net, "100.9.0.0/16");
  InputRoute fromIsp2 = fromIsp1;
  fromIsp2.device = isp2.name;
  fromIsp2.route.nexthop = isp2.loopback;
  fromIsp2.route.nexthopDevice = isp2.name;
  const RouteSimResult result =
      simulateRoutes(model, std::vector<InputRoute>{fromIsp1, fromIsp2});
  const DeviceRib* borderRib = result.ribs.findDevice(net.br1);
  ASSERT_NE(borderRib, nullptr);
  const auto* routes = borderRib->findVrf(kInvalidName)->find(*Prefix::parse("100.9.0.0/16"));
  ASSERT_NE(routes, nullptr);
  size_t forwarding = 0;
  for (const Route& route : *routes)
    if (route.type != RouteType::kAlternate) ++forwarding;
  EXPECT_EQ(forwarding, 2u);
}

TEST(RouteSimTest, MemoryBudgetTriggersOutOfMemory) {
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  std::vector<InputRoute> inputs;
  for (int i = 0; i < 50; ++i) {
    InputRoute input = ispRoute(net, "100." + std::to_string(i) + ".0.0/16");
    input.route.attrs.med = static_cast<uint32_t>(i);  // Distinct ECs.
    inputs.push_back(input);
  }
  RouteSimOptions options;
  options.memoryBudgetRoutes = 10;
  const RouteSimResult result = simulateRoutes(model, inputs, options);
  EXPECT_TRUE(result.stats.outOfMemory);
  EXPECT_FALSE(result.stats.converged);
}

TEST(LocalRoutesTest, DirectStaticAndIsisInstalled) {
  SmallWan net = buildSmallWan();
  StaticRouteConfig staticRoute;
  staticRoute.prefix = *Prefix::parse("50.0.0.0/8");
  staticRoute.nexthop = net.topology.findDevice(net.c2)->loopback;
  net.configs.device(net.c1).staticRoutes.push_back(staticRoute);
  const NetworkModel model = net.model();
  NetworkRibs ribs;
  installLocalRoutes(model, ribs);
  // C1 has: loopback direct, interface subnets + /32s, static, IS-IS
  // loopbacks of RR1/C2/BR1.
  const Route* isisRoute =
      bestRoute(ribs, net.c1, net.topology.findDevice(net.c2)->loopback.str() + "/32");
  ASSERT_NE(isisRoute, nullptr);
  EXPECT_EQ(isisRoute->protocol, Protocol::kIsis);
  EXPECT_EQ(isisRoute->igpCost, 10u);
  const Route* installedStatic = bestRoute(ribs, net.c1, "50.0.0.0/8");
  ASSERT_NE(installedStatic, nullptr);
  EXPECT_EQ(installedStatic->protocol, Protocol::kStatic);
  EXPECT_EQ(installedStatic->nexthopDevice, net.c2);
}

TEST(RouteEcTest, SameAttrsSamePolicyFateCollapse) {
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  std::vector<InputRoute> inputs;
  // Four prefixes with identical attributes (one EC) + one different.
  for (int i = 0; i < 4; ++i)
    inputs.push_back(ispRoute(net, "100.10." + std::to_string(i) + ".0/24"));
  InputRoute different = ispRoute(net, "100.10.9.0/24");
  different.route.attrs.med = 55;
  inputs.push_back(different);
  EcStats stats;
  const EcPlan plan = buildRouteEcs(model, inputs, &stats);
  EXPECT_EQ(stats.inputRoutes, 5u);
  EXPECT_EQ(stats.classes, 2u);
  EXPECT_DOUBLE_EQ(stats.reductionFactor(), 2.5);
  // Simulation with ECs must equal simulation without.
  RouteSimOptions withEc;
  withEc.useEquivalenceClasses = true;
  RouteSimOptions withoutEc;
  withoutEc.useEquivalenceClasses = false;
  const RouteSimResult fast = simulateRoutes(model, inputs, withEc);
  const RouteSimResult slow = simulateRoutes(model, inputs, withoutEc);
  EXPECT_EQ(fast.ribs.routeCount(), slow.ribs.routeCount());
  for (const NameId device : {net.br1, net.c1, net.c2, net.rr1}) {
    for (int i = 0; i < 4; ++i) {
      const std::string prefix = "100.10." + std::to_string(i) + ".0/24";
      const Route* a = bestRoute(fast.ribs, device, prefix);
      const Route* b = bestRoute(slow.ribs, device, prefix);
      ASSERT_NE(a, nullptr) << prefix;
      ASSERT_NE(b, nullptr) << prefix;
      EXPECT_TRUE(*a == *b) << prefix << " on " << Names::str(device);
    }
  }
}

// --- traffic simulation -------------------------------------------------------

class TrafficTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = buildSmallWan();
    model_ = std::make_unique<NetworkModel>(net_.model());
    RouteSimOptions options;
    options.includeLocalRoutes = true;
    result_ = simulateRoutes(*model_, std::vector<InputRoute>{ispRoute(net_, "100.1.0.0/16")},
                             options);
    result_.ribs.buildForwardingIndex();
  }

  Flow makeFlow(NameId ingress, const std::string& dst, double volume = 1000) {
    Flow flow;
    flow.ingressDevice = ingress;
    flow.src = *IpAddress::parse("20.0.0.1");
    flow.dst = *IpAddress::parse(dst);
    flow.dstPort = 80;
    flow.volumeBps = volume;
    return flow;
  }

  SmallWan net_;
  std::unique_ptr<NetworkModel> model_;
  RouteSimResult result_;
};

TEST_F(TrafficTest, FlowFollowsBgpRouteAndExits) {
  const FlowPath path = simulateSingleFlow(*model_, result_.ribs,
                                           makeFlow(net_.c2, "100.1.2.3"));
  EXPECT_EQ(path.outcome, FlowOutcome::kExited);
  // C2 -> (IGP toward BR1 loopback) -> ... -> BR1 -> ISP1.
  EXPECT_TRUE(path.usesLink(net_.br1, net_.isp1));
}

TEST_F(TrafficTest, UnroutedDestinationBlackholes) {
  const FlowPath path = simulateSingleFlow(*model_, result_.ribs,
                                           makeFlow(net_.c2, "203.0.113.7"));
  EXPECT_EQ(path.outcome, FlowOutcome::kBlackholed);
}

TEST_F(TrafficTest, LinkLoadsAccumulateVolume) {
  std::vector<Flow> flows = {makeFlow(net_.c2, "100.1.2.3", 1000),
                             makeFlow(net_.c2, "100.1.9.9", 500)};
  TrafficSimOptions options;
  options.useEquivalenceClasses = false;
  const TrafficSimResult result = simulateTraffic(*model_, result_.ribs, flows, options);
  EXPECT_DOUBLE_EQ(result.linkLoads.get(net_.br1, net_.isp1), 1500.0);
  EXPECT_EQ(result.stats.exited, 2u);
}

TEST_F(TrafficTest, FlowEcsCollapseSameDestinationAtom) {
  std::vector<Flow> flows;
  for (int i = 0; i < 40; ++i) {
    Flow flow = makeFlow(net_.c2, "100.1.2." + std::to_string(i + 1), 100);
    flow.srcPort = static_cast<uint16_t>(1000 + i);
    flows.push_back(flow);
  }
  FlowEcStats stats;
  const FlowEcPlan plan = buildFlowEcs(*model_, result_.ribs, flows, &stats);
  EXPECT_EQ(stats.inputFlows, 40u);
  EXPECT_EQ(stats.classes, 1u);  // All in the /16 atom from the same ingress.
  EXPECT_DOUBLE_EQ(plan.representatives[0].volumeBps, 4000.0);
  // Link loads with and without ECs agree.
  TrafficSimOptions withEc;
  withEc.useEquivalenceClasses = true;
  TrafficSimOptions withoutEc;
  withoutEc.useEquivalenceClasses = false;
  const TrafficSimResult a = simulateTraffic(*model_, result_.ribs, flows, withEc);
  const TrafficSimResult b = simulateTraffic(*model_, result_.ribs, flows, withoutEc);
  EXPECT_NEAR(a.linkLoads.get(net_.br1, net_.isp1),
              b.linkLoads.get(net_.br1, net_.isp1), 1e-6);
}

TEST_F(TrafficTest, AclDropsMatchingFlow) {
  // Deny port-443 traffic arriving at C1 from C2.
  DeviceConfig& core = model_->configs.device(net_.c1);
  AclConfig acl;
  acl.name = Names::id("BLOCK443");
  acl.rules.push_back({false, {}, {}, uint16_t{443}, {}});
  acl.rules.push_back({true, {}, {}, {}, {}});
  // Find C1's interface facing C2.
  for (const Adjacency& adj : model_->topology.adjacenciesOf(net_.c1))
    if (adj.neighbor == net_.c2) acl.appliedInterfaces.push_back(adj.localInterface);
  core.acls.emplace(acl.name, acl);
  Flow flow = makeFlow(net_.c2, "100.1.2.3");
  flow.dstPort = 443;
  const FlowPath denied = simulateSingleFlow(*model_, result_.ribs, flow);
  EXPECT_EQ(denied.outcome, FlowOutcome::kDeniedAcl);
  flow.dstPort = 80;
  const FlowPath allowed = simulateSingleFlow(*model_, result_.ribs, flow);
  EXPECT_EQ(allowed.outcome, FlowOutcome::kExited);
}

TEST_F(TrafficTest, PbrOverridesLpm) {
  // PBR on C1 (in-interface from C2) steers port-8080 traffic to RR1 instead
  // of toward BR1.
  DeviceConfig& core = model_->configs.device(net_.c1);
  PbrPolicy pbr;
  pbr.name = Names::id("STEER");
  PbrRule rule;
  rule.dstPort = 8080;
  rule.setNexthop = model_->topology.findDevice(net_.rr1)->loopback;
  pbr.rules.push_back(rule);
  for (const Adjacency& adj : model_->topology.adjacenciesOf(net_.c1))
    if (adj.neighbor == net_.c2) pbr.appliedInterfaces.push_back(adj.localInterface);
  core.pbrPolicies.emplace(pbr.name, pbr);
  Flow flow = makeFlow(net_.c2, "100.1.2.3");
  flow.dstPort = 8080;
  const FlowPath path = simulateSingleFlow(*model_, result_.ribs, flow);
  EXPECT_TRUE(path.usesLink(net_.c1, net_.rr1));
}

TEST(TrafficLoopTest, StaticRouteLoopDetected) {
  SmallWan net = buildSmallWan();
  // C1 and C2 point a prefix at each other via statics.
  StaticRouteConfig toC2;
  toC2.prefix = *Prefix::parse("66.0.0.0/8");
  toC2.nexthop = net.topology.findDevice(net.c2)->loopback;
  net.configs.device(net.c1).staticRoutes.push_back(toC2);
  StaticRouteConfig toC1;
  toC1.prefix = *Prefix::parse("66.0.0.0/8");
  toC1.nexthop = net.topology.findDevice(net.c1)->loopback;
  net.configs.device(net.c2).staticRoutes.push_back(toC1);
  const NetworkModel model = net.model();
  NetworkRibs ribs;
  installLocalRoutes(model, ribs);
  ribs.buildForwardingIndex();
  Flow flow;
  flow.ingressDevice = net.c1;
  flow.src = *IpAddress::parse("20.0.0.1");
  flow.dst = *IpAddress::parse("66.1.2.3");
  flow.volumeBps = 100;
  const FlowPath path = simulateSingleFlow(model, ribs, flow);
  EXPECT_EQ(path.outcome, FlowOutcome::kLooped);
}

// --- generated WAN end-to-end ----------------------------------------------------

TEST(GeneratedWanTest, ModelBuildsAndSimulationConverges) {
  WanSpec spec;
  spec.regions = 3;
  const GeneratedWan wan = generateWan(spec);
  const NetworkModel model = wan.buildModel();
  EXPECT_TRUE(model.sessionProblems.empty())
      << (model.sessionProblems.empty() ? "" : model.sessionProblems.front());
  EXPECT_GT(model.sessions.size(), 0u);

  WorkloadSpec workload;
  workload.prefixesPerIsp = 16;
  workload.prefixesPerDc = 8;
  workload.v6Share = 0;
  const std::vector<InputRoute> inputs = generateInputRoutes(wan, workload);
  ASSERT_FALSE(inputs.empty());
  RouteSimOptions options;
  options.includeLocalRoutes = true;
  RouteSimResult result = simulateRoutes(model, inputs, options);
  EXPECT_TRUE(result.stats.converged);
  // ISP routes must reach remote regions' cores.
  result.ribs.buildForwardingIndex();
  const Route* remote = bestRoute(result.ribs, wan.cores.back(), "100.0.0.0/24");
  ASSERT_NE(remote, nullptr);

  // Flows route end to end.
  const std::vector<Flow> flows = generateFlows(wan, workload, 500);
  const TrafficSimResult traffic = simulateTraffic(model, result.ribs, flows);
  EXPECT_EQ(traffic.stats.inputFlows, 500u);
  EXPECT_GT(traffic.stats.ec.reductionFactor(), 1.5);
  // The overwhelming majority of generated flows should be deliverable.
  EXPECT_GT(traffic.stats.delivered + traffic.stats.exited,
            traffic.stats.simulatedFlows * 8 / 10);
}

TEST(GeneratedWanTest, ConfigTextRoundTripsThroughParser) {
  WanSpec spec;
  spec.regions = 2;
  const GeneratedWan wan = generateWan(spec);
  for (const auto& [name, config] : wan.configs.devices()) {
    const std::string text = printDeviceConfig(config, wan.topology.findDevice(name));
    const ParseResult reparsed = parseDeviceConfig(text);
    for (const ParseError& error : reparsed.errors)
      ADD_FAILURE() << Names::str(name) << ": " << error.str();
    EXPECT_EQ(reparsed.config.bgp.asn, config.bgp.asn);
    EXPECT_EQ(reparsed.config.bgp.neighbors.size(), config.bgp.neighbors.size());
    EXPECT_EQ(reparsed.config.routePolicies.size(), config.routePolicies.size());
  }
}

}  // namespace
}  // namespace hoyan
