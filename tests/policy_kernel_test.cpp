// Tests for the cold-run policy-evaluation kernel (proto/policy_kernel.h):
// the process-wide compiled-regex cache, attribute interning, per-class
// memoization (byte-identity against the plain evaluator), lazy reason
// traces, bad-regex surfacing, and the AsPath render memo.
#include <gtest/gtest.h>

#include "config/vendor.h"
#include "net/as_path.h"
#include "proto/policy_eval.h"
#include "proto/policy_kernel.h"

namespace hoyan {
namespace {

// --- AsPathRegexCache --------------------------------------------------------

TEST(AsPathRegexCacheTest, CompilesOncePerPattern) {
  AsPathRegexCache cache;
  const auto first = cache.get("_65001_");
  ASSERT_TRUE(first);
  EXPECT_TRUE(first->valid);
  // Same pattern: the exact same immutable entry, not a recompilation.
  EXPECT_EQ(cache.get("_65001_").get(), first.get());
  EXPECT_EQ(cache.size(), 1u);
  cache.get("^100");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(AsPathRegexCacheTest, InvalidPatternCachesAnInvalidEntry) {
  AsPathRegexCache cache;
  const auto bad = cache.get("(unclosed");
  ASSERT_TRUE(bad);
  EXPECT_FALSE(bad->valid);
  EXPECT_FALSE(bad->error.empty());
  // Cached, not retried: same entry on the next lookup.
  EXPECT_EQ(cache.get("(unclosed").get(), bad.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AsPathRegexCacheTest, TranslatesUnderscoreBoundaries) {
  AsPathRegexCache cache;
  const auto compiled = cache.get("_123_");
  ASSERT_TRUE(compiled->valid);
  const AsPath path({100, 123, 300});
  EXPECT_TRUE(std::regex_search(path.str(), compiled->regex));
  // `_23_` must not match inside 123 (boundary semantics).
  const auto inner = cache.get("_23_");
  EXPECT_FALSE(std::regex_search(path.str(), inner->regex));
}

// --- AttrInternTable ---------------------------------------------------------

TEST(AttrInternTableTest, EqualAttributesShareOneClass) {
  AttrInternTable table;
  BgpAttributes a;
  a.localPref = 200;
  a.communities.insert(Community(100, 1));
  a.asPath = AsPath({65001, 70000});
  BgpAttributes b = a;  // Equal by value.
  const AttrClassId idA = table.intern(a);
  EXPECT_EQ(table.intern(b), idA);
  EXPECT_EQ(table.size(), 1u);

  BgpAttributes c = a;
  c.med = 7;
  const AttrClassId idC = table.intern(c);
  EXPECT_NE(idC, idA);
  EXPECT_EQ(table.size(), 2u);
  // Round trip: the stored class is the interned value.
  EXPECT_EQ(table.attrs(idA), a);
  EXPECT_EQ(table.attrs(idC), c);
  EXPECT_EQ(table.hash(idA), a.hashValue());
}

// --- PolicyEvalKernel memoization -------------------------------------------

class PolicyKernelTest : public ::testing::Test {
 protected:
  Route makeRoute(const std::string& prefix = "10.0.0.0/24") {
    Route route;
    route.prefix = *Prefix::parse(prefix);
    route.protocol = Protocol::kBgp;
    route.attrs.communities.insert(Community(100, 1));
    route.attrs.asPath = AsPath({65001, 70000});
    return route;
  }

  // The memo's structural gate only engages for policies that match as-path
  // lists; memo-behaviour tests attach this catch-all (`.*` permits any
  // rendered path) so their policies qualify without changing verdicts.
  void matchAnyAsPath(PolicyNode& node) {
    const NameId listName = Names::id("ANY-PATH");
    if (config_.asPathLists.find(listName) == config_.asPathLists.end()) {
      AsPathList list;
      list.name = listName;
      list.entries.push_back({true, ".*"});
      config_.asPathLists.emplace(listName, list);
    }
    node.match.asPathList = listName;
  }

  // Asserts kernel evaluation is byte-identical to the plain evaluator for
  // `route`, and returns whether it was permitted.
  bool evalBothWays(std::optional<NameId> policy, const Route& route) {
    const PolicyContext plain{&config_, &vendorA(), 64512};
    const PolicyResult expect = evaluatePolicy(plain, policy, route);
    PolicyContext fast{&config_, &vendorA(), 64512, &kernel_};
    Route got = route;
    const bool permitted = kernel_.evaluate(fast, policy, got);
    EXPECT_EQ(permitted, expect.permitted);
    if (permitted && expect.permitted) {
      EXPECT_EQ(got.attrs, expect.route.attrs);
      EXPECT_TRUE(got.nexthop == expect.route.nexthop);
      EXPECT_EQ(got.prefix, expect.route.prefix);
    }
    return permitted;
  }

  DeviceConfig config_;
  PolicyEvalKernel kernel_;
};

TEST_F(PolicyKernelTest, MemoHitReplaysTheVerdict) {
  const NameId name = Names::id("PREF-UP");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.sets.localPref = 321;
  matchAnyAsPath(node);
  policy.upsertNode(node);

  // Same attribute class across different prefixes: the policy reads no
  // prefix, so the second evaluation is a memo hit.
  EXPECT_TRUE(evalBothWays(name, makeRoute("10.0.0.0/24")));
  EXPECT_TRUE(evalBothWays(name, makeRoute("10.0.1.0/24")));
  const PolicyKernelStats stats = kernel_.stats();
  EXPECT_EQ(stats.memoMisses, 1u);
  EXPECT_EQ(stats.memoHits, 1u);
  EXPECT_EQ(kernel_.memoEntries(), 1u);
}

TEST_F(PolicyKernelTest, PrefixReadingPolicyKeysOnThePrefix) {
  const NameId listName = Names::id("TEN-SLASH-24");
  PrefixList list;
  list.name = listName;
  list.family = IpFamily::kV4;
  list.entries.push_back({true, *Prefix::parse("10.0.0.0/24"), 0, 0});
  config_.prefixLists.emplace(listName, list);
  const NameId name = Names::id("MATCH-PREFIX");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.match.prefixList = listName;
  node.sets.localPref = 555;
  matchAnyAsPath(node);
  policy.upsertNode(node);

  // Different prefixes with the same attribute class must NOT share a memo
  // entry: one matches the list, the other falls to the tail.
  EXPECT_TRUE(evalBothWays(name, makeRoute("10.0.0.0/24")));
  evalBothWays(name, makeRoute("10.9.9.0/24"));
  EXPECT_EQ(kernel_.stats().memoMisses, 2u);
  EXPECT_EQ(kernel_.stats().memoHits, 0u);
  // Re-seeing either prefix hits.
  EXPECT_TRUE(evalBothWays(name, makeRoute("10.0.0.0/24")));
  EXPECT_EQ(kernel_.stats().memoHits, 1u);
}

TEST_F(PolicyKernelTest, NexthopWritingPolicyKeysOnTheInputNexthop) {
  const NameId name = Names::id("SET-NH");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.sets.nexthop = *IpAddress::parse("4.4.4.4");
  matchAnyAsPath(node);
  policy.upsertNode(node);

  Route first = makeRoute();
  first.nexthop = *IpAddress::parse("1.1.1.1");
  Route second = makeRoute();
  second.nexthop = *IpAddress::parse("2.2.2.2");
  // The outcome rewrites the nexthop; with distinct input nexthops both must
  // still come out as 4.4.4.4 (so a shared key would be unsound if the
  // profile ignored writes — this is the regression the profile guards).
  EXPECT_TRUE(evalBothWays(name, first));
  EXPECT_TRUE(evalBothWays(name, second));
  PolicyContext fast{&config_, &vendorA(), 64512, &kernel_};
  Route replay = makeRoute();
  replay.nexthop = *IpAddress::parse("1.1.1.1");
  ASSERT_TRUE(kernel_.evaluate(fast, name, replay));
  EXPECT_TRUE(replay.nexthop == *IpAddress::parse("4.4.4.4"));
}

TEST_F(PolicyKernelTest, DenialsMemoizeToo) {
  const NameId name = Names::id("DENY-ALL");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kDeny;
  matchAnyAsPath(node);
  policy.upsertNode(node);
  EXPECT_FALSE(evalBothWays(name, makeRoute("10.0.0.0/24")));
  EXPECT_FALSE(evalBothWays(name, makeRoute("10.0.1.0/24")));
  EXPECT_EQ(kernel_.stats().memoHits, 1u);
}

TEST_F(PolicyKernelTest, MatchCheapPoliciesBypassTheMemo) {
  // No as-path-list match anywhere: walking this one-node policy is cheaper
  // than interning attributes, so the structural gate skips the memo — but
  // the result must still be byte-identical to the plain evaluator.
  const NameId name = Names::id("CHEAP");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.sets.localPref = 250;
  policy.upsertNode(node);

  EXPECT_TRUE(evalBothWays(name, makeRoute("10.0.0.0/24")));
  EXPECT_TRUE(evalBothWays(name, makeRoute("10.0.0.0/24")));
  const PolicyKernelStats stats = kernel_.stats();
  EXPECT_EQ(stats.memoHits, 0u);
  EXPECT_EQ(stats.memoMisses, 0u);
  EXPECT_EQ(stats.attrClasses, 0u);
  EXPECT_EQ(kernel_.memoEntries(), 0u);
}

TEST_F(PolicyKernelTest, BadRegexIsCountedAndMatchesPlainEvaluator) {
  const NameId listName = Names::id("BROKEN");
  AsPathList list;
  list.name = listName;
  list.entries.push_back({true, "(unclosed"});
  list.entries.push_back({true, "_65001_"});  // Valid fallback entry.
  config_.asPathLists.emplace(listName, list);
  const NameId name = Names::id("MATCH-ASPATH");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.match.asPathList = listName;
  node.sets.localPref = 777;
  policy.upsertNode(node);

  // The invalid entry matches nothing; the valid one matches — identically
  // with and without the kernel — and the bad evaluation is counted.
  EXPECT_TRUE(evalBothWays(name, makeRoute()));
  EXPECT_GE(kernel_.stats().badRegexEvals, 1u);
}

TEST_F(PolicyKernelTest, RegexL1CountsPerEngine) {
  const NameId listName = Names::id("L1");
  AsPathList list;
  list.name = listName;
  list.entries.push_back({true, "_70000$"});
  config_.asPathLists.emplace(listName, list);
  const NameId name = Names::id("MATCH-L1");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.match.asPathList = listName;
  policy.upsertNode(node);

  PolicyContext fast{&config_, &vendorA(), 64512, &kernel_};
  Route route = makeRoute();
  ASSERT_TRUE(kernel_.evaluate(fast, name, route));
  EXPECT_EQ(kernel_.stats().regexCacheMisses, 1u);
  EXPECT_EQ(kernel_.stats().regexCacheHits, 0u);
  // Second evaluation with a fresh attribute class forces a real policy walk
  // that consults the pattern again: an L1 hit this time.
  Route other = makeRoute();
  other.attrs.localPref = 42;
  ASSERT_TRUE(kernel_.evaluate(fast, name, other));
  EXPECT_EQ(kernel_.stats().regexCacheMisses, 1u);
  EXPECT_EQ(kernel_.stats().regexCacheHits, 1u);
}

TEST_F(PolicyKernelTest, InPlaceEvaluatorMatchesTheCopyingOne) {
  const NameId listName = Names::id("TEN-ONLY");
  PrefixList list;
  list.name = listName;
  list.family = IpFamily::kV4;
  list.entries.push_back({true, *Prefix::parse("10.0.0.0/24"), 0, 0});
  config_.prefixLists.emplace(listName, list);
  const NameId name = Names::id("REWRITE-OR-DENY");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode rewrite;
  rewrite.sequence = 10;
  rewrite.action = PolicyAction::kPermit;
  rewrite.match.prefixList = listName;
  rewrite.sets.localPref = 900;
  rewrite.sets.addCommunities.push_back(Community(64512, 77));
  policy.upsertNode(rewrite);
  PolicyNode tail;
  tail.sequence = 20;
  tail.action = PolicyAction::kDeny;
  policy.upsertNode(tail);

  const PolicyContext context{&config_, &vendorA(), 64512};
  // Permit with rewrites, and deny: in both cases the in-place variant must
  // agree with the copying evaluator — and leave a denied route untouched.
  for (const char* prefix : {"10.0.0.0/24", "10.5.0.0/24"}) {
    const Route original = makeRoute(prefix);
    const PolicyResult expect = evaluatePolicy(context, name, original);
    Route inPlace = original;
    const bool permitted = evaluatePolicyInPlace(context, name, inPlace);
    EXPECT_EQ(permitted, expect.permitted) << prefix;
    if (permitted)
      EXPECT_EQ(inPlace.attrs, expect.route.attrs) << prefix;
    else
      EXPECT_EQ(inPlace.attrs, original.attrs) << prefix;
  }
}

// --- lazy reason traces ------------------------------------------------------

TEST_F(PolicyKernelTest, ReasonsAreLazilyFormatted) {
  const NameId name = Names::id("TRACED");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  policy.upsertNode(node);
  const PolicyContext context{&config_, &vendorA(), 64512};
  const PolicyResult traced = evaluatePolicy(context, name, makeRoute());
  EXPECT_FALSE(traced.reason.empty());
  const PolicyResult silent =
      evaluatePolicy(context, name, makeRoute(), /*explain=*/false);
  EXPECT_TRUE(silent.reason.empty());
  // The verdict and rewrites are unaffected by explain.
  EXPECT_EQ(silent.permitted, traced.permitted);
  EXPECT_EQ(silent.route.attrs, traced.route.attrs);
  EXPECT_EQ(silent.matchedNode, traced.matchedNode);
}

// --- AsPath render memo ------------------------------------------------------

TEST(AsPathRenderTest, StrIsMemoizedPerInstance) {
  AsPath path({100, 200});
  const std::string& first = path.str();
  EXPECT_EQ(first, "100 200");
  // Same storage on repeat calls (the memo, not a fresh temporary).
  EXPECT_EQ(&path.str(), &first);
}

TEST(AsPathRenderTest, MutatorsInvalidateTheRender) {
  AsPath path({100, 200});
  EXPECT_EQ(path.str(), "100 200");
  path.prepend(50);
  EXPECT_EQ(path.str(), "50 100 200");
  path.appendSet({300, 400});
  EXPECT_EQ(path.str(), "50 100 200 {300,400}");
}

TEST(AsPathRenderTest, CopiesShareAndMovesSteal) {
  AsPath path({100, 200});
  const std::string& rendered = path.str();
  AsPath copy = path;
  EXPECT_EQ(&copy.str(), &rendered);  // Shared cache, equal segments.
  copy.prepend(1);
  EXPECT_EQ(copy.str(), "1 100 200");
  EXPECT_EQ(path.str(), "100 200");  // The original is untouched.
  AsPath moved = std::move(path);
  EXPECT_EQ(&moved.str(), &rendered);
}

}  // namespace
}  // namespace hoyan
