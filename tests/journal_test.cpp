// Tests for the run flight recorder (src/obs/journal.h): schema validity of
// every event type against the hoyan_inspect validator, canonical-export
// byte-determinism across worker counts, bounded-buffer drop accounting, and
// the disabled-mode zero-allocation guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>

#include "core/hoyan.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "inspect.h"
#include "obs/journal.h"
#include "obs/telemetry.h"

// Global allocation counter for the zero-allocation test. Counting only —
// behavior is unchanged, so the rest of the suite runs normally.
namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hoyan {
namespace {

// Emits one event of every type (the full control-flow vocabulary).
void emitAllEventTypes(obs::RunJournal& journal) {
  journal.runBegin("plan-1", 0xdeadbeefcafef00dULL);
  journal.phaseBegin("route.split");
  journal.impact("scoped", "prefix-scoped delta on 1 device(s)", 1, 2);
  journal.cacheBypass("prov_filter_mismatch", "route-3", "cas/r/abc");
  journal.cacheHit("route", "route-0", "cas/r/0123");
  journal.cacheMiss("route", "route-1", "cas/r/4567");
  journal.cacheEvict("cas/r/old", 4096);
  journal.subtaskEnqueue("route", "route-1");
  journal.subtaskStart("route", "route-1", 1, 0);
  journal.subtaskRetry("route", "route-1", 1);
  journal.subtaskExhaust("route", "route-2", 3);
  journal.subtaskFinish("route", "route-1", 2, 0, 0.0123);
  journal.ribAssembly("assembled", 10, 2, 9000, 48);
  journal.sweepPlan("fault_sweep", 300, 20, 12, 268);
  journal.sweepVerdict("fault_sweep", "s000007", false, "cas/k/0123", 2);
  journal.sweepResult("fault_sweep", 300, 1, 240, 0);
  journal.policyKernel("route", 9000, 120, 4400, 16);
  journal.phaseEnd("route.split", 0.5);
  journal.runEnd("plan-1", 1.25);
}

TEST(JournalTest, EveryEventTypeValidatesAgainstTheInspectSchema) {
  obs::RunJournal journal({.enabled = true});
  emitAllEventTypes(journal);
  EXPECT_EQ(journal.eventCount(), 19u);

  std::string error;
  EXPECT_TRUE(inspect::validateJournal(journal.toJsonl(), error)) << error;
  // The canonical form (volatile fields stripped, no summary trailer) must
  // satisfy the same schema: nothing required is volatile.
  EXPECT_TRUE(inspect::validateJournal(journal.canonicalJsonl(), error)) << error;
}

TEST(JournalTest, SweepPlanCarriesHintSourceNote) {
  obs::RunJournal journal({.enabled = true});
  journal.sweepPlan("fault_sweep", 10, 2, 1, 7, "derived");
  journal.sweepPlan("fault_sweep", 10, 0, 0, 10);  // Default source: "none".
  std::vector<inspect::Event> events;
  std::string error;
  ASSERT_TRUE(inspect::parseJournal(journal.toJsonl(), events, error)) << error;
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0].str("note"), "derived");
  EXPECT_EQ(events[1].str("note"), "none");
  EXPECT_TRUE(inspect::validateJournal(journal.toJsonl(), error)) << error;
  // The hint source is semantic, not volatile: the canonical export keeps it.
  std::vector<inspect::Event> canonical;
  ASSERT_TRUE(inspect::parseJournal(journal.canonicalJsonl(), canonical, error))
      << error;
  ASSERT_GE(canonical.size(), 2u);
  EXPECT_EQ(canonical[0].str("note"), "derived");
}

TEST(JournalTest, OperationalExportCarriesOrderAndSummary) {
  obs::RunJournal journal({.enabled = true});
  emitAllEventTypes(journal);
  std::vector<inspect::Event> events;
  std::string error;
  ASSERT_TRUE(inspect::parseJournal(journal.toJsonl(), events, error)) << error;
  ASSERT_EQ(events.size(), 20u);  // 19 events + the summary line.
  // seq is record order.
  for (size_t i = 0; i < 19; ++i)
    EXPECT_EQ(events[i].num("seq").value_or(-1), static_cast<double>(i)) << i;
  EXPECT_EQ(events.back().ev, "journal_summary");
  EXPECT_EQ(events.back().num("events").value_or(-1), 19.0);
  EXPECT_EQ(events.back().num("dropped").value_or(-1), 0.0);
  // Volatile attribution is present operationally...
  EXPECT_TRUE(events[8].field("worker"));  // subtask_start
  // ...and stripped canonically.
  std::vector<inspect::Event> canonical;
  ASSERT_TRUE(inspect::parseJournal(journal.canonicalJsonl(), canonical, error));
  for (const inspect::Event& event : canonical) {
    EXPECT_FALSE(event.field("seq")) << event.ev;
    EXPECT_FALSE(event.field("t_ms")) << event.ev;
    EXPECT_FALSE(event.field("worker")) << event.ev;
  }
}

TEST(JournalTest, BoundedBufferCountsDrops) {
  obs::RunJournal journal({.enabled = true, .capacity = 4});
  for (int i = 0; i < 10; ++i)
    journal.cacheHit("route", "route-" + std::to_string(i), "cas/r/x");
  EXPECT_EQ(journal.eventCount(), 4u);
  EXPECT_EQ(journal.droppedEvents(), 6u);

  std::vector<inspect::Event> events;
  std::string error;
  ASSERT_TRUE(inspect::parseJournal(journal.toJsonl(), events, error)) << error;
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().ev, "journal_summary");
  EXPECT_EQ(events.back().num("dropped").value_or(-1), 6.0);
  // The retained prefix is the first-recorded events, intact.
  EXPECT_EQ(events[0].str("id"), "route-0");
  EXPECT_EQ(events[3].str("id"), "route-3");
}

TEST(JournalTest, ClearResetsEventsAndDrops) {
  obs::RunJournal journal({.enabled = true, .capacity = 2});
  for (int i = 0; i < 5; ++i) journal.phaseBegin("p");
  ASSERT_GT(journal.droppedEvents(), 0u);
  journal.clear();
  EXPECT_EQ(journal.eventCount(), 0u);
  EXPECT_EQ(journal.droppedEvents(), 0u);
}

TEST(JournalTest, DisabledEmittersDoNotAllocate) {
  obs::RunJournal journal;  // Disabled by default.
  ASSERT_FALSE(journal.enabled());
  // Pre-built arguments: the emitters take string_views, so a disabled
  // journal must be a branch-and-return on every path.
  const std::string phase = "route";
  const std::string id = "route-7";
  const std::string key = "cas/r/0123";
  const size_t before = g_allocations.load();
  journal.runBegin(phase, 1);
  journal.phaseBegin(phase);
  journal.impact(phase, id, 1, 2);
  journal.cacheBypass(phase, id, key);
  journal.cacheHit(phase, id, key);
  journal.cacheMiss(phase, id, key);
  journal.cacheEvict(key, 64);
  journal.subtaskEnqueue(phase, id);
  journal.subtaskStart(phase, id, 1, 0);
  journal.subtaskRetry(phase, id, 1);
  journal.subtaskExhaust(phase, id, 3);
  journal.subtaskFinish(phase, id, 1, 0, 0.5);
  journal.ribAssembly(phase, 1, 2, 3, 4);
  journal.sweepPlan(phase, 1, 2, 3, 4);
  journal.sweepVerdict(phase, id, true, key, 1);
  journal.sweepResult(phase, 1, 2, 3, 4);
  journal.policyKernel(phase, 1, 2, 3, 4);
  journal.phaseEnd(phase, 0.5);
  journal.runEnd(phase, 1.0);
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(journal.eventCount(), 0u);
}

// --- determinism across worker counts ---------------------------------------

class JournalDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WanSpec spec;
    spec.regions = 2;
    wan_ = generateWan(spec);
    WorkloadSpec workload;
    workload.prefixesPerIsp = 8;
    workload.prefixesPerDc = 4;
    workload.v6Share = 0;
    inputs_ = generateInputRoutes(wan_, workload);
    flows_ = generateFlows(wan_, workload, 200);
    intents_.rclIntents = {"not prefix = 100.0.8.0/24 => PRE = POST"};
    intents_.maxLinkUtilization = 2.0;
  }

  // One full pipeline (preprocess + one change verification) recorded into a
  // fresh journal; returns the canonical export.
  std::string canonicalRun(size_t workers) {
    obs::TelemetryOptions telemetryOptions;
    telemetryOptions.journal = true;
    obs::Telemetry telemetry(telemetryOptions);
    Hoyan hoyan(wan_.topology, wan_.configs);
    hoyan.setInputRoutes(inputs_);
    hoyan.setInputFlows(flows_);
    DistSimOptions options;
    options.workers = workers;
    options.routeSubtasks = 8;
    options.trafficSubtasks = 4;
    hoyan.setSimulationOptions(options);
    hoyan.setTelemetry(&telemetry);
    hoyan.enableIncremental();
    hoyan.preprocess();
    ChangePlan plan;
    plan.name = "scoped";
    plan.commands =
        "device BR-0-0\n"
        "ip-prefix LP-J index 10 permit 100.0.8.0/24\n"
        "route-policy ISP-IN-0 node 800 permit\n"
        " match ip-prefix LP-J\n"
        " apply local-pref 150\n";
    hoyan.verifyChange(plan, intents_);
    std::string error;
    EXPECT_TRUE(inspect::validateJournal(telemetry.journal().toJsonl(), error))
        << error;
    return telemetry.journal().canonicalJsonl();
  }

  GeneratedWan wan_;
  std::vector<InputRoute> inputs_;
  std::vector<Flow> flows_;
  IntentSet intents_;
};

TEST_F(JournalDeterminismTest, CanonicalExportIsByteIdenticalAcrossWorkerCounts) {
  const std::string one = canonicalRun(1);
  const std::string four = canonicalRun(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

}  // namespace
}  // namespace hoyan
