// Tests for the incremental verification engine: fingerprint stability and
// sensitivity, change-impact scoping, the content-addressed result cache,
// and end-to-end warm-vs-cold equivalence through the Hoyan facade.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <vector>

#include "core/hoyan.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "incr/cache.h"
#include "incr/engine.h"
#include "incr/fingerprint.h"
#include "incr/impact.h"
#include "rcl/global_rib.h"
#include "test_fixtures.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

std::vector<std::string> renderedRows(const NetworkRibs& ribs) {
  const rcl::GlobalRib global = rcl::GlobalRib::fromNetworkRibs(ribs);
  std::vector<std::string> out;
  out.reserve(global.size());
  for (const rcl::RibRow& row : global.rows()) out.push_back(row.str());
  return out;
}

// Applies change commands to a copy of the small WAN and rebuilds the model.
NetworkModel changedModel(const SmallWan& net, const std::string& commands) {
  Topology topology = net.topology;
  NetworkConfig configs = net.configs;
  const auto errors = applyChangeCommands(topology, configs, commands);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors[0].str());
  return NetworkModel::build(std::move(topology), std::move(configs));
}

// --- fingerprints -----------------------------------------------------------

TEST(FingerprintTest, StableAcrossIdenticalRebuilds) {
  const SmallWan net = buildSmallWan();
  const NetworkModel first = net.model();
  const NetworkModel second = net.model();
  EXPECT_EQ(incr::fingerprintModel(first), incr::fingerprintModel(second));
  EXPECT_EQ(incr::fingerprintForwardingState(first),
            incr::fingerprintForwardingState(second));
  EXPECT_EQ(incr::fingerprintLocalRouteState(first),
            incr::fingerprintLocalRouteState(second));
}

TEST(FingerprintTest, SectionFingerprintsIsolateTheChangedSection) {
  const SmallWan net = buildSmallWan();
  const NetworkModel base = net.model();
  const NetworkModel changed = changedModel(
      net, "device t-BR1\nroute-policy PASS node 10 permit\n apply local-pref 150\n");
  EXPECT_NE(incr::fingerprintModel(base), incr::fingerprintModel(changed));

  const NameId br1 = Names::id("t-BR1");
  const auto baseSections = incr::fingerprintConfigSections(base.configs.devices().at(br1));
  const auto changedSections =
      incr::fingerprintConfigSections(changed.configs.devices().at(br1));
  EXPECT_NE(baseSections.routePolicies, changedSections.routePolicies);
  EXPECT_EQ(baseSections.staticRoutes, changedSections.staticRoutes);
  EXPECT_EQ(baseSections.bgpCore, changedSections.bgpCore);
  EXPECT_EQ(baseSections.prefixLists, changedSections.prefixLists);
  // Policy content is invisible to the traffic and local-routes slices.
  EXPECT_EQ(incr::fingerprintForwardingState(base),
            incr::fingerprintForwardingState(changed));
  EXPECT_EQ(incr::fingerprintLocalRouteState(base),
            incr::fingerprintLocalRouteState(changed));
}

TEST(FingerprintTest, StaticRouteChangesLocalRouteSlice) {
  const SmallWan net = buildSmallWan();
  const NetworkModel base = net.model();
  const NetworkModel changed =
      changedModel(net, "device t-C1\nstatic-route 60.0.0.0/8 discard\n");
  EXPECT_NE(incr::fingerprintLocalRouteState(base),
            incr::fingerprintLocalRouteState(changed));
}

TEST(FingerprintTest, ChunkFingerprintsAreOrderAndContentSensitive) {
  const SmallWan net = buildSmallWan();
  const std::vector<InputRoute> a{ispRoute(net, "100.1.0.0/16"),
                                  ispRoute(net, "100.2.0.0/16")};
  const std::vector<InputRoute> b{ispRoute(net, "100.2.0.0/16"),
                                  ispRoute(net, "100.1.0.0/16")};
  const std::vector<InputRoute> c{ispRoute(net, "100.1.0.0/16"),
                                  ispRoute(net, "100.2.0.0/16", 7)};
  EXPECT_EQ(incr::fingerprintInputRouteChunk(a), incr::fingerprintInputRouteChunk(a));
  EXPECT_NE(incr::fingerprintInputRouteChunk(a), incr::fingerprintInputRouteChunk(b));
  EXPECT_NE(incr::fingerprintInputRouteChunk(a), incr::fingerprintInputRouteChunk(c));
}

// --- change impact ----------------------------------------------------------

TEST(ChangeImpactTest, NoDeltaIsCompletelyClean) {
  const SmallWan net = buildSmallWan();
  const NetworkModel base = net.model();
  const NetworkModel same = net.model();
  const incr::ChangeImpact impact = incr::analyzeChangeImpact(base, same);
  EXPECT_FALSE(impact.allDirty);
  EXPECT_TRUE(impact.dirtyRanges.empty());
  EXPECT_TRUE(impact.dirtyDevices.empty());
  EXPECT_TRUE(impact.clean(IpRange{*IpAddress::parse("0.0.0.0"),
                                   *IpAddress::parse("255.255.255.255")}));
}

TEST(ChangeImpactTest, PrefixScopedPolicyEditBoundsTheDirtyRange) {
  const SmallWan net = buildSmallWan();
  const NetworkModel base = net.model();
  const NetworkModel changed = changedModel(
      net,
      "device t-BR1\n"
      "ip-prefix LP-T index 10 permit 100.1.0.0/16\n"
      "route-policy PASS node 50 permit\n"
      " match ip-prefix LP-T\n"
      " apply local-pref 150\n");
  const incr::ChangeImpact impact = incr::analyzeChangeImpact(base, changed);
  EXPECT_FALSE(impact.allDirty) << impact.reason;
  ASSERT_FALSE(impact.dirtyRanges.empty());
  // A subtask covering the edited prefix must re-run; a disjoint one is clean.
  const Prefix touched = *Prefix::parse("100.1.0.0/16");
  EXPECT_FALSE(impact.clean(IpRange{touched.firstAddress(), touched.lastAddress()}));
  const Prefix disjoint = *Prefix::parse("50.0.0.0/8");
  EXPECT_TRUE(impact.clean(IpRange{disjoint.firstAddress(), disjoint.lastAddress()}));
  // The edited device is dirty; its BGP peers are in the affected closure.
  EXPECT_NE(std::find(impact.dirtyDevices.begin(), impact.dirtyDevices.end(), net.br1),
            impact.dirtyDevices.end());
  EXPECT_NE(
      std::find(impact.affectedDevices.begin(), impact.affectedDevices.end(), net.rr1),
      impact.affectedDevices.end());
}

TEST(ChangeImpactTest, PolicyEditWithoutPrefixMatchIsAllDirty) {
  const SmallWan net = buildSmallWan();
  const NetworkModel base = net.model();
  const NetworkModel changed = changedModel(
      net, "device t-BR1\nroute-policy PASS node 10 permit\n apply local-pref 150\n");
  const incr::ChangeImpact impact = incr::analyzeChangeImpact(base, changed);
  EXPECT_TRUE(impact.allDirty);
  EXPECT_FALSE(impact.clean(std::nullopt));
}

TEST(ChangeImpactTest, UndefinedPrefixListFollowsVendorFilterSemantics) {
  // policy_eval treats a missing/empty referenced list as match-ALL on
  // match-all vendors (VendorA/C) and match-NONE on VendorB: the same edit is
  // unbounded on the former and inert on the latter.
  const std::string commands =
      "device t-BR1\n"
      "route-policy PASS node 60 permit\n"
      " match ip-prefix NO-SUCH-LIST\n";
  {
    const SmallWan net = buildSmallWan(vendorA().name);
    const incr::ChangeImpact impact =
        incr::analyzeChangeImpact(net.model(), changedModel(net, commands));
    EXPECT_TRUE(impact.allDirty) << impact.reason;
  }
  {
    const SmallWan net = buildSmallWan(vendorB().name);
    const incr::ChangeImpact impact =
        incr::analyzeChangeImpact(net.model(), changedModel(net, commands));
    EXPECT_FALSE(impact.allDirty) << impact.reason;
  }
}

TEST(ChangeImpactTest, DeletedReferencedPrefixListFollowsVendorFilterSemantics) {
  // Base: PASS node 60 matches LP-GONE (100.9.0.0/16). Deleting the list (no
  // policy delta) makes the node match-all on match-all vendors — routes far
  // outside the old entries' spans flip — but only the old spans on VendorB.
  const std::string setup =
      "device t-BR1\n"
      "ip-prefix LP-GONE index 10 permit 100.9.0.0/16\n"
      "route-policy PASS node 60 permit\n"
      " match ip-prefix LP-GONE\n";
  for (const NameId borderVendor : {vendorA().name, vendorB().name}) {
    const SmallWan net = buildSmallWan(borderVendor);
    const NetworkModel base = changedModel(net, setup);
    NetworkConfig configs = base.configs;
    configs.mutableDevices().at(net.br1).prefixLists.erase(Names::id("LP-GONE"));
    const NetworkModel changed = NetworkModel::build(net.topology, std::move(configs));
    const incr::ChangeImpact impact = incr::analyzeChangeImpact(base, changed);
    if (borderVendor == vendorA().name) {
      EXPECT_TRUE(impact.allDirty) << impact.reason;
    } else {
      EXPECT_FALSE(impact.allDirty) << impact.reason;
      const Prefix touched = *Prefix::parse("100.9.0.0/16");
      EXPECT_FALSE(impact.clean(IpRange{touched.firstAddress(), touched.lastAddress()}));
      const Prefix disjoint = *Prefix::parse("50.0.0.0/8");
      EXPECT_TRUE(impact.clean(IpRange{disjoint.firstAddress(), disjoint.lastAddress()}));
    }
  }
}

TEST(ChangeImpactTest, UnreferencedPrefixListCreationStaysScoped) {
  // A brand-new list nothing referenced before is bounded by its own spans
  // even on a match-all vendor (nothing ever evaluated it as undefined).
  const SmallWan net = buildSmallWan(vendorA().name);
  const NetworkModel base = net.model();
  const NetworkModel changed = changedModel(
      net, "device t-BR1\nip-prefix LP-NEW index 10 permit 100.7.0.0/16\n");
  const incr::ChangeImpact impact = incr::analyzeChangeImpact(base, changed);
  EXPECT_FALSE(impact.allDirty) << impact.reason;
}

TEST(ChangeImpactTest, PolicyRemovalFollowsVendorTailSemantics) {
  // Deleting a whole policy moves no-node-matched routes from the
  // fall-through verdict (acceptWhenNoNodeMatches) to the undefined-policy
  // verdict (acceptWhenPolicyUndefined). Those differ on VendorA (accept vs
  // deny) — unbounded — and agree on VendorB (deny vs deny) — span-scoped.
  const std::string setup =
      "device t-BR1\n"
      "ip-prefix LP-SCOPED index 10 permit 100.8.0.0/16\n"
      "route-policy DOOMED node 10 permit\n"
      " match ip-prefix LP-SCOPED\n";
  for (const NameId borderVendor : {vendorA().name, vendorB().name}) {
    const SmallWan net = buildSmallWan(borderVendor);
    const NetworkModel base = changedModel(net, setup);
    NetworkConfig configs = base.configs;
    configs.mutableDevices().at(net.br1).routePolicies.erase(Names::id("DOOMED"));
    const NetworkModel changed = NetworkModel::build(net.topology, std::move(configs));
    const incr::ChangeImpact impact = incr::analyzeChangeImpact(base, changed);
    if (borderVendor == vendorA().name)
      EXPECT_TRUE(impact.allDirty) << impact.reason;
    else
      EXPECT_FALSE(impact.allDirty) << impact.reason;
  }
}

TEST(ChangeImpactTest, NonScopedSectionsAreAllDirty) {
  const SmallWan net = buildSmallWan();
  const NetworkModel base = net.model();
  for (const char* commands : {
           "device t-C1\nstatic-route 60.0.0.0/8 discard\n",     // statics
           "device t-BR1\nrouter bgp 64512\n redistribute static\n",  // bgp core
       }) {
    const NetworkModel changed = changedModel(net, commands);
    const incr::ChangeImpact impact = incr::analyzeChangeImpact(base, changed);
    EXPECT_TRUE(impact.allDirty) << commands << " -> " << impact.reason;
  }
}

TEST(ChangeImpactTest, TopologyChangeIsAllDirty) {
  const SmallWan net = buildSmallWan();
  const NetworkModel base = net.model();
  Topology topology = net.topology;
  topology.findDevice(net.c1)->interfaces[0].isisCost = 999;
  const NetworkModel changed = NetworkModel::build(std::move(topology), net.configs);
  const incr::ChangeImpact impact = incr::analyzeChangeImpact(base, changed);
  EXPECT_TRUE(impact.allDirty);
  EXPECT_NE(std::find(impact.dirtyDevices.begin(), impact.dirtyDevices.end(), net.c1),
            impact.dirtyDevices.end());
}

// --- engine + cache end-to-end ----------------------------------------------

class IncrementalEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WanSpec spec;
    spec.regions = 2;
    wan_ = generateWan(spec);
    WorkloadSpec workload;
    workload.prefixesPerIsp = 16;
    workload.prefixesPerDc = 8;
    workload.v6Share = 0;
    inputs_ = generateInputRoutes(wan_, workload);
    flows_ = generateFlows(wan_, workload, 400);
    intents_.rclIntents = {"not prefix = 100.0.8.0/24 => PRE = POST"};
    intents_.maxLinkUtilization = 2.0;  // Forces the traffic phase to run.
  }

  std::unique_ptr<Hoyan> makeHoyan(bool incremental,
                                   incr::IncrementalOptions incrOptions = {}) {
    auto hoyan = std::make_unique<Hoyan>(wan_.topology, wan_.configs);
    hoyan->setInputRoutes(inputs_);
    hoyan->setInputFlows(flows_);
    DistSimOptions options;
    options.workers = 4;
    options.routeSubtasks = 12;
    options.trafficSubtasks = 6;
    hoyan->setSimulationOptions(options);
    if (incremental) hoyan->enableIncremental(incrOptions);
    hoyan->preprocess();
    return hoyan;
  }

  // A change confined to prefix-scoped sections of one border device.
  ChangePlan scopedPlan() const {
    ChangePlan plan;
    plan.name = "scoped";
    plan.commands =
        "device BR-0-0\n"
        "ip-prefix LP-INCR index 10 permit 100.0.8.0/24\n"
        "route-policy ISP-IN-0 node 800 permit\n"
        " match ip-prefix LP-INCR\n"
        " apply local-pref 150\n";
    return plan;
  }

  ChangePlan allDirtyPlan() const {
    ChangePlan plan;
    plan.name = "all-dirty";
    plan.commands = "device CORE-0-0\nstatic-route 77.0.0.0/8 discard\n";
    return plan;
  }

  GeneratedWan wan_;
  std::vector<InputRoute> inputs_;
  std::vector<Flow> flows_;
  IntentSet intents_;
};

TEST_F(IncrementalEndToEndTest, WarmRunMatchesColdRunWithCacheHits) {
  auto cold = makeHoyan(false);
  auto warm = makeHoyan(true);
  for (const ChangePlan& plan : {scopedPlan(), allDirtyPlan()}) {
    const ChangeVerificationResult coldResult = cold->verifyChange(plan, intents_);
    const ChangeVerificationResult warmResult = warm->verifyChange(plan, intents_);
    EXPECT_FALSE(coldResult.incrementalUsed);
    EXPECT_TRUE(warmResult.incrementalUsed);

    // Byte-identical RIBs, matching verdicts, matching loads.
    const auto coldRows = renderedRows(coldResult.updatedRibs);
    const auto warmRows = renderedRows(warmResult.updatedRibs);
    ASSERT_EQ(coldRows.size(), warmRows.size()) << plan.name;
    for (size_t i = 0; i < coldRows.size(); ++i)
      ASSERT_EQ(coldRows[i], warmRows[i]) << plan.name << " row " << i;
    ASSERT_EQ(coldResult.rclOutcomes.size(), warmResult.rclOutcomes.size());
    for (size_t i = 0; i < coldResult.rclOutcomes.size(); ++i)
      EXPECT_EQ(coldResult.rclOutcomes[i].result.satisfied,
                warmResult.rclOutcomes[i].result.satisfied)
          << plan.name;
    ASSERT_EQ(coldResult.updatedLinkLoads.size(), warmResult.updatedLinkLoads.size())
        << plan.name;
    for (const auto& entry : coldResult.updatedLinkLoads.entries())
      EXPECT_NEAR(warmResult.updatedLinkLoads.get(entry.from, entry.to), entry.bps,
                  1e-9)
          << plan.name;
  }
  // The scoped plan reuses base-run route results; verify by re-running it.
  const ChangeVerificationResult again = warm->verifyChange(scopedPlan(), intents_);
  EXPECT_GT(again.routeSubtaskCacheHits, 0u);
}

TEST_F(IncrementalEndToEndTest, ScopedChangeHitsOnFirstWarmRun) {
  auto warm = makeHoyan(true);
  const ChangeVerificationResult result = warm->verifyChange(scopedPlan(), intents_);
  // Most route subtasks don't overlap the touched /24 and are served from the
  // base run's cache entries.
  EXPECT_GT(result.routeSubtaskCacheHits, 0u) << result.impactSummary;
  EXPECT_GT(result.routeSubtaskCount, result.routeSubtaskCacheHits);
}

TEST_F(IncrementalEndToEndTest, RepeatedPlanIsServedEntirelyFromCache) {
  auto warm = makeHoyan(true);
  const ChangePlan plan = scopedPlan();
  warm->verifyChange(plan, intents_);
  const ChangeVerificationResult second = warm->verifyChange(plan, intents_);
  EXPECT_EQ(second.routeSubtaskCacheHits, second.routeSubtaskCount);
  EXPECT_EQ(second.trafficSubtaskCacheHits, second.trafficSubtaskCount);
  EXPECT_GT(second.trafficSubtaskCount, 0u);
}

TEST_F(IncrementalEndToEndTest, ProvenanceReplayServesCacheHitsAndEvents) {
  // Recording runs store each route subtask's events as a compressed
  // `<result key>#prov` blob, so a later identical run takes cache hits and
  // replays the events instead of bypassing the cache (the old behavior).
  auto warm = makeHoyan(true);
  obs::ProvenanceOptions provOptions;
  provOptions.enabled = true;
  obs::ProvenanceRecorder recorder(provOptions);
  warm->setProvenance(&recorder);
  const ChangePlan plan = scopedPlan();
  // The base-run cache entries carry no provenance blobs, so this run
  // re-executes every route subtask and seeds the blobs.
  warm->verifyChange(plan, intents_);
  const size_t recordedEvents = recorder.eventCount();
  EXPECT_GT(recordedEvents, 0u);

  recorder.clear();
  const ChangeVerificationResult second = warm->verifyChange(plan, intents_);
  EXPECT_EQ(second.routeSubtaskCacheHits, second.routeSubtaskCount);
  EXPECT_GT(second.routeSubtaskCount, 0u);
  // Replayed events match the recorded run (same subtask-id merge order).
  EXPECT_EQ(recorder.eventCount(), recordedEvents);
}

TEST_F(IncrementalEndToEndTest, ProvenanceFilterChangeInvalidatesReplay) {
  // Stored #prov blobs carry the recording options' fingerprint. A run whose
  // filter differs cannot serve its recorder from them, so the route phase
  // bypasses the cache and re-records under the new filter.
  auto warm = makeHoyan(true);
  obs::ProvenanceOptions wide;
  wide.enabled = true;
  obs::ProvenanceRecorder wideRecorder(wide);
  warm->setProvenance(&wideRecorder);
  const ChangePlan plan = scopedPlan();
  warm->verifyChange(plan, intents_);

  obs::ProvenanceOptions narrow = wide;
  narrow.prefixes.push_back(*Prefix::parse("100.0.8.0/24"));
  obs::ProvenanceRecorder narrowRecorder(narrow);
  warm->setProvenance(&narrowRecorder);
  const ChangeVerificationResult result = warm->verifyChange(plan, intents_);
  EXPECT_EQ(result.routeSubtaskCacheHits, 0u);
  // Traffic subtasks record no provenance; their cached results stay valid.
  EXPECT_EQ(result.trafficSubtaskCacheHits, result.trafficSubtaskCount);
  EXPECT_GT(result.trafficSubtaskCount, 0u);
  // The narrow run re-recorded: only events inside the watched /24 appear.
  for (const obs::RouteEvent& event : narrowRecorder.snapshot())
    EXPECT_TRUE(Prefix::parse("100.0.8.0/24")->contains(event.prefix))
        << event.prefix.str();
}

TEST_F(IncrementalEndToEndTest, EvictionKeepsResidencyWithinBudget) {
  incr::IncrementalOptions options;
  options.cacheBudgetBytes = 64 * 1024;  // Far below one run's results.
  auto warm = makeHoyan(true, options);
  warm->verifyChange(scopedPlan(), intents_);
  warm->verifyChange(allDirtyPlan(), intents_);
  ASSERT_NE(warm->incremental(), nullptr);
  EXPECT_LE(warm->incremental()->cache().totalBytes(), options.cacheBudgetBytes);
}

TEST(SubtaskCacheTest, EvictionAtScaleIsFastExactAndInLruOrder) {
  // 10^5 entries, half over budget: eviction must stay far from quadratic
  // (the old full-scan-per-victim pass took minutes here), keep exactly the
  // most recently used half, and keep byte accounting exact.
  constexpr size_t kEntries = 100000;
  constexpr size_t kBytesEach = 100;
  ObjectStore store;
  incr::SubtaskCache cache(&store, kEntries / 2 * kBytesEach, nullptr);
  std::vector<std::string> keys;
  keys.reserve(kEntries);
  for (size_t i = 0; i < kEntries; ++i) {
    keys.push_back("cas/r/scale-" + std::to_string(i));
    store.put(keys.back(), static_cast<int>(i), kBytesEach);
    cache.stored(keys.back(), kBytesEach);
  }
  ASSERT_EQ(cache.entryCount(), kEntries);
  ASSERT_EQ(cache.totalBytes(), kEntries * kBytesEach);
  // Re-touch the first half so the *insertion-order oldest* become newest.
  for (size_t i = 0; i < kEntries / 2; ++i) ASSERT_TRUE(cache.touch(keys[i]));

  const auto start = std::chrono::steady_clock::now();
  cache.evictToBudget();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_LT(seconds, 5.0) << "eviction pass is superlinear";
  EXPECT_EQ(cache.entryCount(), kEntries / 2);
  EXPECT_EQ(cache.totalBytes(), kEntries / 2 * kBytesEach);
  for (size_t i = 0; i < kEntries; ++i)
    EXPECT_EQ(cache.touch(keys[i]), i < kEntries / 2) << i;
}

TEST(SubtaskCacheTest, EvictionByteAccountingRoundTripsToZero) {
  constexpr size_t kEntries = 100000;
  ObjectStore store;
  incr::SubtaskCache cache(&store, 1, nullptr);  // Nothing fits the budget.
  for (size_t i = 0; i < kEntries; ++i) {
    const std::string key = "cas/r/zero-" + std::to_string(i);
    store.put(key, static_cast<int>(i), 64);
    cache.stored(key, 64);
  }
  cache.evictToBudget();
  EXPECT_EQ(cache.entryCount(), 0u);
  EXPECT_EQ(cache.totalBytes(), 0u);
}

TEST(SplitCacheTest, ReusesSortedOrdersAndMemoizesChunkFingerprints) {
  const SmallWan net = buildSmallWan();
  std::vector<InputRoute> inputs{ispRoute(net, "100.2.0.0/16"),
                                 ispRoute(net, "100.1.0.0/16"),
                                 ispRoute(net, "100.3.0.0/16")};
  incr::SplitCache cache;
  // Cold probe: no cached order yet; store one.
  ASSERT_EQ(cache.cachedRouteOrder(inputs), nullptr);
  std::vector<InputRoute> sorted = inputs;
  std::sort(sorted.begin(), sorted.end(), [](const InputRoute& a, const InputRoute& b) {
    return a.route.prefix.firstAddress() < b.route.prefix.firstAddress();
  });
  cache.storeRouteOrder(std::make_shared<const std::vector<InputRoute>>(sorted));

  // Warm probe with the same (unsorted) inputs: the stored order comes back.
  const auto cached = cache.cachedRouteOrder(inputs);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cache.routeOrderReuses(), 1u);
  ASSERT_EQ(cached->size(), sorted.size());
  for (size_t i = 0; i < sorted.size(); ++i)
    EXPECT_EQ((*cached)[i].route.prefix.str(), sorted[i].route.prefix.str());

  // Chunk fingerprints over the cached buffer memoize and agree with the
  // direct hash; spans outside the cached buffer are not claimed.
  const std::span<const InputRoute> chunk(cached->data(), 2);
  const auto memoized = cache.routeChunkFingerprint(chunk);
  ASSERT_TRUE(memoized.has_value());
  EXPECT_EQ(*memoized, incr::fingerprintInputRouteChunk(chunk));
  EXPECT_EQ(*cache.routeChunkFingerprint(chunk), *memoized);
  EXPECT_FALSE(cache.routeChunkFingerprint(inputs).has_value());

  // A different input set misses and invalidates nothing until stored.
  std::vector<InputRoute> other{ispRoute(net, "100.9.0.0/16")};
  EXPECT_EQ(cache.cachedRouteOrder(other), nullptr);
}

TEST(IncrementalEngineTest, BeginRunWithoutBaseModelThrows) {
  incr::IncrementalEngine engine;
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  DistSimOptions options;
  EXPECT_THROW(engine.beginRun(model, options), std::logic_error);
}

TEST(IncrementalEngineTest, EndRunDropsTransientsAndKeepsCachedResults) {
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  incr::IncrementalEngine engine;
  engine.setBaseModel(model);
  DistSimOptions options;
  options.workers = 2;
  options.routeSubtasks = 2;
  engine.beginRun(model, options);
  ASSERT_EQ(options.store, &engine.store());
  ASSERT_NE(options.cache, nullptr);
  ASSERT_FALSE(options.keyPrefix.empty());

  DistributedSimulator sim(model, options);
  const std::vector<InputRoute> inputs{testing::ispRoute(net, "100.1.0.0/16"),
                                       testing::ispRoute(net, "100.2.0.0/16")};
  ASSERT_TRUE(sim.runRouteSimulation(inputs).succeeded);
  const size_t cachedEntries = engine.cache().entryCount();
  EXPECT_GT(cachedEntries, 0u);
  const size_t liveBefore = engine.store().blobCount();
  engine.endRun();
  // Transient inputs under the run prefix are gone; content-keyed results stay.
  EXPECT_LT(engine.store().blobCount(), liveBefore);
  EXPECT_EQ(engine.cache().entryCount(), cachedEntries);
}

TEST(IncrementalEngineTest, BeginRunReclaimsAnAbandonedRunsTransients) {
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  incr::IncrementalEngine engine;
  engine.setBaseModel(model);
  DistSimOptions options;
  options.workers = 2;
  options.routeSubtasks = 2;
  engine.beginRun(model, options);
  DistributedSimulator sim(model, options);
  const std::vector<InputRoute> inputs{testing::ispRoute(net, "100.1.0.0/16"),
                                       testing::ispRoute(net, "100.2.0.0/16")};
  ASSERT_TRUE(sim.runRouteSimulation(inputs).succeeded);
  const size_t blobsAfterRun = engine.store().blobCount();
  // Abandon the run without endRun (as an exception unwinding out of a failed
  // simulation would); the next beginRun must erase the stale run prefix
  // instead of leaking its transient blobs for the engine's lifetime.
  DistSimOptions nextOptions;
  nextOptions.workers = 2;
  nextOptions.routeSubtasks = 2;
  engine.beginRun(model, nextOptions);
  EXPECT_LT(engine.store().blobCount(), blobsAfterRun);
  EXPECT_NE(nextOptions.keyPrefix, options.keyPrefix);
  engine.endRun();
}

}  // namespace
}  // namespace hoyan
