// Pinned incr:: content-key regression test.
//
// The incremental cache's correctness story is "equal key ⇒ byte-identical
// result"; the dual risk is keys that *churn* when they should not — every
// warm run silently degrades to cold. This test pins the fingerprints of a
// fixed generated corpus to hex constants so any accidental change to the
// hashed field set (or to hashing order) fails loudly and must be a
// deliberate, reviewed re-pin.
//
// The pins are process-stable, not ABI-stable: NameIds are interned in
// generation order, so this test runs as its own binary with exactly one
// TEST (a second TEST, or a fixture interning names earlier, would shift
// every id). Re-pin by running the binary and copying the printed values.
#include <gtest/gtest.h>

#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "incr/fingerprint.h"

namespace hoyan {
namespace {

TEST(FingerprintPinTest, FixedCorpusKeysAreStable) {
  WanSpec spec;
  spec.regions = 2;
  spec.seed = 11;
  const GeneratedWan wan = generateWan(spec);
  WorkloadSpec workload;
  workload.seed = 13;
  workload.prefixesPerIsp = 12;
  workload.prefixesPerDc = 4;
  const std::vector<InputRoute> inputs = generateInputRoutes(wan, workload);
  const NetworkModel model = wan.buildModel();

  const auto pin = [](const char* what, uint64_t fingerprint, const char* expected) {
    EXPECT_EQ(incr::fingerprintHex(fingerprint), expected)
        << what << " fingerprint changed — if the hashed field set changed on "
        << "purpose, re-pin this constant; otherwise warm runs just went cold.";
  };

  pin("model", incr::fingerprintModel(model), "91370cb0c1819bdb");
  pin("topology", incr::fingerprintTopology(wan.topology), "81ef703ffc1f2719");
  pin("forwarding-state", incr::fingerprintForwardingState(model), "5e00bbdc1baaa554");
  pin("local-route-state", incr::fingerprintLocalRouteState(model), "f0916ccf0bf0ab60");
  ASSERT_FALSE(inputs.empty());
  pin("input-chunk", incr::fingerprintInputRouteChunk({inputs.data(), inputs.size()}),
      "187ec3b16b75f1f9");
  ASSERT_FALSE(wan.borders.empty());
  const DeviceConfig* border = model.configs.findDevice(wan.borders[0]);
  ASSERT_NE(border, nullptr);
  pin("border-config", incr::fingerprintDeviceConfig(*border), "44d8759f9c80921c");

  pin("route-options", incr::fingerprintRouteOptions(RouteSimOptions{}),
      "8e6dff9b34a049f6");
  // The policy-eval kernel must be invisible to content keys: toggling the
  // memo changes no simulation result, so it must change no fingerprint
  // either (a memo-keyed cache would cold-start every run that flips it).
  RouteSimOptions memoOff;
  memoOff.policyMemo = false;
  EXPECT_EQ(incr::fingerprintRouteOptions(memoOff),
            incr::fingerprintRouteOptions(RouteSimOptions{}));

  // Re-pin helper: print the actual values when anything above failed.
  if (::testing::Test::HasFailure()) {
    std::printf("actual pins:\n");
    std::printf("  model             %s\n",
                incr::fingerprintHex(incr::fingerprintModel(model)).c_str());
    std::printf("  topology          %s\n",
                incr::fingerprintHex(incr::fingerprintTopology(wan.topology)).c_str());
    std::printf("  forwarding-state  %s\n",
                incr::fingerprintHex(incr::fingerprintForwardingState(model)).c_str());
    std::printf("  local-route-state %s\n",
                incr::fingerprintHex(incr::fingerprintLocalRouteState(model)).c_str());
    std::printf("  input-chunk       %s\n",
                incr::fingerprintHex(
                    incr::fingerprintInputRouteChunk({inputs.data(), inputs.size()}))
                    .c_str());
    std::printf("  border-config     %s\n",
                incr::fingerprintHex(incr::fingerprintDeviceConfig(*border)).c_str());
    std::printf("  route-options     %s\n",
                incr::fingerprintHex(incr::fingerprintRouteOptions(RouteSimOptions{}))
                    .c_str());
  }
}

}  // namespace
}  // namespace hoyan
