// Tests for protocol engines: IS-IS SPF, policy evaluation with VSBs, BGP
// session derivation, and the decision process.
#include <gtest/gtest.h>

#include "proto/bgp.h"
#include "proto/isis.h"
#include "proto/network_model.h"
#include "proto/policy_eval.h"
#include "test_fixtures.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::SmallWan;

// --- IS-IS ---------------------------------------------------------------

TEST(IsisTest, SpfCostsOnSmallWan) {
  const SmallWan net = buildSmallWan();
  const IgpState igp = IgpState::compute(net.topology);
  EXPECT_EQ(igp.path(net.c1, net.c2).cost, 10u);
  EXPECT_EQ(igp.path(net.br1, net.c2).cost, 20u);  // BR1 -> C1 -> C2.
  EXPECT_EQ(igp.path(net.br1, net.rr1).cost, 20u);
  // The ISP is outside the IGP domain.
  EXPECT_FALSE(igp.path(net.c1, net.isp1).reachable());
  EXPECT_FALSE(igp.path(net.isp1, net.c1).reachable());
}

TEST(IsisTest, EcmpFirstHops) {
  const SmallWan net = buildSmallWan();
  const IgpState igp = IgpState::compute(net.topology);
  // BR1 -> RR1: via C1 (10+10); C1->RR1 direct; single path.
  const IgpPath& path = igp.path(net.br1, net.rr1);
  ASSERT_EQ(path.nextHops.size(), 1u);
  EXPECT_EQ(path.nextHops[0], net.c1);
  // C1 -> every domain member reachable.
  const auto members = igp.domainMembers(net.c1);
  EXPECT_EQ(members.size(), 4u);
}

TEST(IsisTest, LinkFailureReroutes) {
  SmallWan net = buildSmallWan();
  net.topology.setLinkState(net.c1, net.c2, false);
  const IgpState igp = IgpState::compute(net.topology);
  // C1 -> C2 must now detour via RR1.
  EXPECT_EQ(igp.path(net.c1, net.c2).cost, 20u);
  ASSERT_EQ(igp.path(net.c1, net.c2).nextHops.size(), 1u);
  EXPECT_EQ(igp.path(net.c1, net.c2).nextHops[0], net.rr1);
}

TEST(IsisTest, DeviceFailureDisconnects) {
  SmallWan net = buildSmallWan();
  net.topology.failDevice(net.c1);
  const IgpState igp = IgpState::compute(net.topology);
  EXPECT_FALSE(igp.path(net.br1, net.c2).reachable());
  net.topology.restoreDevice(net.c1);
  const IgpState restored = IgpState::compute(net.topology);
  EXPECT_TRUE(restored.path(net.br1, net.c2).reachable());
}

// --- AS-path regex -----------------------------------------------------------

TEST(AsPathRegexTest, UnderscoreBoundaries) {
  AsPath path({100, 123, 300});
  EXPECT_TRUE(asPathMatches(path, "_123_"));
  EXPECT_FALSE(asPathMatches(path, "_124_"));
  EXPECT_TRUE(asPathMatches(path, "^100"));
  EXPECT_TRUE(asPathMatches(path, "300$"));
  EXPECT_TRUE(asPathMatches(path, ".*"));
  // An invalid pattern matches nothing rather than throwing.
  EXPECT_FALSE(asPathMatches(path, "(unclosed"));
  // `_23_` must not match inside 123 (boundary semantics).
  EXPECT_FALSE(asPathMatches(path, "_23_"));
}

// --- policy evaluation VSBs ------------------------------------------------------

class PolicyVsbTest : public ::testing::Test {
 protected:
  Route makeRoute(const std::string& prefix = "10.0.0.0/24") {
    Route route;
    route.prefix = *Prefix::parse(prefix);
    route.protocol = Protocol::kBgp;
    route.attrs.communities.insert(Community(100, 1));
    route.attrs.asPath = AsPath({65001, 70000});
    return route;
  }

  DeviceConfig config_;
};

TEST_F(PolicyVsbTest, MissingRoutePolicy) {
  const PolicyContext acceptContext{&config_, &vendorA(), 64512};
  EXPECT_TRUE(evaluatePolicy(acceptContext, std::nullopt, makeRoute()).permitted);
  const PolicyContext strictContext{&config_, &vendorC(), 64512};
  EXPECT_FALSE(evaluatePolicy(strictContext, std::nullopt, makeRoute()).permitted);
}

TEST_F(PolicyVsbTest, UndefinedRoutePolicy) {
  const NameId ghost = Names::id("GHOST-POLICY");
  const PolicyContext lenient{&config_, &vendorA(), 64512};  // Undefined==missing.
  EXPECT_TRUE(evaluatePolicy(lenient, ghost, makeRoute()).permitted);
  const PolicyContext strict{&config_, &vendorB(), 64512};
  EXPECT_FALSE(evaluatePolicy(strict, ghost, makeRoute()).permitted);
}

TEST_F(PolicyVsbTest, DefaultRoutePolicyTailBehaviour) {
  const NameId name = Names::id("NARROW");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.match.nexthop = *IpAddress::parse("99.99.99.99");  // Never matches.
  policy.upsertNode(node);
  const PolicyContext tailDeny{&config_, &vendorA(), 64512};
  EXPECT_FALSE(evaluatePolicy(tailDeny, name, makeRoute()).permitted);
  const PolicyContext tailPermit{&config_, &vendorC(), 64512};
  EXPECT_TRUE(evaluatePolicy(tailPermit, name, makeRoute()).permitted);
}

TEST_F(PolicyVsbTest, UndefinedPolicyFilter) {
  const NameId name = Names::id("WITH-GHOST-FILTER");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.match.prefixList = Names::id("GHOST-LIST");
  policy.upsertNode(node);
  const PolicyContext matchAll{&config_, &vendorA(), 64512};
  EXPECT_TRUE(evaluatePolicy(matchAll, name, makeRoute()).permitted);
  // VendorB: undefined filter matches nothing -> node skipped -> tail deny.
  const PolicyContext matchNone{&config_, &vendorB(), 64512};
  EXPECT_FALSE(evaluatePolicy(matchNone, name, makeRoute()).permitted);
}

TEST_F(PolicyVsbTest, NodeWithoutExplicitAction) {
  const NameId name = Names::id("NO-ACTION");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;  // action stays kUnspecified.
  policy.upsertNode(node);
  const PolicyContext permits{&config_, &vendorA(), 64512};
  EXPECT_TRUE(evaluatePolicy(permits, name, makeRoute()).permitted);
  const PolicyContext denies{&config_, &vendorB(), 64512};
  EXPECT_FALSE(evaluatePolicy(denies, name, makeRoute()).permitted);
}

TEST_F(PolicyVsbTest, IpPrefixListAgainstV6Route) {
  // The §6.1(b) incident: an ip-prefix list matched against IPv6 routes.
  const NameId listName = Names::id("TARGETS");
  PrefixList list;
  list.name = listName;
  list.family = IpFamily::kV4;  // Declared with `ip-prefix`.
  list.entries.push_back({true, *Prefix::parse("2400:db8::/32"), 0, 0});
  config_.prefixLists.emplace(listName, list);
  const NameId name = Names::id("STEER");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.match.prefixList = listName;
  node.sets.localPref = 500;
  policy.upsertNode(node);

  Route v6route = makeRoute();
  v6route.prefix = *Prefix::parse("2400:aaaa::/32");  // NOT in the list.
  // VendorC: all IPv6 routes match the v4 list by default => unintended.
  const PolicyContext buggy{&config_, &vendorC(), 64512};
  const PolicyResult buggyResult = evaluatePolicy(buggy, name, v6route);
  EXPECT_TRUE(buggyResult.permitted);
  EXPECT_EQ(buggyResult.route.attrs.localPref, 500u);
  // VendorA: a v4 list never matches a v6 route => tail deny.
  const PolicyContext sane{&config_, &vendorA(), 64512};
  EXPECT_FALSE(evaluatePolicy(sane, name, v6route).permitted);
}

TEST_F(PolicyVsbTest, AsPathOverwriteAddsOwnAsnPerVsb) {
  const NameId name = Names::id("OVERWRITE");
  RoutePolicy& policy = config_.routePolicy(name);
  PolicyNode node;
  node.sequence = 10;
  node.action = PolicyAction::kPermit;
  node.sets.overwriteAsPath = std::vector<Asn>{65100};
  policy.upsertNode(node);
  const PolicyContext adds{&config_, &vendorA(), 64512};
  EXPECT_EQ(evaluatePolicy(adds, name, makeRoute()).route.attrs.asPath.str(),
            "64512 65100");
  const PolicyContext keeps{&config_, &vendorB(), 64512};
  EXPECT_EQ(evaluatePolicy(keeps, name, makeRoute()).route.attrs.asPath.str(), "65100");
}

TEST_F(PolicyVsbTest, SetsApplyInOrder) {
  PolicySets sets;
  sets.clearCommunities = true;
  sets.addCommunities.push_back(Community(300, 3));
  sets.localPref = 250;
  sets.med = 77;
  sets.nexthop = *IpAddress::parse("4.4.4.4");
  sets.prepend = {64512, 3};
  Route route = makeRoute();
  const PolicyContext context{&config_, &vendorB(), 64512};
  applySets(context, sets, route);
  EXPECT_EQ(route.attrs.communities.str(), "300:3");
  EXPECT_EQ(route.attrs.localPref, 250u);
  EXPECT_EQ(route.attrs.med, 77u);
  EXPECT_EQ(route.nexthop.str(), "4.4.4.4");
  EXPECT_EQ(route.attrs.asPath.str(), "64512 64512 64512 65001 70000");
}

// --- BGP sessions -----------------------------------------------------------------

TEST(BgpSessionTest, DerivesAllSmallWanSessions) {
  const SmallWan net = buildSmallWan();
  const NetworkModel model = net.model();
  // 3 iBGP pairs + 1 eBGP pair = 8 directed sessions.
  EXPECT_EQ(model.sessions.size(), 8u);
  size_t ebgp = 0;
  for (const BgpSession& session : model.sessions)
    if (session.ebgp) ++ebgp;
  EXPECT_EQ(ebgp, 2u);
}

TEST(BgpSessionTest, RemoteAsMismatchBreaksSession) {
  SmallWan net = buildSmallWan();
  // Typo in the remote-as of BR1 -> ISP1.
  for (BgpNeighbor& neighbor : net.configs.device(net.br1).bgp.neighbors)
    if (neighbor.remoteAs == 65001) neighbor.remoteAs = 65002;
  std::vector<std::string> problems;
  const AddressIndex index = AddressIndex::build(net.topology);
  const IgpState igp = IgpState::compute(net.topology);
  const auto sessions = deriveBgpSessions(net.topology, net.configs, index, igp, &problems);
  EXPECT_EQ(sessions.size(), 6u);  // Only the iBGP sessions remain.
  EXPECT_FALSE(problems.empty());
}

TEST(BgpSessionTest, ShutdownNeighborBreaksBothDirections) {
  SmallWan net = buildSmallWan();
  for (BgpNeighbor& neighbor : net.configs.device(net.br1).bgp.neighbors)
    if (neighbor.remoteAs == 65001) neighbor.shutdown = true;
  const NetworkModel model = net.model();
  for (const BgpSession& session : model.sessions) EXPECT_FALSE(session.ebgp);
}

TEST(BgpSessionTest, IsolationSemanticsDependOnVendor) {
  // Session-shutdown vendor (B): isolation removes all sessions.
  SmallWan netB = buildSmallWan();
  netB.configs.device(netB.br1).isolated = true;
  netB.configs.device(netB.br1).vendor = vendorB().name;
  // VendorB isolationViaDenyPolicy = false -> sessions drop.
  const NetworkModel modelB = netB.model();
  for (const BgpSession& session : modelB.sessions) {
    EXPECT_NE(session.local, netB.br1);
    EXPECT_NE(session.peer, netB.br1);
  }
  // Deny-policy vendor (A): sessions stay up.
  SmallWan netA = buildSmallWan();
  netA.configs.device(netA.br1).isolated = true;
  netA.configs.device(netA.br1).vendor = vendorA().name;
  const NetworkModel modelA = netA.model();
  bool anyBorderSession = false;
  for (const BgpSession& session : modelA.sessions)
    if (session.local == netA.br1) anyBorderSession = true;
  EXPECT_TRUE(anyBorderSession);
}

// --- decision process ------------------------------------------------------------

class DecisionTest : public ::testing::Test {
 protected:
  Route route(uint32_t localPref, size_t pathLength, uint32_t med = 0,
              bool ebgp = true, uint32_t igpCost = 0, uint32_t weight = 0) {
    Route r;
    r.prefix = *Prefix::parse("10.0.0.0/24");
    r.protocol = Protocol::kBgp;
    r.adminDistance = 20;
    r.attrs.weight = weight;
    r.attrs.localPref = localPref;
    std::vector<Asn> path;
    for (size_t i = 0; i < pathLength; ++i) path.push_back(65000);
    r.attrs.asPath = AsPath(path);
    r.attrs.med = med;
    r.ebgpLearned = ebgp;
    r.igpCost = igpCost;
    return r;
  }
};

TEST_F(DecisionTest, WeightBeatsEverything) {
  EXPECT_TRUE(bgpPreferred(route(100, 5, 0, false, 99, 1000), route(999, 1)));
}

TEST_F(DecisionTest, LocalPrefBeatsPathLength) {
  EXPECT_TRUE(bgpPreferred(route(200, 5), route(100, 1)));
}

TEST_F(DecisionTest, ShorterPathWins) {
  EXPECT_TRUE(bgpPreferred(route(100, 1), route(100, 2)));
}

TEST_F(DecisionTest, MedComparableOnlyWithinSameNeighborAs) {
  Route a = route(100, 1, 10);
  Route b = route(100, 1, 20);
  EXPECT_TRUE(bgpPreferred(a, b));  // Same first ASN (65000).
  // Different neighbour AS: MED not compared; tie continues to eBGP/IGP.
  b.attrs.asPath = AsPath({65009});
  EXPECT_FALSE(bgpPreferred(a, b));
  EXPECT_FALSE(bgpPreferred(b, a));
}

TEST_F(DecisionTest, EbgpOverIbgpThenIgpCost) {
  EXPECT_TRUE(bgpPreferred(route(100, 1, 0, true), route(100, 1, 0, false)));
  EXPECT_TRUE(bgpPreferred(route(100, 1, 0, false, 5), route(100, 1, 0, false, 10)));
}

TEST_F(DecisionTest, SelectBestRoutesMarksEcmp) {
  std::vector<Route> routes;
  routes.push_back(route(100, 1, 0, false, 10));
  routes.push_back(route(100, 1, 0, false, 10));  // Equal: ECMP.
  routes.push_back(route(100, 2, 0, false, 10));  // Longer path: alternate.
  routes[0].learnedFrom = Names::id("d-a");
  routes[1].learnedFrom = Names::id("d-b");
  routes[2].learnedFrom = Names::id("d-c");
  selectBestRoutes(routes);
  EXPECT_EQ(routes[0].type, RouteType::kBest);
  EXPECT_EQ(routes[1].type, RouteType::kEcmp);
  EXPECT_EQ(routes[2].type, RouteType::kAlternate);
}

TEST_F(DecisionTest, AdminDistanceSeparatesProtocols) {
  std::vector<Route> routes;
  Route bgpRoute = route(100, 1);
  Route staticRoute;
  staticRoute.prefix = bgpRoute.prefix;
  staticRoute.protocol = Protocol::kStatic;
  staticRoute.adminDistance = 1;
  routes.push_back(bgpRoute);
  routes.push_back(staticRoute);
  selectBestRoutes(routes);
  EXPECT_EQ(routes[0].protocol, Protocol::kStatic);
  EXPECT_EQ(routes[0].type, RouteType::kBest);
  EXPECT_EQ(routes[1].type, RouteType::kAlternate);
}

// --- address index ---------------------------------------------------------------

TEST(AddressIndexTest, ResolvesLoopbacksInterfacesAndSubnets) {
  const SmallWan net = buildSmallWan();
  const AddressIndex index = AddressIndex::build(net.topology);
  const Device* c1 = net.topology.findDevice(net.c1);
  EXPECT_EQ(index.exactOwner(c1->loopback), net.c1);
  EXPECT_EQ(index.exactOwner(c1->interfaces[0].address), net.c1);
  EXPECT_FALSE(index.exactOwner(*IpAddress::parse("203.0.113.1")).has_value());
  EXPECT_EQ(index.owner(c1->loopback), net.c1);
}

}  // namespace
}  // namespace hoyan
