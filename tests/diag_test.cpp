// Tests for monitoring emulation, accuracy validation, root-cause analysis,
// and the Table-4 issue-injection experiments.
#include <gtest/gtest.h>

#include "diag/injection.h"
#include "diag/root_cause.h"
#include "diag/validation.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "monitor/monitoring.h"
#include "sim/route_sim.h"

namespace hoyan {
namespace {

class DiagTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WanSpec spec;
    spec.regions = 2;
    wan_ = generateWan(spec);
    model_ = std::make_unique<NetworkModel>(wan_.buildModel());
    WorkloadSpec workload;
    workload.prefixesPerIsp = 8;
    workload.prefixesPerDc = 4;
    workload.v6Share = 0;
    inputs_ = generateInputRoutes(wan_, workload);
    RouteSimOptions options;
    options.includeLocalRoutes = true;
    RouteSimResult result = simulateRoutes(*model_, inputs_, options);
    ribs_ = std::move(result.ribs);
    ribs_.buildForwardingIndex();
  }

  GeneratedWan wan_;
  std::unique_ptr<NetworkModel> model_;
  std::vector<InputRoute> inputs_;
  NetworkRibs ribs_;
};

TEST_F(DiagTest, MonitorSeesOnlyBestBgpRoutes) {
  const NetworkRibs monitored = collectMonitoredRoutes(*model_, ribs_);
  for (const auto& [deviceId, deviceRib] : monitored.devices()) {
    for (const auto& [vrfId, vrfRib] : deviceRib.vrfs()) {
      for (const auto& [prefix, routes] : vrfRib.routes()) {
        for (const Route& route : routes) {
          EXPECT_EQ(route.type, RouteType::kBest);
          EXPECT_EQ(route.attrs.weight, 0u);   // Not BGP-propagated.
          EXPECT_EQ(route.igpCost, 0u);
          EXPECT_TRUE(route.protocol == Protocol::kBgp ||
                      route.protocol == Protocol::kAggregate);
        }
      }
    }
  }
}

TEST_F(DiagTest, BmpDevicesKeepFullRib) {
  RouteMonitorOptions options;
  options.bmpDevices.insert(wan_.cores[0]);
  const NetworkRibs monitored = collectMonitoredRoutes(*model_, ribs_, options);
  // BMP preserves attributes the BGP-agent path loses: the core's iBGP
  // routes keep their non-zero IGP cost toward the border nexthops.
  size_t withIgpCost = 0;
  const DeviceRib* bmpRib = monitored.findDevice(wan_.cores[0]);
  ASSERT_NE(bmpRib, nullptr);
  for (const auto& [vrfId, vrfRib] : bmpRib->vrfs())
    for (const auto& [prefix, routes] : vrfRib.routes())
      for (const Route& route : routes)
        if (route.igpCost > 0) ++withIgpCost;
  EXPECT_GT(withIgpCost, 0u);
  // A non-BMP device has every igpCost zeroed.
  const DeviceRib* agentRib = monitored.findDevice(wan_.cores[1]);
  ASSERT_NE(agentRib, nullptr);
  for (const auto& [vrfId, vrfRib] : agentRib->vrfs())
    for (const auto& [prefix, routes] : vrfRib.routes())
      for (const Route& route : routes) EXPECT_EQ(route.igpCost, 0u);
}

TEST_F(DiagTest, CleanNetworkValidatesAccurately) {
  const NetworkRibs monitored = collectMonitoredRoutes(*model_, ribs_);
  const RouteAccuracyReport report = compareRoutes(ribs_, monitored);
  for (const RouteDiscrepancy& d : report.discrepancies) ADD_FAILURE() << d.str();
  EXPECT_TRUE(report.accurate());
  EXPECT_EQ(report.devicesMissingEntirely, 0u);
  EXPECT_GT(report.routesCompared, 100u);
}

TEST_F(DiagTest, FailedAgentIsReportedAsMissingDevice) {
  RouteMonitorOptions options;
  options.failedAgents.insert(wan_.borders[0]);
  const NetworkRibs monitored = collectMonitoredRoutes(*model_, ribs_, options);
  const RouteAccuracyReport report = compareRoutes(ribs_, monitored, options);
  EXPECT_EQ(report.devicesMissingEntirely, 1u);
  ASSERT_EQ(report.missingDevices.size(), 1u);
  EXPECT_EQ(report.missingDevices[0], wan_.borders[0]);
}

TEST_F(DiagTest, CrossValidationSeesEcmpAndHiddenAttributes) {
  // Remove an ECMP route from a doctored "simulated" RIB; the BGP-agent
  // monitor can't tell, but live `show` cross-validation can.
  NetworkRibs doctored = ribs_;
  size_t removed = 0;
  std::vector<Prefix> affected;
  for (auto& [deviceId, deviceRib] : doctored.devices()) {
    for (auto& [vrfId, vrfRib] : deviceRib.vrfs()) {
      for (auto& [prefix, routes] : vrfRib.routes()) {
        if (removed >= 3) break;
        const size_t before = routes.size();
        std::erase_if(routes, [](const Route& r) { return r.type == RouteType::kEcmp; });
        if (routes.size() != before) {
          ++removed;
          affected.push_back(prefix);
        }
      }
    }
  }
  ASSERT_GT(removed, 0u);
  const auto findings = crossValidateWithLive(doctored, ribs_, affected);
  EXPECT_FALSE(findings.empty());
}

TEST_F(DiagTest, SnmpNoiseStaysWithinBound) {
  LinkLoadMap loads;
  loads.add(wan_.cores[0], wan_.cores[1], 1e9);
  TrafficMonitorOptions options;
  options.snmpNoise = 0.02;
  const auto samples = collectMonitoredLinkLoads(loads, options);
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_NEAR(samples[0].bps, 1e9, 0.02 * 1e9 + 1);
}

TEST_F(DiagTest, NetflowBugScalesVolumes) {
  std::vector<Flow> flows(1);
  flows[0].ingressDevice = wan_.dcGateways[0];
  flows[0].volumeBps = 100;
  TrafficMonitorOptions options;
  options.netflowVolumeScale[wan_.dcGateways[0]] = 0.5;
  const auto records = collectNetflowRecords(flows, options);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].flow.volumeBps, 50);
  options.failedExporters.insert(wan_.dcGateways[0]);
  EXPECT_TRUE(collectNetflowRecords(flows, options).empty());
}

TEST_F(DiagTest, LoadComparisonFlagsOnlyAboveThreshold) {
  LinkLoadMap sim;
  sim.add(wan_.cores[0], wan_.cores[1], 50e9);   // 50% of 100G.
  sim.add(wan_.cores[1], wan_.cores[0], 1e9);
  std::vector<MonitoredLinkLoad> monitored = {
      {wan_.cores[0], wan_.cores[1], 30e9},  // Delta 20% -> flagged.
      {wan_.cores[1], wan_.cores[0], 1.5e9}, // Delta 0.5% -> fine.
  };
  const LoadAccuracyReport report =
      compareLinkLoads(model_->topology, sim, monitored, 0.10);
  ASSERT_EQ(report.inaccurateLinks.size(), 1u);
  EXPECT_EQ(report.inaccurateLinks[0].from, wan_.cores[0]);
}

// --- Table 4 injection experiments: one test per category --------------------

class InjectionTest : public ::testing::TestWithParam<IssueCategory> {};

TEST_P(InjectionTest, InjectedIssueIsDetectedAndClassified) {
  const InjectionOutcome outcome = runInjectionExperiment(GetParam(), 0);
  EXPECT_TRUE(outcome.detected) << outcome.detail;
  EXPECT_TRUE(outcome.classifiedCorrectly)
      << "injected " << issueCategoryName(outcome.injected) << " classified as "
      << issueCategoryName(outcome.classifiedAs) << " (" << outcome.detail << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllCategories, InjectionTest,
    ::testing::Values(IssueCategory::kRouteMonitoringData,
                      IssueCategory::kTrafficMonitoringData,
                      IssueCategory::kTopologyData, IssueCategory::kConfigParsingFlaw,
                      IssueCategory::kInputRouteBuildingFlaw,
                      IssueCategory::kSimImplementationBug,
                      IssueCategory::kVendorSpecificBehavior,
                      IssueCategory::kUnmodeledFeature,
                      IssueCategory::kBgpNondeterminism, IssueCategory::kOther),
    [](const ::testing::TestParamInfo<IssueCategory>& info) {
      std::string name = issueCategoryName(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Table4CampaignTest, MixMatchesPaperAndAllDetected) {
  const auto mix = table4Mix();
  int total = 0;
  for (const auto& [category, count] : mix) total += count;
  EXPECT_EQ(total, 52);  // The paper's 6-month issue count.
}

}  // namespace
}  // namespace hoyan
