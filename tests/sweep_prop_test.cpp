// Randomized differential soundness harness for derived-hints sweep pruning
// (ISSUE 9 satellite a). For every seed: generate a small WAN + workload +
// an RCL corpus intent, then require the k-failure sweep with hints *derived
// from the intent* to be byte-identical — scenariosChecked and the ordered
// counterexample list — to both the serial oracle (checkKFailures) and an
// unpruned sweep, at 1, 3, and 6 workers. A divergence prints the seed, the
// intent, the derived hints, and the smallest differing scenario so the case
// can be replayed and minimized.
//
// Seed count knob (CI sanitizer runs use a reduced set):
//   --seeds=N                     (test binary flag)
//   HOYAN_SWEEP_PROP_SEEDS=N      (environment; the flag wins)
// Default: 100 (seeds 1..100).
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "gen/rcl_corpus.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "rcl/global_rib.h"
#include "rcl/parser.h"
#include "rcl/verify.h"
#include "sweep/derive_hints.h"
#include "sweep/sweep.h"
#include "verify/properties.h"

namespace hoyan {

size_t propSeedCount = 100;  // Overridden by main() below.

namespace {

std::string describeHints(const sweep::DeriveResult& derived) {
  std::string out = derived.scoped ? "scoped" : ("fallback: " + derived.reason);
  out += " | prefixes={";
  for (const Prefix& p : derived.hints.relevantPrefixes) out += p.str() + " ";
  out += "} devices={";
  for (const NameId d : derived.hints.relevantDevices) out += Names::str(d) + " ";
  out += "}";
  return out;
}

// Returns a divergence description, or nullopt when the results are
// byte-identical. The "minimized scenario" is the smallest failure set among
// the positions where the ordered counterexample lists disagree — the
// cheapest witness to replay.
std::optional<std::string> diverges(const KFailureResult& expected,
                                    const KFailureResult& actual) {
  std::string out;
  if (expected.scenariosChecked != actual.scenariosChecked)
    out += "scenariosChecked " + std::to_string(expected.scenariosChecked) +
           " vs " + std::to_string(actual.scenariosChecked) + "; ";
  const size_t common =
      std::min(expected.counterexamples.size(), actual.counterexamples.size());
  const FailureSet* minimized = nullptr;
  const auto size = [](const FailureSet& f) {
    return f.failedLinks.size() + f.failedDevices.size();
  };
  for (size_t i = 0; i < common; ++i) {
    const FailureSet& e = expected.counterexamples[i];
    const FailureSet& a = actual.counterexamples[i];
    if (e.failedLinks == a.failedLinks && e.failedDevices == a.failedDevices)
      continue;
    if (!minimized || size(e) < size(*minimized)) minimized = &e;
    if (size(a) < size(*minimized)) minimized = &a;
  }
  for (size_t i = common; i < expected.counterexamples.size(); ++i)
    if (!minimized || size(expected.counterexamples[i]) < size(*minimized))
      minimized = &expected.counterexamples[i];
  for (size_t i = common; i < actual.counterexamples.size(); ++i)
    if (!minimized || size(actual.counterexamples[i]) < size(*minimized))
      minimized = &actual.counterexamples[i];
  if (expected.counterexamples.size() != actual.counterexamples.size())
    out += "counterexamples " + std::to_string(expected.counterexamples.size()) +
           " vs " + std::to_string(actual.counterexamples.size()) + "; ";
  if (minimized) out += "minimized scenario: " + minimized->str();
  if (out.empty() && expected.counterexamples.size() == actual.counterexamples.size())
    return std::nullopt;
  if (out.empty()) out = "counterexample lists differ";
  return out;
}

struct SeedCase {
  WanSpec wan;
  WorkloadSpec workload;
  KFailureOptions failure;
  std::string spec;       // The corpus intent under test.
  GeneratedWan generated;
};

SeedCase buildCase(unsigned seed) {
  SeedCase c;
  c.wan.regions = 1 + (seed % 2);
  c.wan.coresPerRegion = 2;
  c.wan.bordersPerRegion = 1;
  c.wan.dcsPerRegion = 1;
  c.wan.ispsPerBorder = (seed % 3 == 0) ? 2 : 1;
  c.wan.dcnCoresPerDc = (seed % 4 == 0) ? 1 : 0;
  c.wan.seed = 1000 + seed;

  c.workload.prefixesPerIsp = 8;  // Covers the corpus's 100.<isp>.<0..7>.0/24.
  c.workload.prefixesPerDc = 4;   // Covers the corpus's 20.<dc>.<0..3>.0/24.
  c.workload.attrGroupSize = 4;
  c.workload.prefixesPerDcnCore = 2;
  // Mostly v4 so intents usually hit announced prefixes; a v6 share on some
  // seeds exercises v6 rows and the no-matching-prefix fallback.
  c.workload.v6Share = (seed % 6 == 0) ? 0.3 : 0.0;
  c.workload.seed = seed;

  c.failure.k = (seed % 5 == 0) ? 2 : 1;
  c.failure.includeDeviceFailures = (seed % 3 == 0);
  c.failure.maxCounterexamples = (seed % 2 == 0) ? 4 : 50;

  c.generated = generateWan(c.wan);
  const std::vector<std::string> corpus = generateRclCorpus(c.generated, 10, seed);
  c.spec = corpus[seed % corpus.size()];
  return c;
}

TEST(SweepPropTest, DerivedHintsSweepMatchesSerialOracleOnRandomCases) {
  size_t scopedSeeds = 0;
  size_t fallbackSeeds = 0;
  size_t prunedScenarios = 0;

  for (unsigned seed = 1; seed <= propSeedCount; ++seed) {
    const SeedCase c = buildCase(seed);
    const std::string context =
        "seed=" + std::to_string(seed) + " spec=\"" + c.spec + "\" k=" +
        std::to_string(c.failure.k) +
        (c.failure.includeDeviceFailures ? " +devices" : "");

    const NetworkModel model = c.generated.buildModel();
    const std::vector<InputRoute> inputs = generateInputRoutes(c.generated, c.workload);

    const rcl::ParseOutcome outcome = rcl::parseIntent(c.spec);
    ASSERT_TRUE(outcome.ok()) << context << " parse error: " << outcome.error;
    const rcl::IntentPtr intent = outcome.intent;
    const NetworkProperty property = [intent](const NetworkModel&,
                                              const NetworkRibs& ribs) {
      rcl::GlobalRib rib = rcl::GlobalRib::fromNetworkRibs(ribs);
      return rcl::checkIntent(*intent, rib, rib).satisfied;
    };

    const KFailureResult serial = checkKFailures(model, inputs, property, c.failure);

    const sweep::DeriveResult derived = sweep::deriveHints(*intent, model, inputs);
    (derived.scoped ? scopedSeeds : fallbackSeeds) += 1;
    const std::string hintNote = describeHints(derived);

    // Unpruned reference sweep: no relevance at all.
    {
      sweep::SweepOptions options;
      options.failure = c.failure;
      options.workers = 3;
      const sweep::SweepResult unpruned =
          sweep::sweepKFailures(model, inputs, property, options);
      const auto diff = diverges(serial, unpruned.result);
      EXPECT_FALSE(diff.has_value())
          << context << " [unpruned workers=3] " << *diff;
      EXPECT_EQ(unpruned.stats.pruned, 0u) << context;
    }

    // Derived-hints sweeps at every worker count.
    for (const size_t workers : {1u, 3u, 6u}) {
      sweep::SweepOptions options;
      options.failure = c.failure;
      options.workers = workers;
      const sweep::SweepResult swept =
          sweep::sweepKFailures(model, inputs, property, options, derived.hints);
      const auto diff = diverges(serial, swept.result);
      EXPECT_FALSE(diff.has_value())
          << context << " [derived workers=" << workers << "] " << hintNote
          << " :: " << *diff;
      // Every enumerated scenario is scheduled, pruned, or deduped; pruning
      // adds the one shared base-network job the pruned scenarios inherit.
      EXPECT_EQ(swept.stats.scheduled + swept.stats.pruned + swept.stats.deduped,
                swept.stats.enumerated + (swept.stats.pruned > 0 ? 1 : 0))
          << context;
      if (!derived.scoped) EXPECT_EQ(swept.stats.pruned, 0u) << context;
      if (swept.stats.evaluated > 0) {
        // CoW accounting: a worker never materializes a full deep copy.
        EXPECT_GT(swept.stats.workerModelPeakBytes, 0u) << context;
        EXPECT_LT(swept.stats.workerModelPeakBytes,
                  swept.stats.workerModelDeepBytes)
            << context;
      }
      if (workers == 3) prunedScenarios += swept.stats.pruned;
    }

    if (::testing::Test::HasFailure()) {
      // One divergence is enough: later seeds would bury the report.
      FAIL() << "divergence at " << context << " | " << hintNote;
    }
  }

  // The corpus mix must exercise both paths (templates 0/2/7/8 scope; 3/4/5/
  // 6/9 fall back) once enough seeds run.
  if (propSeedCount >= 10) {
    EXPECT_GT(scopedSeeds, 0u);
    EXPECT_GT(fallbackSeeds, 0u);
  }
  std::cout << "[sweep-prop] seeds=" << propSeedCount << " scoped=" << scopedSeeds
            << " fallback=" << fallbackSeeds
            << " pruned-scenarios=" << prunedScenarios << "\n";
}

}  // namespace
}  // namespace hoyan

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (const char* env = std::getenv("HOYAN_SWEEP_PROP_SEEDS"))
    hoyan::propSeedCount = static_cast<size_t>(std::strtoul(env, nullptr, 10));
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seeds=", 0) == 0)
      hoyan::propSeedCount = static_cast<size_t>(std::strtoul(arg.c_str() + 8, nullptr, 10));
  }
  if (hoyan::propSeedCount == 0) hoyan::propSeedCount = 1;
  return RUN_ALL_TESTS();
}
