// RCL semantic property tests: evaluator identities checked against direct
// semantics on randomized global RIBs, parameterized field-accessor sweeps,
// and grammar corner cases.
#include <gtest/gtest.h>

#include <random>

#include "rcl/parser.h"
#include "rcl/verify.h"

namespace hoyan::rcl {
namespace {

GlobalRib randomRib(unsigned seed, size_t rows) {
  std::mt19937 rng(seed);
  GlobalRib rib;
  const char* devices[] = {"R1", "R2", "R3", "R4"};
  const char* vrfs[] = {"global", "vrf1"};
  for (size_t i = 0; i < rows; ++i) {
    RibRow row;
    row.device = devices[rng() % 4];
    row.vrf = vrfs[rng() % 2];
    row.prefix = Prefix(IpAddress::v4((10u << 24) | ((rng() % 8) << 16)), 16);
    row.nexthop = *IpAddress::parse("1.1.1." + std::to_string(rng() % 4));
    row.localPref = 100 * (rng() % 3 + 1);
    row.med = rng() % 4 * 5;
    row.weight = rng() % 2 * 100;
    row.igpCost = rng() % 50;
    if (rng() % 2) row.communities.push_back("100:" + std::to_string(rng() % 3));
    std::sort(row.communities.begin(), row.communities.end());
    row.asPath = std::to_string(65000 + rng() % 3);
    row.routeType = rng() % 3 == 0 ? RouteType::kEcmp : RouteType::kBest;
    row.protocol = rng() % 4 == 0 ? Protocol::kStatic : Protocol::kBgp;
    rib.add(std::move(row));
  }
  return rib;
}

// Property: a guarded intent equals evaluating the body on pre-filtered RIBs.
TEST(RclPropertyTest, GuardEqualsManualFilter) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib base = randomRib(seed, 40);
    const GlobalRib updated = randomRib(seed + 100, 40);
    const auto filterByDevice = [](const GlobalRib& rib, const std::string& device) {
      GlobalRib out;
      for (const RibRow& row : rib.rows())
        if (row.device == device) out.add(row);
      return out;
    };
    const std::string body = "PRE |> count() = POST |> count()";
    const CheckResult guarded =
        checkIntentText("device = R1 => " + body, base, updated);
    const CheckResult manual = checkIntentText(body, filterByDevice(base, "R1"),
                                               filterByDevice(updated, "R1"));
    EXPECT_EQ(guarded.satisfied, manual.satisfied) << "seed " << seed;
  }
}

// Property: forall over a field equals the conjunction over its value set.
TEST(RclPropertyTest, ForallEqualsConjunction) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib base = randomRib(seed, 40);
    const GlobalRib updated = randomRib(seed + 100, 40);
    const std::string body = "PRE |> distCnt(nexthop) >= POST |> distCnt(nexthop)";
    const CheckResult whole = checkIntentText("forall device: " + body, base, updated);
    bool conjunction = true;
    for (const char* device : {"R1", "R2", "R3", "R4"}) {
      const CheckResult part = checkIntentText(
          std::string("device = ") + device + " => " + body, base, updated);
      conjunction = conjunction && part.satisfied;
    }
    EXPECT_EQ(whole.satisfied, conjunction) << "seed " << seed;
  }
}

// Property: De Morgan over intents — not (a and b) == (not a) or (not b).
TEST(RclPropertyTest, DeMorganOverIntents) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib base = randomRib(seed, 30);
    const GlobalRib updated = randomRib(seed + 100, 30);
    const std::string a = "PRE |> count() >= 15";
    const std::string b = "POST |> distCnt(device) >= 3";
    const CheckResult lhs =
        checkIntentText("not (" + a + " and " + b + ")", base, updated);
    const CheckResult rhs =
        checkIntentText("not (" + a + ") or not (" + b + ")", base, updated);
    EXPECT_EQ(lhs.satisfied, rhs.satisfied) << "seed " << seed;
  }
}

// Property: PRE = POST iff both directions of containment-ish counting hold
// on identical RIBs; identical inputs always satisfy equality.
TEST(RclPropertyTest, RibEqualityReflexive) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib rib = randomRib(seed, 25);
    EXPECT_TRUE(checkIntentText("PRE = POST", rib, rib).satisfied);
    EXPECT_FALSE(checkIntentText("PRE != POST", rib, rib).satisfied);
  }
}

// Property: filtering never increases count; chained filters compose.
TEST(RclPropertyTest, FilterMonotonicity) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib base = randomRib(seed, 40);
    EXPECT_TRUE(checkIntentText("PRE |> count() >= PRE || device = R1 |> count()",
                                base, base)
                    .satisfied);
    EXPECT_TRUE(checkIntentText(
                    "PRE || device = R1 |> count() >= "
                    "PRE || device = R1 || vrf = vrf1 |> count()",
                    base, base)
                    .satisfied);
    // Filter order commutes.
    EXPECT_TRUE(checkIntentText(
                    "PRE || device = R1 || vrf = vrf1 |> count() = "
                    "PRE || vrf = vrf1 || device = R1 |> count()",
                    base, base)
                    .satisfied);
  }
}

// Parameterized sweep: every field is accessible in predicates and
// aggregates, and distVals/distCnt agree.
class FieldSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FieldSweepTest, DistCntMatchesDistValsCardinality) {
  const GlobalRib base = randomRib(3, 50);
  const std::string field = GetParam();
  // |distVals(f)| == distCnt(f): evaluate via a comparison that must hold.
  const CheckResult result = checkIntentText(
      "PRE |> distCnt(" + field + ") >= 1 and PRE |> distCnt(" + field + ") <= 50",
      base, base);
  EXPECT_TRUE(result.satisfied) << field;
  // The field also works as a forall grouping and a predicate.
  EXPECT_TRUE(checkIntentText("forall " + field + ": PRE |> count() >= 1", base, base)
                  .satisfied)
      << field;
}

INSTANTIATE_TEST_SUITE_P(AllFields, FieldSweepTest,
                         ::testing::Values("device", "vrf", "prefix", "nexthop",
                                           "localPref", "med", "weight", "igpCost",
                                           "aspath", "routeType", "protocol",
                                           "origin"));

// Grammar corners.
TEST(RclGrammarTest, CornerCases) {
  // Empty set literal.
  EXPECT_TRUE(parseIntent("POST |> distVals(nexthop) = {}").ok());
  // Nested parentheses.
  EXPECT_TRUE(parseIntent("((PRE |> count() = 0))").ok());
  // Community values in sets.
  EXPECT_TRUE(parseIntent("POST || communities contains 100:1 |> count() = 0").ok());
  // IPv6 values.
  EXPECT_TRUE(parseIntent("prefix = 2400:db8::/32 => PRE = POST").ok());
  // Chained arithmetic.
  EXPECT_TRUE(parseIntent("PRE |> count() + 1 - 1 * 2 / 2 >= 0").ok());
  // Deeply nested boolean structure.
  EXPECT_TRUE(parseIntent("not (PRE = POST or (POST |> count() = 0 and "
                          "PRE |> count() = 0))")
                  .ok());
}

TEST(RclGrammarTest, EmptySetSemantics) {
  GlobalRib empty;
  GlobalRib one = randomRib(1, 1);
  EXPECT_TRUE(checkIntentText("PRE |> distVals(nexthop) = {}", empty, one).satisfied);
  EXPECT_FALSE(checkIntentText("POST |> distVals(nexthop) = {}", empty, one).satisfied);
}

TEST(RclGrammarTest, SetsCompareOnlyWithEquality) {
  const GlobalRib rib = randomRib(2, 10);
  // Ordered comparison of sets evaluates to false rather than crashing.
  const CheckResult result =
      checkIntentText("PRE |> distVals(nexthop) >= {1.1.1.1}", rib, rib);
  EXPECT_FALSE(result.satisfied);
}

}  // namespace
}  // namespace hoyan::rcl
