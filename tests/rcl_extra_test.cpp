// RCL semantic property tests: evaluator identities checked against direct
// semantics on randomized global RIBs, parameterized field-accessor sweeps,
// and grammar corner cases.
#include <gtest/gtest.h>

#include <random>

#include "rcl/parser.h"
#include "rcl/verify.h"

namespace hoyan::rcl {
namespace {

GlobalRib randomRib(unsigned seed, size_t rows) {
  std::mt19937 rng(seed);
  GlobalRib rib;
  const char* devices[] = {"R1", "R2", "R3", "R4"};
  const char* vrfs[] = {"global", "vrf1"};
  for (size_t i = 0; i < rows; ++i) {
    RibRow row;
    row.device = devices[rng() % 4];
    row.vrf = vrfs[rng() % 2];
    row.prefix = Prefix(IpAddress::v4((10u << 24) | ((rng() % 8) << 16)), 16);
    row.nexthop = *IpAddress::parse("1.1.1." + std::to_string(rng() % 4));
    row.localPref = 100 * (rng() % 3 + 1);
    row.med = rng() % 4 * 5;
    row.weight = rng() % 2 * 100;
    row.igpCost = rng() % 50;
    if (rng() % 2) row.communities.push_back("100:" + std::to_string(rng() % 3));
    std::sort(row.communities.begin(), row.communities.end());
    row.asPath = std::to_string(65000 + rng() % 3);
    row.routeType = rng() % 3 == 0 ? RouteType::kEcmp : RouteType::kBest;
    row.protocol = rng() % 4 == 0 ? Protocol::kStatic : Protocol::kBgp;
    rib.add(std::move(row));
  }
  return rib;
}

// Property: a guarded intent equals evaluating the body on pre-filtered RIBs.
TEST(RclPropertyTest, GuardEqualsManualFilter) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib base = randomRib(seed, 40);
    const GlobalRib updated = randomRib(seed + 100, 40);
    const auto filterByDevice = [](const GlobalRib& rib, const std::string& device) {
      GlobalRib out;
      for (const RibRow& row : rib.rows())
        if (row.device == device) out.add(row);
      return out;
    };
    const std::string body = "PRE |> count() = POST |> count()";
    const CheckResult guarded =
        checkIntentText("device = R1 => " + body, base, updated);
    const CheckResult manual = checkIntentText(body, filterByDevice(base, "R1"),
                                               filterByDevice(updated, "R1"));
    EXPECT_EQ(guarded.satisfied, manual.satisfied) << "seed " << seed;
  }
}

// Property: forall over a field equals the conjunction over its value set.
TEST(RclPropertyTest, ForallEqualsConjunction) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib base = randomRib(seed, 40);
    const GlobalRib updated = randomRib(seed + 100, 40);
    const std::string body = "PRE |> distCnt(nexthop) >= POST |> distCnt(nexthop)";
    const CheckResult whole = checkIntentText("forall device: " + body, base, updated);
    bool conjunction = true;
    for (const char* device : {"R1", "R2", "R3", "R4"}) {
      const CheckResult part = checkIntentText(
          std::string("device = ") + device + " => " + body, base, updated);
      conjunction = conjunction && part.satisfied;
    }
    EXPECT_EQ(whole.satisfied, conjunction) << "seed " << seed;
  }
}

// Property: De Morgan over intents — not (a and b) == (not a) or (not b).
TEST(RclPropertyTest, DeMorganOverIntents) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib base = randomRib(seed, 30);
    const GlobalRib updated = randomRib(seed + 100, 30);
    const std::string a = "PRE |> count() >= 15";
    const std::string b = "POST |> distCnt(device) >= 3";
    const CheckResult lhs =
        checkIntentText("not (" + a + " and " + b + ")", base, updated);
    const CheckResult rhs =
        checkIntentText("not (" + a + ") or not (" + b + ")", base, updated);
    EXPECT_EQ(lhs.satisfied, rhs.satisfied) << "seed " << seed;
  }
}

// Property: PRE = POST iff both directions of containment-ish counting hold
// on identical RIBs; identical inputs always satisfy equality.
TEST(RclPropertyTest, RibEqualityReflexive) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib rib = randomRib(seed, 25);
    EXPECT_TRUE(checkIntentText("PRE = POST", rib, rib).satisfied);
    EXPECT_FALSE(checkIntentText("PRE != POST", rib, rib).satisfied);
  }
}

// Property: filtering never increases count; chained filters compose.
TEST(RclPropertyTest, FilterMonotonicity) {
  for (unsigned seed = 1; seed <= 8; ++seed) {
    const GlobalRib base = randomRib(seed, 40);
    EXPECT_TRUE(checkIntentText("PRE |> count() >= PRE || device = R1 |> count()",
                                base, base)
                    .satisfied);
    EXPECT_TRUE(checkIntentText(
                    "PRE || device = R1 |> count() >= "
                    "PRE || device = R1 || vrf = vrf1 |> count()",
                    base, base)
                    .satisfied);
    // Filter order commutes.
    EXPECT_TRUE(checkIntentText(
                    "PRE || device = R1 || vrf = vrf1 |> count() = "
                    "PRE || vrf = vrf1 || device = R1 |> count()",
                    base, base)
                    .satisfied);
  }
}

// Parameterized sweep: every field is accessible in predicates and
// aggregates, and distVals/distCnt agree.
class FieldSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FieldSweepTest, DistCntMatchesDistValsCardinality) {
  const GlobalRib base = randomRib(3, 50);
  const std::string field = GetParam();
  // |distVals(f)| == distCnt(f): evaluate via a comparison that must hold.
  const CheckResult result = checkIntentText(
      "PRE |> distCnt(" + field + ") >= 1 and PRE |> distCnt(" + field + ") <= 50",
      base, base);
  EXPECT_TRUE(result.satisfied) << field;
  // The field also works as a forall grouping and a predicate.
  EXPECT_TRUE(checkIntentText("forall " + field + ": PRE |> count() >= 1", base, base)
                  .satisfied)
      << field;
}

INSTANTIATE_TEST_SUITE_P(AllFields, FieldSweepTest,
                         ::testing::Values("device", "vrf", "prefix", "nexthop",
                                           "localPref", "med", "weight", "igpCost",
                                           "aspath", "routeType", "protocol",
                                           "origin"));

// Grammar corners.
TEST(RclGrammarTest, CornerCases) {
  // Empty set literal.
  EXPECT_TRUE(parseIntent("POST |> distVals(nexthop) = {}").ok());
  // Nested parentheses.
  EXPECT_TRUE(parseIntent("((PRE |> count() = 0))").ok());
  // Community values in sets.
  EXPECT_TRUE(parseIntent("POST || communities contains 100:1 |> count() = 0").ok());
  // IPv6 values.
  EXPECT_TRUE(parseIntent("prefix = 2400:db8::/32 => PRE = POST").ok());
  // Chained arithmetic.
  EXPECT_TRUE(parseIntent("PRE |> count() + 1 - 1 * 2 / 2 >= 0").ok());
  // Deeply nested boolean structure.
  EXPECT_TRUE(parseIntent("not (PRE = POST or (POST |> count() = 0 and "
                          "PRE |> count() = 0))")
                  .ok());
}

TEST(RclGrammarTest, EmptySetSemantics) {
  GlobalRib empty;
  GlobalRib one = randomRib(1, 1);
  EXPECT_TRUE(checkIntentText("PRE |> distVals(nexthop) = {}", empty, one).satisfied);
  EXPECT_FALSE(checkIntentText("POST |> distVals(nexthop) = {}", empty, one).satisfied);
}

TEST(RclGrammarTest, SetsCompareOnlyWithEquality) {
  const GlobalRib rib = randomRib(2, 10);
  // Ordered comparison of sets evaluates to false rather than crashing.
  const CheckResult result =
      checkIntentText("PRE |> distVals(nexthop) >= {1.1.1.1}", rib, rib);
  EXPECT_FALSE(result.satisfied);
}

// --- printer/parser round trip ----------------------------------------------

// Generates random grammar-shaped ASTs whose printed form must reparse to an
// equivalent AST. Scalars stick to forms that re-lex canonically: integers
// (non-integer doubles render as "1.500000", which is not a numeric token),
// identifier-safe names, and canonical prefixes/addresses/communities.
class AstGen {
 public:
  explicit AstGen(unsigned seed) : rng_(seed) {}

  IntentPtr intent(int depth) {
    auto node = std::make_shared<Intent>();
    switch (pick(depth > 0 ? 8 : 2)) {
      case 0:
        node->kind = Intent::Kind::kRibCompare;
        node->transformLeft = transform(depth);
        node->transformRight = transform(depth);
        node->ribEqual = pick(2) == 0;
        break;
      case 1:
        node->kind = Intent::Kind::kEvalCompare;
        node->evalLeft = evaluation(depth);
        node->evalRight = evaluation(depth);
        node->op = compareOp();
        break;
      case 2:
        node->kind = Intent::Kind::kGuarded;
        node->guard = predicate(depth - 1);
        node->left = intent(depth - 1);
        break;
      case 3: {
        node->kind = Intent::Kind::kForall;
        node->forallField = field();
        if (pick(2) == 0) {
          ScalarSet values;
          values.insert(Scalar::str("R1"));
          values.insert(Scalar::str("R2"));
          node->forallValues = values;
        }
        node->left = intent(depth - 1);
        break;
      }
      case 4:
      case 5:
      case 6:
        node->kind = pick(3) == 0   ? Intent::Kind::kAnd
                     : pick(2) == 0 ? Intent::Kind::kOr
                                    : Intent::Kind::kImply;
        node->left = intent(depth - 1);
        node->right = intent(depth - 1);
        break;
      default:
        node->kind = Intent::Kind::kNot;
        node->left = intent(depth - 1);
        break;
    }
    return node;
  }

 private:
  size_t pick(size_t n) { return rng_() % n; }

  Field field() {
    static const Field kFields[] = {Field::kDevice,    Field::kVrf,
                                    Field::kPrefix,    Field::kNexthop,
                                    Field::kLocalPref, Field::kMed,
                                    Field::kAsPath,    Field::kProtocol};
    return kFields[pick(std::size(kFields))];
  }

  CompareOp compareOp() {
    static const CompareOp kOps[] = {CompareOp::kGt, CompareOp::kGe, CompareOp::kEq,
                                     CompareOp::kNe, CompareOp::kLt, CompareOp::kLe};
    return kOps[pick(std::size(kOps))];
  }

  Scalar scalar() {
    switch (pick(4)) {
      case 0: return Scalar::num(static_cast<double>(pick(1000)));
      case 1: return Scalar::str("R" + std::to_string(pick(9)));
      case 2:
        return Scalar::str("10." + std::to_string(pick(200)) + ".0.0/16");
      default:
        return Scalar::str(std::to_string(100 + pick(100)) + ":" +
                           std::to_string(pick(10)));
    }
  }

  PredicatePtr predicate(int depth) {
    auto node = std::make_shared<Predicate>();
    switch (pick(depth > 0 ? 7 : 4)) {
      case 0:
        node->kind = Predicate::Kind::kFieldCompare;
        node->field = field();
        node->op = compareOp();
        node->value = scalar();
        break;
      case 1:
        node->kind = Predicate::Kind::kContains;
        node->field = Field::kCommunities;
        node->value = Scalar::str("100:" + std::to_string(pick(5)));
        break;
      case 2:
        node->kind = Predicate::Kind::kInSet;
        node->field = field();
        for (size_t i = 0, n = pick(3) + 1; i < n; ++i)
          node->valueSet.insert(scalar());
        break;
      case 3:
        node->kind = Predicate::Kind::kMatches;
        node->field = field();
        node->regex = "R[0-9]+";
        break;
      case 4:
      case 5:
        node->kind = pick(3) == 0   ? Predicate::Kind::kAnd
                     : pick(2) == 0 ? Predicate::Kind::kOr
                                    : Predicate::Kind::kImply;
        node->left = predicate(depth - 1);
        node->right = predicate(depth - 1);
        break;
      default:
        node->kind = Predicate::Kind::kNot;
        node->left = predicate(depth - 1);
        break;
    }
    return node;
  }

  TransformPtr transform(int depth) {
    auto node = std::make_shared<Transform>();
    switch (pick(depth > 0 ? 4 : 2)) {
      case 0: node->kind = Transform::Kind::kPre; break;
      case 1: node->kind = Transform::Kind::kPost; break;
      case 2:
        node->kind = Transform::Kind::kFilter;
        node->inner = transform(depth - 1);
        node->predicate = predicate(depth - 1);
        break;
      default:
        node->kind = Transform::Kind::kConcat;
        node->inner = transform(depth - 1);
        node->right = transform(depth - 1);
        break;
    }
    return node;
  }

  EvaluationPtr evaluation(int depth) {
    auto node = std::make_shared<Evaluation>();
    switch (pick(depth > 0 ? 4 : 3)) {
      case 0:
        node->kind = Evaluation::Kind::kLiteral;
        node->literal = Value::fromScalar(Scalar::num(static_cast<double>(pick(100))));
        break;
      case 1: {
        node->kind = Evaluation::Kind::kLiteral;
        ScalarSet set;
        for (size_t i = 0, n = pick(3); i < n; ++i) set.insert(scalar());
        node->literal = Value::fromSet(std::move(set));
        break;
      }
      case 2:
        node->kind = Evaluation::Kind::kAggregate;
        node->transform = transform(depth - 1);
        node->func = static_cast<AggFunc>(pick(3));
        node->field = field();
        break;
      default:
        node->kind = Evaluation::Kind::kArithmetic;
        node->arithOp = "+-*/"[pick(4)];
        node->left = evaluation(depth - 1);
        node->right = evaluation(depth - 1);
        break;
    }
    return node;
  }

  std::mt19937 rng_;
};

// Property: print -> parse -> print is the identity, and the reparsed AST has
// the same internal-node count (the Fig. 8 size metric).
TEST(RclRoundTripTest, PrintedIntentsReparseToEquivalentAsts) {
  for (unsigned seed = 1; seed <= 200; ++seed) {
    AstGen gen(seed);
    const IntentPtr original = gen.intent(4);
    const std::string text = original->str();
    const ParseOutcome outcome = parseIntent(text);
    ASSERT_TRUE(outcome.ok()) << "seed " << seed << ": " << text << "\n  error: "
                              << outcome.error;
    EXPECT_EQ(outcome.intent->str(), text) << "seed " << seed;
    EXPECT_EQ(outcome.intent->internalNodes(), original->internalNodes())
        << "seed " << seed << ": " << text;
  }
}

// Malformed-input corpus: deterministic mutations of valid specifications
// (truncations, deletions, substitutions, insertions) must either parse or
// report a ParseError through the outcome — never crash or throw past
// parseIntent.
TEST(RclFuzzTest, MutatedSpecificationsNeverCrashTheParser) {
  std::vector<std::string> corpus = {
      "device = R1 => PRE = POST",
      "forall device in {R1, R2}: PRE |> count() = POST |> count()",
      "not (PRE || (prefix = 10.0.0.0/16) |> distCnt(nexthop) >= 2)",
      "(PRE ++ POST) || (communities contains 100:1) |> count() = 0",
      "POST |> distVals(nexthop) = {1.1.1.1, 2.2.2.2}",
      "aspath matches \"R[0-9]+\" => (PRE |> count() + 1) * 2 >= 0",
  };
  for (unsigned seed = 1; seed <= 20; ++seed)
    corpus.push_back(AstGen(seed).intent(3)->str());

  const std::string alphabet = "()|>=!<{}:,.\"* +-/R10 \t";
  size_t parsed = 0, rejected = 0;
  for (const std::string& base : corpus) {
    for (size_t i = 0; i < base.size(); i += 1 + i / 8) {
      std::vector<std::string> mutants;
      mutants.push_back(base.substr(0, i));                      // truncate
      mutants.push_back(base.substr(0, i) + base.substr(i + 1)); // delete
      std::string sub = base;
      sub[i] = alphabet[i % alphabet.size()];                    // substitute
      mutants.push_back(sub);
      std::string ins = base;
      ins.insert(i, 1, alphabet[(i * 7) % alphabet.size()]);     // insert
      mutants.push_back(ins);
      for (const std::string& mutant : mutants) {
        try {
          const ParseOutcome outcome = parseIntent(mutant);
          if (outcome.ok()) {
            ++parsed;
            EXPECT_FALSE(outcome.intent->str().empty());
          } else {
            ++rejected;
            EXPECT_FALSE(outcome.error.empty()) << mutant;
          }
        } catch (...) {
          FAIL() << "parser threw on: " << mutant;
        }
      }
    }
  }
  // The corpus must exercise both accepting and rejecting paths.
  EXPECT_GT(parsed, 0u);
  EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace hoyan::rcl
