// Tests for the hoyan_inspect analysis library (tools/inspect.h): the flat
// JSON-object reader, journal schema validation, per-run aggregation, and the
// straggler / worker-utilization / cold-vs-warm-diff analyses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "inspect.h"
#include "obs/journal.h"

namespace hoyan {
namespace {

// --- flat JSON parsing -------------------------------------------------------

TEST(InspectParseTest, ReadsStringsNumbersAndEscapes) {
  inspect::Event event;
  ASSERT_TRUE(inspect::parseJsonObject(
      R"({"ev":"run_begin","run":3,"id":"plan \"x\"\n","ms":1.5e2,"ok":true})",
      event));
  EXPECT_EQ(event.ev, "run_begin");
  EXPECT_EQ(event.num("run").value_or(-1), 3.0);
  EXPECT_EQ(event.str("id"), "plan \"x\"\n");
  EXPECT_EQ(event.num("ms").value_or(-1), 150.0);
  EXPECT_EQ(event.str("ok"), "true");
  EXPECT_FALSE(event.num("absent").has_value());
}

TEST(InspectParseTest, RejectsMalformedObjects) {
  inspect::Event event;
  EXPECT_FALSE(inspect::parseJsonObject("", event));
  EXPECT_FALSE(inspect::parseJsonObject("{", event));
  EXPECT_FALSE(inspect::parseJsonObject(R"({"a":1)", event));
  EXPECT_FALSE(inspect::parseJsonObject(R"({"a" 1})", event));
  EXPECT_FALSE(inspect::parseJsonObject(R"({"a":1} trailing)", event));
  EXPECT_FALSE(inspect::parseJsonObject(R"({"a":{"nested":1}})", event));
}

TEST(InspectParseTest, ParseJournalReportsTheOffendingLine) {
  std::vector<inspect::Event> events;
  std::string error;
  EXPECT_TRUE(inspect::parseJournal(
      "{\"ev\":\"phase_begin\",\"run\":1,\"phase\":\"p\"}\n\n", events, error));
  EXPECT_EQ(events.size(), 1u);  // Blank lines are skipped.
  events.clear();
  EXPECT_FALSE(inspect::parseJournal(
      "{\"ev\":\"phase_begin\",\"run\":1,\"phase\":\"p\"}\nnot json\n", events,
      error));
  EXPECT_NE(error.find("2"), std::string::npos) << error;
}

// --- validation --------------------------------------------------------------

TEST(InspectValidateTest, FlagsUnknownEventsAndMissingFields) {
  std::string error;
  EXPECT_TRUE(inspect::validateJournal(
      "{\"ev\":\"cache_hit\",\"run\":1,\"phase\":\"route\",\"id\":\"route-0\","
      "\"key\":\"cas/r/1\"}\n",
      error));
  EXPECT_FALSE(inspect::validateJournal("{\"ev\":\"bogus\",\"run\":1}\n", error));
  EXPECT_NE(error.find("unknown event type"), std::string::npos) << error;
  // Missing required field (`key` on cache_hit).
  EXPECT_FALSE(inspect::validateJournal(
      "{\"ev\":\"cache_hit\",\"run\":1,\"phase\":\"route\",\"id\":\"route-0\"}\n",
      error));
  EXPECT_NE(error.find("key"), std::string::npos) << error;
  // Missing `run` (required on everything but journal_summary).
  EXPECT_FALSE(inspect::validateJournal(
      "{\"ev\":\"phase_begin\",\"phase\":\"route\"}\n", error));
  EXPECT_NE(error.find("run"), std::string::npos) << error;
  EXPECT_TRUE(inspect::validateJournal(
      "{\"ev\":\"journal_summary\",\"events\":0,\"dropped\":0}\n", error))
      << error;
}

// --- aggregation over a real journal ----------------------------------------

// Builds a two-run journal through the production emitters, so aggregation is
// tested against exactly what RunJournal writes.
std::vector<inspect::Event> makeJournalEvents() {
  obs::RunJournal journal({.enabled = true});
  journal.runBegin("cold", 0xabc);
  journal.phaseBegin("route.exec");
  journal.subtaskEnqueue("route", "route-0");
  journal.subtaskStart("route", "route-0", 1, 0);
  journal.subtaskFinish("route", "route-0", 1, 0, 0.010);
  journal.subtaskEnqueue("route", "route-1");
  journal.subtaskStart("route", "route-1", 1, 1);
  journal.subtaskRetry("route", "route-1", 1);
  journal.subtaskStart("route", "route-1", 2, 1);
  journal.subtaskFinish("route", "route-1", 2, 1, 0.040);
  journal.phaseEnd("route.exec", 0.060);
  journal.runEnd("cold", 0.100);
  journal.runBegin("warm", 0xabc);
  journal.impact("scoped", "one device", 1, 1);
  journal.cacheHit("route", "route-0", "cas/r/0");
  journal.cacheMiss("route", "route-1", "cas/r/1");
  journal.cacheBypass("prov_filter_mismatch", "route-1", "cas/r/1");
  journal.cacheEvict("cas/r/stale", 1024);
  journal.ribAssembly("assembled", 5, 1, 900, 10);
  journal.runEnd("warm", 0.020);

  std::vector<inspect::Event> events;
  std::string error;
  EXPECT_TRUE(inspect::parseJournal(journal.toJsonl(), events, error)) << error;
  return events;
}

TEST(InspectAggregateTest, BuildsPerRunPhaseAndCacheStats) {
  const inspect::JournalStats stats = inspect::aggregate(makeJournalEvents());
  ASSERT_EQ(stats.runs.size(), 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.totalCacheHits, 1u);
  EXPECT_EQ(stats.totalCacheMisses, 1u);
  EXPECT_EQ(stats.totalCacheBypasses, 1u);

  const inspect::RunStats& cold = stats.runs[0];
  EXPECT_EQ(cold.name, "cold");
  EXPECT_NEAR(cold.wallMs, 100.0, 1e-6);
  ASSERT_TRUE(cold.phases.count("route.exec"));
  EXPECT_NEAR(cold.phases.at("route.exec").wallMs, 60.0, 1e-6);
  ASSERT_TRUE(cold.phases.count("route"));
  EXPECT_EQ(cold.phases.at("route").enqueued, 2u);
  EXPECT_EQ(cold.phases.at("route").finished, 2u);
  EXPECT_EQ(cold.phases.at("route").retries, 1u);
  EXPECT_NEAR(cold.phases.at("route").subtaskMsTotal, 50.0, 1e-6);

  const inspect::RunStats& warm = stats.runs[1];
  EXPECT_EQ(warm.name, "warm");
  EXPECT_EQ(warm.impactVerdict, "scoped");
  EXPECT_EQ(warm.cacheBypasses, 1u);
  EXPECT_EQ(warm.cacheEvictions, 1u);
  EXPECT_EQ(warm.ribOutcome, "assembled");
  EXPECT_EQ(warm.ribRowsReused, 900.0);
}

TEST(InspectSweepTest, AggregatesAndRendersSweepEvents) {
  // Sweep events built through the production emitters: a 300-scenario plan
  // with pruning/dedupe, two committed verdicts, and the final accounting.
  obs::RunJournal journal({.enabled = true});
  journal.runBegin("fault-sweep", 0xfee1);
  journal.sweepPlan("fault_sweep", 300, 30, 12, 258, "derived");
  journal.sweepVerdict("fault_sweep", "s000000", true, "cas/k/a0", 0);
  journal.sweepVerdict("fault_sweep", "s000001", false, "cas/k/b1", 2);
  journal.sweepResult("fault_sweep", 300, 1, 240, 3);
  journal.runEnd("fault-sweep", 0.5);

  std::string error;
  ASSERT_TRUE(inspect::validateJournal(journal.toJsonl(), error)) << error;
  std::vector<inspect::Event> events;
  ASSERT_TRUE(inspect::parseJournal(journal.toJsonl(), events, error)) << error;

  const inspect::JournalStats stats = inspect::aggregate(events);
  ASSERT_EQ(stats.runs.size(), 1u);
  const inspect::RunStats& run = stats.runs[0];
  EXPECT_TRUE(run.sweepSeen);
  EXPECT_EQ(run.sweepEnumerated, 300.0);
  EXPECT_EQ(run.sweepPruned, 30.0);
  EXPECT_EQ(run.sweepDeduped, 12.0);
  EXPECT_EQ(run.sweepScheduled, 258.0);
  EXPECT_EQ(run.sweepVerdictPass, 1u);
  EXPECT_EQ(run.sweepVerdictFail, 1u);
  EXPECT_EQ(run.sweepChecked, 300.0);
  EXPECT_EQ(run.sweepCounterexamples, 1.0);
  EXPECT_EQ(run.sweepCacheHits, 240.0);
  EXPECT_EQ(run.sweepRetries, 3.0);
  EXPECT_EQ(run.sweepHintSource, "derived");

  const std::string summary = inspect::renderSummary(stats);
  EXPECT_NE(summary.find("sweep: 300 scenarios (30 pruned 10.0%, 12 deduped), "
                         "258 jobs scheduled [hints: derived]"),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("sweep verdicts: 1 pass / 1 fail (300 committed, "
                         "1 counterexamples), 240 cached verdicts, 3 retries"),
            std::string::npos)
      << summary;
}

// --- stragglers --------------------------------------------------------------

TEST(InspectStragglerTest, FindsDurationsFarAboveTheMedian) {
  obs::RunJournal journal({.enabled = true});
  journal.runBegin("run", 1);
  for (int i = 0; i < 7; ++i)
    journal.subtaskFinish("route", "route-" + std::to_string(i), 1, i % 2, 0.010);
  journal.subtaskFinish("route", "route-slow", 1, 1, 0.100);
  // A phase with < 4 finishes is skipped (no meaningful median).
  journal.subtaskFinish("traffic", "traffic-slow", 1, 0, 5.0);
  std::vector<inspect::Event> events;
  std::string error;
  ASSERT_TRUE(inspect::parseJournal(journal.toJsonl(), events, error));

  const auto stragglers = inspect::findStragglers(events, 3.0);
  ASSERT_EQ(stragglers.size(), 1u);
  EXPECT_EQ(stragglers[0].id, "route-slow");
  EXPECT_EQ(stragglers[0].phase, "route");
  EXPECT_NEAR(stragglers[0].ms, 100.0, 1e-6);
  EXPECT_NEAR(stragglers[0].medianMs, 10.0, 1e-6);
  EXPECT_TRUE(inspect::findStragglers(events, 20.0).empty());
}

// --- worker utilization ------------------------------------------------------

TEST(InspectWorkerTest, AccumulatesBusyTimePerWorker) {
  obs::RunJournal journal({.enabled = true});
  journal.runBegin("run", 1);
  journal.subtaskStart("route", "route-0", 1, 0);
  journal.subtaskFinish("route", "route-0", 1, 0, 0.030);
  journal.subtaskStart("route", "route-1", 1, 1);
  journal.subtaskFinish("route", "route-1", 1, 1, 0.010);
  journal.subtaskStart("route", "route-2", 1, 1);
  journal.subtaskFinish("route", "route-2", 1, 1, 0.020);
  std::vector<inspect::Event> events;
  std::string error;
  ASSERT_TRUE(inspect::parseJournal(journal.toJsonl(), events, error));

  const auto workers = inspect::workerUtilization(events);
  ASSERT_EQ(workers.size(), 2u);
  EXPECT_EQ(workers[0].worker, 0);
  EXPECT_EQ(workers[0].subtasks, 1u);
  EXPECT_NEAR(workers[0].busyMs, 30.0, 1e-6);
  EXPECT_EQ(workers[1].worker, 1);
  EXPECT_EQ(workers[1].subtasks, 2u);
  EXPECT_NEAR(workers[1].busyMs, 30.0, 1e-6);
}

// --- diff --------------------------------------------------------------------

inspect::JournalStats statsForRun(const char* name, uint64_t fp, double runSeconds,
                                  double execSeconds, size_t hits, size_t misses) {
  obs::RunJournal journal({.enabled = true});
  journal.runBegin(name, fp);
  journal.phaseBegin("route.exec");
  for (size_t i = 0; i < hits; ++i)
    journal.cacheHit("route", "route-" + std::to_string(i), "cas/r/h");
  for (size_t i = 0; i < misses; ++i) {
    const std::string id = "route-" + std::to_string(hits + i);
    journal.cacheMiss("route", id, "cas/r/m");
    journal.subtaskFinish("route", id, 1, 0, execSeconds / misses);
  }
  journal.phaseEnd("route.exec", execSeconds);
  journal.runEnd(name, runSeconds);
  std::vector<inspect::Event> events;
  std::string error;
  EXPECT_TRUE(inspect::parseJournal(journal.toJsonl(), events, error)) << error;
  return inspect::aggregate(events);
}

TEST(InspectDiffTest, AttributesWarmSavingsToCacheHits) {
  const auto cold = statsForRun("plan", 0x77, 10.0, 8.0, 0, 16);
  const auto warm = statsForRun("plan", 0x77, 2.0, 1.0, 14, 2);
  const std::string diff = inspect::renderDiff(cold, warm);
  EXPECT_NE(diff.find("route.exec"), std::string::npos) << diff;
  EXPECT_NE(diff.find("cache hits 0 -> 14"), std::string::npos) << diff;
  EXPECT_NE(diff.find("executed 16 -> 2"), std::string::npos) << diff;
  EXPECT_NE(diff.find("20.0% of cold wall time"), std::string::npos) << diff;
  EXPECT_EQ(diff.find("WARNING"), std::string::npos) << diff;
}

TEST(InspectDiffTest, WarnsWhenOptionsFingerprintsDiffer) {
  const auto cold = statsForRun("plan", 0x1, 10.0, 8.0, 0, 4);
  const auto warm = statsForRun("plan", 0x2, 2.0, 1.0, 3, 1);
  const std::string diff = inspect::renderDiff(cold, warm);
  EXPECT_NE(diff.find("WARNING"), std::string::npos) << diff;
}

}  // namespace
}  // namespace hoyan
