// Determinism: the whole pipeline must produce byte-identical results across
// runs and worker counts — the distributed master merges subtask results in
// a fixed order and every engine stage orders its work deterministically.
// (The paper's post-change validation use case (§6.2) treats Hoyan's output
// as ground truth; nondeterminism would poison it.)
#include <gtest/gtest.h>

#include <random>

#include "core/hoyan.h"
#include "dist/dist_sim.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "obs/provenance.h"
#include "rcl/global_rib.h"

namespace hoyan {
namespace {

std::vector<std::string> renderedRows(const NetworkRibs& ribs) {
  const rcl::GlobalRib global = rcl::GlobalRib::fromNetworkRibs(ribs);
  std::vector<std::string> out;
  out.reserve(global.size());
  for (const rcl::RibRow& row : global.rows()) out.push_back(row.str());
  return out;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WanSpec spec;
    spec.regions = 3;
    wan_ = generateWan(spec);
    WorkloadSpec workload;
    workload.prefixesPerIsp = 24;
    workload.prefixesPerDc = 8;
    workload.v6Share = 0.25;
    inputs_ = generateInputRoutes(wan_, workload);
    flows_ = generateFlows(wan_, workload, 800);
  }

  NetworkRibs runDistributed(size_t workers, size_t subtasks,
                             obs::ProvenanceRecorder* provenance = nullptr) {
    const NetworkModel model = wan_.buildModel();
    DistSimOptions options;
    options.workers = workers;
    options.routeSubtasks = subtasks;
    options.routeOptions.provenance = provenance;
    DistributedSimulator simulator(model, options);
    DistRouteResult result = simulator.runRouteSimulation(inputs_);
    EXPECT_TRUE(result.succeeded);
    return std::move(result.ribs);
  }

  GeneratedWan wan_;
  std::vector<InputRoute> inputs_;
  std::vector<Flow> flows_;
};

TEST_F(DeterminismTest, RepeatedRunsProduceIdenticalGlobalRibs) {
  const auto first = renderedRows(runDistributed(4, 16));
  const auto second = renderedRows(runDistributed(4, 16));
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]) << i;
}

TEST_F(DeterminismTest, WorkerCountDoesNotChangeResults) {
  const auto two = renderedRows(runDistributed(2, 16));
  const auto eight = renderedRows(runDistributed(8, 16));
  ASSERT_EQ(two.size(), eight.size());
  for (size_t i = 0; i < two.size(); ++i) EXPECT_EQ(two[i], eight[i]) << i;
}

TEST_F(DeterminismTest, SubtaskCountDoesNotChangeResults) {
  const auto few = renderedRows(runDistributed(4, 4));
  const auto many = renderedRows(runDistributed(4, 64));
  ASSERT_EQ(few.size(), many.size());
  for (size_t i = 0; i < few.size(); ++i) EXPECT_EQ(few[i], many[i]) << i;
}

TEST_F(DeterminismTest, ProvenanceLogIsIdenticalAcrossWorkerCounts) {
  // The master merges per-subtask provenance in subtask order and emits
  // selection events from the final merged RIBs, so with a fixed subtask
  // count the rendered log must be byte-identical for any worker count.
  obs::ProvenanceOptions provOptions;
  provOptions.enabled = true;
  provOptions.totalEventCap = 1u << 20;
  provOptions.perDeviceEventCap = 1u << 16;
  const auto rendered = [&](size_t workers) {
    obs::ProvenanceRecorder recorder(provOptions);
    runDistributed(workers, 16, &recorder);
    std::string out;
    for (const obs::RouteEvent& event : recorder.snapshot())
      out += event.str() + "\n";
    EXPECT_EQ(recorder.droppedEvents(), 0u) << "caps too small for the fixture";
    return out;
  };
  const std::string two = rendered(2);
  const std::string eight = rendered(8);
  EXPECT_GT(two.size(), 0u);
  EXPECT_EQ(two, eight);
}

TEST_F(DeterminismTest, IncrementalWarmRunsAreByteIdenticalToColdRuns) {
  // The incremental engine's cache must be invisible in the results: for a
  // corpus with both a prefix-scoped change (partial cache reuse) and an
  // all-dirty change (full re-run), a cache-enabled Hoyan must produce
  // byte-identical RIB rows, matching link loads, and identical RCL verdicts
  // to a cache-less one, at more than one worker count.
  ChangePlan scoped;
  scoped.name = "scoped";
  scoped.commands =
      "device BR-0-0\n"
      "ip-prefix LP-DET index 10 permit 100.0.8.0/24\n"
      "route-policy ISP-IN-0 node 800 permit\n"
      " match ip-prefix LP-DET\n"
      " apply local-pref 150\n";
  ChangePlan allDirty;
  allDirty.name = "all-dirty";
  allDirty.commands = "device CORE-0-0\nstatic-route 77.0.0.0/8 discard\n";
  IntentSet intents;
  intents.rclIntents = {"not prefix = 100.0.8.0/24 => PRE = POST"};
  intents.maxLinkUtilization = 5.0;  // Forces the traffic phase.

  for (const size_t workers : {2u, 7u}) {
    const auto makeHoyan = [&](bool incremental) {
      auto hoyan = std::make_unique<Hoyan>(wan_.topology, wan_.configs);
      hoyan->setInputRoutes(inputs_);
      hoyan->setInputFlows(flows_);
      DistSimOptions options;
      options.workers = workers;
      options.routeSubtasks = 16;
      options.trafficSubtasks = 8;
      hoyan->setSimulationOptions(options);
      if (incremental) hoyan->enableIncremental();
      hoyan->preprocess();
      return hoyan;
    };
    auto cold = makeHoyan(false);
    auto warm = makeHoyan(true);
    // Repeat the scoped plan so the warm run also exercises full-hit replay.
    for (const ChangePlan* plan : {&scoped, &allDirty, &scoped}) {
      const ChangeVerificationResult coldResult = cold->verifyChange(*plan, intents);
      const ChangeVerificationResult warmResult = warm->verifyChange(*plan, intents);
      const auto coldRows = renderedRows(coldResult.updatedRibs);
      const auto warmRows = renderedRows(warmResult.updatedRibs);
      ASSERT_EQ(coldRows.size(), warmRows.size()) << plan->name << " w" << workers;
      for (size_t i = 0; i < coldRows.size(); ++i)
        ASSERT_EQ(coldRows[i], warmRows[i]) << plan->name << " w" << workers;
      ASSERT_EQ(coldResult.updatedLinkLoads.size(), warmResult.updatedLinkLoads.size());
      for (const auto& entry : coldResult.updatedLinkLoads.entries())
        EXPECT_NEAR(warmResult.updatedLinkLoads.get(entry.from, entry.to), entry.bps,
                    1e-9)
            << plan->name << " w" << workers;
      ASSERT_EQ(coldResult.rclOutcomes.size(), warmResult.rclOutcomes.size());
      for (size_t i = 0; i < coldResult.rclOutcomes.size(); ++i)
        EXPECT_EQ(coldResult.rclOutcomes[i].result.satisfied,
                  warmResult.rclOutcomes[i].result.satisfied)
            << plan->name << " w" << workers;
    }
    // The scoped plan's final repetition must actually have reused results.
    const ChangeVerificationResult warmAgain = warm->verifyChange(scoped, intents);
    EXPECT_GT(warmAgain.routeSubtaskCacheHits, 0u) << "w" << workers;
  }
}

TEST_F(DeterminismTest, RandomizedChangePlansMatchWarmVsCold) {
  // Randomized differential: a seeded stream of change plans — prefix-scoped
  // policy edits on random border routers interleaved with all-dirty static
  // routes on random cores — verified by a cache-enabled and a cache-less
  // pipeline. Every observable (RIB rows, RCL counterexample text, loads)
  // must be byte-identical; plans repeat so the warm side also replays
  // whole-table and full-hit paths.
  std::mt19937 rng(20250806);
  std::vector<ChangePlan> plans;
  for (int i = 0; i < 6; ++i) {
    ChangePlan plan;
    const unsigned region = rng() % 3;
    if (rng() % 10 < 7) {
      const unsigned octet = rng() % 24;
      plan.name = "rand-scoped-" + std::to_string(i);
      plan.commands = "device BR-" + std::to_string(region) +
                      "-0\n"
                      "ip-prefix LP-RAND-" +
                      std::to_string(i) + " index 10 permit 100." +
                      std::to_string(region) + "." + std::to_string(octet) +
                      ".0/24\n"
                      "route-policy ISP-IN-" +
                      std::to_string(region) + " node " +
                      std::to_string(800 + i) +
                      " permit\n"
                      " match ip-prefix LP-RAND-" +
                      std::to_string(i) +
                      "\n"
                      " apply local-pref " +
                      std::to_string(110 + 10 * (rng() % 9)) + "\n";
    } else {
      plan.name = "rand-all-dirty-" + std::to_string(i);
      plan.commands = "device CORE-" + std::to_string(region) +
                      "-0\nstatic-route 7" + std::to_string(i) +
                      ".0.0.0/8 discard\n";
    }
    plans.push_back(plan);
  }
  // Repeat one scoped plan verbatim: full cache replay on the warm side.
  plans.push_back(plans[0]);

  IntentSet intents;
  intents.rclIntents = {"not prefix = 100.0.8.0/24 => PRE = POST",
                        "device = BR-0-0 => PRE |> distCnt(prefix) >= 0",
                        "forall device: POST |> count() >= 0"};
  intents.maxLinkUtilization = 5.0;
  const auto makeHoyan = [&](bool incremental) {
    auto hoyan = std::make_unique<Hoyan>(wan_.topology, wan_.configs);
    hoyan->setInputRoutes(inputs_);
    hoyan->setInputFlows(flows_);
    DistSimOptions options;
    options.workers = 3;
    options.routeSubtasks = 16;
    options.trafficSubtasks = 8;
    hoyan->setSimulationOptions(options);
    if (incremental) hoyan->enableIncremental();
    hoyan->preprocess();
    return hoyan;
  };
  auto cold = makeHoyan(false);
  auto warm = makeHoyan(true);
  for (const ChangePlan& plan : plans) {
    const ChangeVerificationResult coldResult = cold->verifyChange(plan, intents);
    const ChangeVerificationResult warmResult = warm->verifyChange(plan, intents);
    const auto coldRows = renderedRows(coldResult.updatedRibs);
    const auto warmRows = renderedRows(warmResult.updatedRibs);
    ASSERT_EQ(coldRows.size(), warmRows.size()) << plan.name;
    for (size_t i = 0; i < coldRows.size(); ++i)
      ASSERT_EQ(coldRows[i], warmRows[i]) << plan.name << " row " << i;
    ASSERT_EQ(coldResult.rclOutcomes.size(), warmResult.rclOutcomes.size());
    for (size_t i = 0; i < coldResult.rclOutcomes.size(); ++i) {
      EXPECT_EQ(coldResult.rclOutcomes[i].result.satisfied,
                warmResult.rclOutcomes[i].result.satisfied)
          << plan.name << " " << coldResult.rclOutcomes[i].specification;
      EXPECT_EQ(coldResult.rclOutcomes[i].result.summary(),
                warmResult.rclOutcomes[i].result.summary())
          << plan.name;
    }
    ASSERT_EQ(coldResult.updatedLinkLoads.size(), warmResult.updatedLinkLoads.size());
    for (const auto& entry : coldResult.updatedLinkLoads.entries())
      EXPECT_NEAR(warmResult.updatedLinkLoads.get(entry.from, entry.to), entry.bps,
                  1e-9)
          << plan.name;
  }
}

TEST_F(DeterminismTest, PolicyMemoIsInvisibleUnderRandomizedPolicies) {
  // Randomized differential for the policy-eval kernel (proto/
  // policy_kernel.h): fuzz the border import policies with random as-path
  // regex lists (one deliberately invalid), community and prefix matches,
  // and local-pref / prepend / nexthop / MED rewrites, then require the
  // memo-enabled pipeline to be byte-identical to the memo-disabled oracle
  // at 1, 3, and 6 workers. A stale or mis-keyed memo entry shows up as a
  // diverging RIB row here.
  std::mt19937 rng(20260808);
  for (size_t i = 0; i < wan_.borders.size(); ++i) {
    DeviceConfig& config = wan_.configs.device(wan_.borders[i]);  // CoW detach.
    const std::string tag = std::to_string(i);
    const NameId asList = Names::id("FUZZ-AS-" + tag);
    AsPathList pathList;
    pathList.name = asList;
    switch (rng() % 4) {
      case 0:
        pathList.entries.push_back({true, "_6500[0-9]_"});
        break;
      case 1:
        pathList.entries.push_back({true, "^" + std::to_string(65001 + rng() % 8)});
        break;
      case 2:
        // Invalid pattern first: must match nothing (counted, not fatal) and
        // fall through to the catch-all — identically with and without memo.
        pathList.entries.push_back({true, "(unclosed"});
        pathList.entries.push_back({true, ".*"});
        break;
      default:
        pathList.entries.push_back({true, std::to_string(65001 + rng() % 8) + "$"});
        break;
    }
    config.asPathLists[asList] = pathList;
    const NameId cList = Names::id("FUZZ-COMM-" + tag);
    CommunityList commList;
    commList.name = cList;
    commList.entries.push_back(
        {true, Community(64512, static_cast<uint16_t>(rng() % 4))});
    config.communityLists[cList] = commList;
    const NameId pList = Names::id("FUZZ-PFX-" + tag);
    PrefixList prefixList;
    prefixList.name = pList;
    prefixList.family = IpFamily::kV4;
    prefixList.entries.push_back(
        {true, *Prefix::parse("100.0.0.0/8"), 8, static_cast<uint8_t>(16 + rng() % 9)});
    config.prefixLists[pList] = prefixList;

    for (auto& [policyName, policy] : config.routePolicies) {
      PolicyNode node;
      node.sequence = 500 + static_cast<uint32_t>(rng() % 100);
      node.action = rng() % 8 == 0 ? PolicyAction::kDeny : PolicyAction::kPermit;
      switch (rng() % 3) {
        case 0: node.match.asPathList = asList; break;
        case 1: node.match.communityList = cList; break;
        default: node.match.prefixList = pList; break;
      }
      switch (rng() % 4) {
        case 0: node.sets.localPref = 100 + 10 * (rng() % 10); break;
        case 1: node.sets.prepend = {{64512, 1 + rng() % 3}}; break;
        case 2:
          node.sets.nexthop = *IpAddress::parse("9.9.9." + std::to_string(rng() % 8));
          break;
        default: node.sets.med = rng() % 50; break;
      }
      policy.upsertNode(node);
    }
  }

  const auto run = [&](size_t workers, bool memo) {
    const NetworkModel model = wan_.buildModel();
    DistSimOptions options;
    options.workers = workers;
    options.routeSubtasks = 16;
    options.routeOptions.policyMemo = memo;
    DistributedSimulator simulator(model, options);
    DistRouteResult result = simulator.runRouteSimulation(inputs_);
    EXPECT_TRUE(result.succeeded);
    return renderedRows(result.ribs);
  };
  const auto oracle = run(3, false);
  ASSERT_GT(oracle.size(), 0u);
  for (const size_t workers : {1u, 3u, 6u}) {
    const auto rows = run(workers, true);
    ASSERT_EQ(rows.size(), oracle.size()) << "workers=" << workers;
    for (size_t i = 0; i < rows.size(); ++i)
      ASSERT_EQ(rows[i], oracle[i]) << "workers=" << workers << " row " << i;
  }
}

TEST_F(DeterminismTest, TrafficLoadsAreDeterministicAcrossWorkers) {
  const NetworkModel model = wan_.buildModel();
  LinkLoadMap first, second;
  for (LinkLoadMap* loads : {&first, &second}) {
    DistSimOptions options;
    options.workers = loads == &first ? 2 : 7;
    options.routeSubtasks = 16;
    options.trafficSubtasks = 12;
    DistributedSimulator simulator(model, options);
    ASSERT_TRUE(simulator.runRouteSimulation(inputs_).succeeded);
    DistTrafficResult result = simulator.runTrafficSimulation(flows_);
    ASSERT_TRUE(result.succeeded);
    *loads = std::move(result.linkLoads);
  }
  ASSERT_EQ(first.size(), second.size());
  for (const auto& entry : first.entries())
    EXPECT_NEAR(second.get(entry.from, entry.to), entry.bps, 1e-9) << Names::str(entry.from);
}

}  // namespace
}  // namespace hoyan
