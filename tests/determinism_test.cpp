// Determinism: the whole pipeline must produce byte-identical results across
// runs and worker counts — the distributed master merges subtask results in
// a fixed order and every engine stage orders its work deterministically.
// (The paper's post-change validation use case (§6.2) treats Hoyan's output
// as ground truth; nondeterminism would poison it.)
#include <gtest/gtest.h>

#include "dist/dist_sim.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "obs/provenance.h"
#include "rcl/global_rib.h"

namespace hoyan {
namespace {

std::vector<std::string> renderedRows(const NetworkRibs& ribs) {
  const rcl::GlobalRib global = rcl::GlobalRib::fromNetworkRibs(ribs);
  std::vector<std::string> out;
  out.reserve(global.size());
  for (const rcl::RibRow& row : global.rows()) out.push_back(row.str());
  return out;
}

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WanSpec spec;
    spec.regions = 3;
    wan_ = generateWan(spec);
    WorkloadSpec workload;
    workload.prefixesPerIsp = 24;
    workload.prefixesPerDc = 8;
    workload.v6Share = 0.25;
    inputs_ = generateInputRoutes(wan_, workload);
    flows_ = generateFlows(wan_, workload, 800);
  }

  NetworkRibs runDistributed(size_t workers, size_t subtasks,
                             obs::ProvenanceRecorder* provenance = nullptr) {
    const NetworkModel model = wan_.buildModel();
    DistSimOptions options;
    options.workers = workers;
    options.routeSubtasks = subtasks;
    options.routeOptions.provenance = provenance;
    DistributedSimulator simulator(model, options);
    DistRouteResult result = simulator.runRouteSimulation(inputs_);
    EXPECT_TRUE(result.succeeded);
    return std::move(result.ribs);
  }

  GeneratedWan wan_;
  std::vector<InputRoute> inputs_;
  std::vector<Flow> flows_;
};

TEST_F(DeterminismTest, RepeatedRunsProduceIdenticalGlobalRibs) {
  const auto first = renderedRows(runDistributed(4, 16));
  const auto second = renderedRows(runDistributed(4, 16));
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], second[i]) << i;
}

TEST_F(DeterminismTest, WorkerCountDoesNotChangeResults) {
  const auto two = renderedRows(runDistributed(2, 16));
  const auto eight = renderedRows(runDistributed(8, 16));
  ASSERT_EQ(two.size(), eight.size());
  for (size_t i = 0; i < two.size(); ++i) EXPECT_EQ(two[i], eight[i]) << i;
}

TEST_F(DeterminismTest, SubtaskCountDoesNotChangeResults) {
  const auto few = renderedRows(runDistributed(4, 4));
  const auto many = renderedRows(runDistributed(4, 64));
  ASSERT_EQ(few.size(), many.size());
  for (size_t i = 0; i < few.size(); ++i) EXPECT_EQ(few[i], many[i]) << i;
}

TEST_F(DeterminismTest, ProvenanceLogIsIdenticalAcrossWorkerCounts) {
  // The master merges per-subtask provenance in subtask order and emits
  // selection events from the final merged RIBs, so with a fixed subtask
  // count the rendered log must be byte-identical for any worker count.
  obs::ProvenanceOptions provOptions;
  provOptions.enabled = true;
  provOptions.totalEventCap = 1u << 20;
  provOptions.perDeviceEventCap = 1u << 16;
  const auto rendered = [&](size_t workers) {
    obs::ProvenanceRecorder recorder(provOptions);
    runDistributed(workers, 16, &recorder);
    std::string out;
    for (const obs::RouteEvent& event : recorder.snapshot())
      out += event.str() + "\n";
    EXPECT_EQ(recorder.droppedEvents(), 0u) << "caps too small for the fixture";
    return out;
  };
  const std::string two = rendered(2);
  const std::string eight = rendered(8);
  EXPECT_GT(two.size(), 0u);
  EXPECT_EQ(two, eight);
}

TEST_F(DeterminismTest, TrafficLoadsAreDeterministicAcrossWorkers) {
  const NetworkModel model = wan_.buildModel();
  LinkLoadMap first, second;
  for (LinkLoadMap* loads : {&first, &second}) {
    DistSimOptions options;
    options.workers = loads == &first ? 2 : 7;
    options.routeSubtasks = 16;
    options.trafficSubtasks = 12;
    DistributedSimulator simulator(model, options);
    ASSERT_TRUE(simulator.runRouteSimulation(inputs_).succeeded);
    DistTrafficResult result = simulator.runTrafficSimulation(flows_);
    ASSERT_TRUE(result.succeeded);
    *loads = std::move(result.linkLoads);
  }
  ASSERT_EQ(first.size(), second.size());
  for (const auto& entry : first.entries())
    EXPECT_NEAR(second.get(entry.from, entry.to), entry.bps, 1e-9) << Names::str(entry.from);
}

}  // namespace
}  // namespace hoyan
