// Config-language property tests: randomized DeviceConfig -> print -> parse
// round trips, a malformed-line sweep, and `no`-form coverage for every
// subsystem.
#include <gtest/gtest.h>

#include <random>

#include "config/parser.h"
#include "config/printer.h"
#include "config/vendor.h"

namespace hoyan {
namespace {

// Builds a pseudo-random but structurally valid device configuration.
DeviceConfig randomConfig(unsigned seed) {
  std::mt19937 rng(seed);
  const auto number = [&rng](uint32_t bound) { return rng() % bound; };
  DeviceConfig config;
  config.hostname = Names::id("rand-R" + std::to_string(seed));
  config.vendor = (seed % 3 == 0 ? vendorA() : seed % 3 == 1 ? vendorB() : vendorC()).name;
  config.routerId = IpAddress::v4((1u << 24) | seed);
  config.bgp.asn = 64500 + seed;

  for (int i = 0; i < 3; ++i) {
    PrefixList list;
    list.name = Names::id("rand-PL" + std::to_string(seed) + "-" + std::to_string(i));
    list.family = i == 2 ? IpFamily::kV6 : IpFamily::kV4;
    for (int e = 0; e < 2; ++e) {
      PrefixListEntry entry;
      entry.permit = number(2) == 0;
      entry.prefix = list.family == IpFamily::kV4
                         ? Prefix(IpAddress::v4(number(1u << 30) << 2), 16 + number(9))
                         : *Prefix::parse("2400:" + std::to_string(number(9000)) + "::/32");
      if (number(2)) {
        entry.ge = static_cast<uint8_t>(entry.prefix.length());
        entry.le = static_cast<uint8_t>(entry.prefix.length() + number(8));
      }
      list.entries.push_back(entry);
    }
    config.prefixLists.emplace(list.name, std::move(list));
  }
  {
    CommunityList list;
    list.name = Names::id("rand-CL" + std::to_string(seed));
    list.entries.push_back({true, Community(static_cast<uint16_t>(100 + number(100)),
                                            static_cast<uint16_t>(number(16)))});
    config.communityLists.emplace(list.name, std::move(list));
  }
  {
    AsPathList list;
    list.name = Names::id("rand-AP" + std::to_string(seed));
    list.entries.push_back({number(2) == 0, "_" + std::to_string(65000 + number(100)) + "_"});
    config.asPathLists.emplace(list.name, std::move(list));
  }
  {
    RoutePolicy& policy = config.routePolicy(Names::id("rand-RP" + std::to_string(seed)));
    for (uint32_t sequence : {10u, 20u, 30u}) {
      PolicyNode node;
      node.sequence = sequence;
      node.action = number(3) == 0   ? PolicyAction::kDeny
                    : number(2) == 0 ? PolicyAction::kPermit
                                     : PolicyAction::kUnspecified;
      if (number(2)) node.match.prefixList = config.prefixLists.begin()->first;
      if (number(2)) node.match.communityList = config.communityLists.begin()->first;
      if (number(2)) node.sets.localPref = 100 + number(300);
      if (number(2)) node.sets.med = number(1000);
      if (number(2))
        node.sets.addCommunities.push_back(
            Community(static_cast<uint16_t>(number(500)), 1));
      if (number(3) == 0) node.sets.prepend = {static_cast<Asn>(65000 + number(10)),
                                               1 + number(3)};
      policy.upsertNode(node);
    }
  }
  for (int i = 0; i < 2; ++i) {
    BgpNeighbor neighbor;
    neighbor.peerAddress = IpAddress::v4((172u << 24) | (number(1 << 16) << 2) | 1);
    neighbor.remoteAs = 65000 + number(100);
    if (number(2)) neighbor.importPolicy = config.routePolicies.begin()->first;
    neighbor.routeReflectorClient = number(2);
    neighbor.nextHopSelf = number(2);
    neighbor.addPathSend = number(2);
    config.bgp.neighbors.push_back(neighbor);
  }
  {
    StaticRouteConfig route;
    route.prefix = Prefix(IpAddress::v4(number(1u << 30) << 2), 24);
    route.nexthop = IpAddress::v4((10u << 24) | number(1 << 16));
    route.preference = static_cast<uint8_t>(1 + number(200));
    config.staticRoutes.push_back(route);
  }
  {
    AggregateConfig aggregate;
    aggregate.prefix = Prefix(IpAddress::v4(number(200) << 24), 8);
    aggregate.asSet = number(2);
    aggregate.summaryOnly = number(2);
    config.bgp.aggregates.push_back(aggregate);
  }
  return config;
}

class RoundTripTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RoundTripTest, PrintParsePreservesSemantics) {
  const DeviceConfig original = randomConfig(GetParam());
  const std::string text = printDeviceConfig(original, nullptr);
  const ParseResult reparsed = parseDeviceConfig(text);
  for (const ParseError& error : reparsed.errors) ADD_FAILURE() << error.str();
  const DeviceConfig& parsed = reparsed.config;

  EXPECT_EQ(parsed.hostname, original.hostname);
  EXPECT_EQ(parsed.vendor, original.vendor);
  EXPECT_EQ(parsed.routerId, original.routerId);
  EXPECT_EQ(parsed.bgp.asn, original.bgp.asn);
  ASSERT_EQ(parsed.bgp.neighbors.size(), original.bgp.neighbors.size());
  for (size_t i = 0; i < original.bgp.neighbors.size(); ++i) {
    const BgpNeighbor& a = original.bgp.neighbors[i];
    const BgpNeighbor& b = parsed.bgp.neighbors[i];
    EXPECT_EQ(a.peerAddress, b.peerAddress);
    EXPECT_EQ(a.remoteAs, b.remoteAs);
    EXPECT_EQ(a.importPolicy, b.importPolicy);
    EXPECT_EQ(a.routeReflectorClient, b.routeReflectorClient);
    EXPECT_EQ(a.nextHopSelf, b.nextHopSelf);
    EXPECT_EQ(a.addPathSend, b.addPathSend);
  }
  ASSERT_EQ(parsed.prefixLists.size(), original.prefixLists.size());
  for (const auto& [name, list] : original.prefixLists) {
    const PrefixList* other = parsed.findPrefixList(name);
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->family, list.family);
    ASSERT_EQ(other->entries.size(), list.entries.size());
    for (size_t i = 0; i < list.entries.size(); ++i) {
      EXPECT_EQ(other->entries[i].permit, list.entries[i].permit);
      EXPECT_EQ(other->entries[i].prefix, list.entries[i].prefix);
      EXPECT_EQ(other->entries[i].ge, list.entries[i].ge);
      EXPECT_EQ(other->entries[i].le, list.entries[i].le);
    }
  }
  ASSERT_EQ(parsed.routePolicies.size(), original.routePolicies.size());
  for (const auto& [name, policy] : original.routePolicies) {
    const RoutePolicy* other = parsed.findRoutePolicy(name);
    ASSERT_NE(other, nullptr);
    ASSERT_EQ(other->nodes.size(), policy.nodes.size());
    for (size_t i = 0; i < policy.nodes.size(); ++i) {
      EXPECT_EQ(other->nodes[i].sequence, policy.nodes[i].sequence);
      EXPECT_EQ(other->nodes[i].action, policy.nodes[i].action);
      EXPECT_EQ(other->nodes[i].match.prefixList, policy.nodes[i].match.prefixList);
      EXPECT_EQ(other->nodes[i].sets.localPref, policy.nodes[i].sets.localPref);
      EXPECT_EQ(other->nodes[i].sets.med, policy.nodes[i].sets.med);
      EXPECT_EQ(other->nodes[i].sets.prepend, policy.nodes[i].sets.prepend);
    }
  }
  ASSERT_EQ(parsed.staticRoutes.size(), original.staticRoutes.size());
  EXPECT_EQ(parsed.staticRoutes[0].prefix, original.staticRoutes[0].prefix);
  EXPECT_EQ(parsed.staticRoutes[0].preference, original.staticRoutes[0].preference);
  ASSERT_EQ(parsed.bgp.aggregates.size(), original.bgp.aggregates.size());
  EXPECT_EQ(parsed.bgp.aggregates[0].prefix, original.bgp.aggregates[0].prefix);
  EXPECT_EQ(parsed.bgp.aggregates[0].asSet, original.bgp.aggregates[0].asSet);
  EXPECT_EQ(parsed.bgp.aggregates[0].summaryOnly, original.bgp.aggregates[0].summaryOnly);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range(1u, 17u));

// Malformed-line sweep: the parser must report an error (never crash, never
// silently accept).
class MalformedLineTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MalformedLineTest, ReportsError) {
  const ParseResult result = parseDeviceConfig(GetParam());
  EXPECT_FALSE(result.errors.empty()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Lines, MalformedLineTest,
    ::testing::Values("router-id banana",
                      "ip-prefix L index x permit 10.0.0.0/8",
                      "ip-prefix L index 10 permit not-a-prefix",
                      "community-list C index 10 permit 100",
                      "as-path-list A index 10 oops \"x\"",
                      "route-policy P node ten permit",
                      "router bgp notanumber",
                      "static-route 10.0.0.0/8",
                      "static-route banana nexthop 1.1.1.1",
                      "sr-policy S endpoint banana",
                      "pbr-policy P rule src 1.2.3.0/24",   // Missing nexthop.
                      "acl A rule permit port x",
                      "apply pbr NOPE interface eth0",
                      "totally-unknown-command",
                      "no"));

// `no` forms for the subsystems not covered elsewhere.
TEST(NoFormTest, RemovesListsAclsAndPbr) {
  DeviceConfig config = parseDeviceConfig(
      "ip-prefix PL index 10 permit 10.0.0.0/8\n"
      "community-list CL index 10 permit 1:1\n"
      "as-path-list AP index 10 permit \"_1_\"\n"
      "pbr-policy PB rule dst 10.0.0.0/8 nexthop 1.1.1.1\n"
      "acl AC rule deny dst 10.0.0.0/8\n"
      "apply acl AC interface eth0\n"
      "apply pbr PB interface eth0\n").config;
  const auto errors = applyDeviceCommands(config, nullptr,
                                          "no apply acl AC interface eth0\n"
                                          "no apply pbr PB interface eth0\n"
                                          "no ip-prefix PL\n"
                                          "no community-list CL\n"
                                          "no as-path-list AP\n"
                                          "no pbr-policy PB\n"
                                          "no acl AC\n");
  for (const ParseError& error : errors) ADD_FAILURE() << error.str();
  EXPECT_TRUE(config.prefixLists.empty());
  EXPECT_TRUE(config.communityLists.empty());
  EXPECT_TRUE(config.asPathLists.empty());
  EXPECT_TRUE(config.pbrPolicies.empty());
  EXPECT_TRUE(config.acls.empty());
}

TEST(NoFormTest, VrfAndIsolation) {
  DeviceConfig config = parseDeviceConfig("vrf blue\n import-rt 1:1\n!\nisolate\n").config;
  EXPECT_TRUE(config.isolated);
  EXPECT_EQ(config.vrfs.size(), 1u);
  const auto errors =
      applyDeviceCommands(config, nullptr, "no isolate\nno vrf blue\n");
  EXPECT_TRUE(errors.empty());
  EXPECT_FALSE(config.isolated);
  EXPECT_TRUE(config.vrfs.empty());
}

}  // namespace
}  // namespace hoyan
