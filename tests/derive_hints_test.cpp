// Unit tests for sweep::deriveHints — the scope analysis, the prefix-universe
// evaluation, the relevant-device listing — plus end-to-end checks that
// derived hints prune and stay byte-identical to the serial oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/hoyan.h"
#include "rcl/parser.h"
#include "rcl/verify.h"
#include "sweep/derive_hints.h"
#include "sweep/sweep.h"
#include "test_fixtures.h"
#include "verify/properties.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

sweep::DeriveResult derive(const std::string& spec, const NetworkModel& model,
                           const std::vector<InputRoute>& inputs) {
  const rcl::ParseOutcome outcome = rcl::parseIntent(spec);
  EXPECT_TRUE(outcome.ok()) << spec << ": " << outcome.error;
  return sweep::deriveHints(*outcome.intent, model, inputs);
}

bool hasPrefix(const sweep::SweepHints& hints, const std::string& prefix) {
  for (const Prefix& p : hints.relevantPrefixes)
    if (p.str() == prefix) return true;
  return false;
}

bool hasDevice(const sweep::SweepHints& hints, NameId device) {
  return std::find(hints.relevantDevices.begin(), hints.relevantDevices.end(),
                   device) != hints.relevantDevices.end();
}

class DeriveHintsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = buildSmallWan();
    model_ = net_.model();
    inputs_ = {ispRoute(net_, "100.1.0.0/16")};
  }

  SmallWan net_;
  NetworkModel model_;
  std::vector<InputRoute> inputs_;
};

TEST_F(DeriveHintsTest, PrefixGuardScopesPrefixesAndDevices) {
  const sweep::DeriveResult result = derive(
      "prefix = 100.1.0.0/16 => POST |> distVals(localPref) = {100}", model_, inputs_);
  ASSERT_TRUE(result.scoped) << result.reason;
  EXPECT_EQ(result.hints.source, "derived");
  EXPECT_FALSE(result.hints.cacheId.empty());
  ASSERT_EQ(result.hints.relevantPrefixes.size(), 1u);
  EXPECT_TRUE(hasPrefix(result.hints, "100.1.0.0/16"));
  // The injector has no IS-IS interface and its session to BR1 rides a
  // specific adjacency (no IGP path), so both session ends are listed; the
  // IGP-connected internal holders need no listing.
  EXPECT_TRUE(hasDevice(result.hints, net_.isp1));
  EXPECT_TRUE(hasDevice(result.hints, net_.br1));
  EXPECT_FALSE(hasDevice(result.hints, net_.c1));
  EXPECT_FALSE(hasDevice(result.hints, net_.c2));
  EXPECT_FALSE(hasDevice(result.hints, net_.rr1));
}

TEST_F(DeriveHintsTest, NegatedPrefixGuardScopesTheComplement) {
  // `not prefix = X` is still prefix-pure: the scope is everything but X.
  const sweep::DeriveResult result =
      derive("not prefix = 100.1.0.0/16 => PRE = POST", model_, inputs_);
  ASSERT_TRUE(result.scoped) << result.reason;
  EXPECT_FALSE(hasPrefix(result.hints, "100.1.0.0/16"));
  // Loopback host routes fall inside the complement.
  const Device* rr = model_.topology.findDevice(net_.rr1);
  EXPECT_TRUE(hasPrefix(result.hints, Prefix(rr->loopback, 32).str()));
  EXPECT_GT(result.hints.relevantPrefixes.size(), 4u);
}

TEST_F(DeriveHintsTest, ForallPrefixWithValuesScopes) {
  const sweep::DeriveResult result = derive(
      "forall device in {t-C1, t-C2}: forall prefix in {100.1.0.0/16}: "
      "routeType = BEST => PRE |> distVals(nexthop) = POST |> distVals(nexthop)",
      model_, inputs_);
  ASSERT_TRUE(result.scoped) << result.reason;
  ASSERT_EQ(result.hints.relevantPrefixes.size(), 1u);
  EXPECT_TRUE(hasPrefix(result.hints, "100.1.0.0/16"));
}

TEST_F(DeriveHintsTest, FilterConjunctScopes) {
  const sweep::DeriveResult result =
      derive("POST || prefix = 100.1.0.0/16 |> count() = 0", model_, inputs_);
  ASSERT_TRUE(result.scoped) << result.reason;
  ASSERT_EQ(result.hints.relevantPrefixes.size(), 1u);
  EXPECT_TRUE(hasPrefix(result.hints, "100.1.0.0/16"));
}

TEST_F(DeriveHintsTest, GuardConjunctionLiftsOnlyThePrefixPart) {
  const sweep::DeriveResult result = derive(
      "prefix = 100.1.0.0/16 and routeType = BEST => POST |> distCnt(device) >= 1",
      model_, inputs_);
  ASSERT_TRUE(result.scoped) << result.reason;
  ASSERT_EQ(result.hints.relevantPrefixes.size(), 1u);
  EXPECT_TRUE(hasPrefix(result.hints, "100.1.0.0/16"));
}

TEST_F(DeriveHintsTest, UnscopableIntentsFallBackWithReason) {
  const std::vector<std::string> unscopable = {
      // Bare RIB access.
      "POST |> count() >= PRE |> count()",
      // Guard is device-pure; forall prefix has no values.
      "device = t-C1 => forall prefix: POST |> distCnt(nexthop) >= 1",
      // Non-prefix filter on an otherwise unrestricted POST.
      "forall device in {t-C1}: POST || (communities contains 100:1) |> count() = 0",
      // Regex guard over a non-prefix field.
      "aspath matches \"^65000\" => PRE |> distCnt(prefix) = POST |> distCnt(prefix)",
      // forall prefix without values inside a scoped-by-nothing context.
      "forall device in {t-C1}: forall prefix: (PRE |> distVals(nexthop) = {1.2.3.4}) "
      "imply (POST |> distVals(nexthop) = {10.2.3.4})",
      // Prefix term buried under a mixed `or` cannot bound the row set.
      "POST || (prefix = 100.1.0.0/16 or routeType = BEST) |> count() >= 1",
  };
  for (const std::string& spec : unscopable) {
    const sweep::DeriveResult result = derive(spec, model_, inputs_);
    EXPECT_FALSE(result.scoped) << spec;
    EXPECT_FALSE(result.reason.empty()) << spec;
    EXPECT_TRUE(result.hints.relevantPrefixes.empty()) << spec;
    EXPECT_TRUE(result.hints.relevantDevices.empty()) << spec;
    // The fallback still names the intent for verdict caching.
    EXPECT_FALSE(result.hints.cacheId.empty()) << spec;
    EXPECT_EQ(result.hints.source, "derived") << spec;
  }
}

TEST_F(DeriveHintsTest, EmptyScopeFallsBack) {
  // Scoped to a prefix nothing in the network can carry: pruning everything
  // would be sound, but empty relevance means "prune nothing" to the engine,
  // so the derivation reports it as unscoped instead.
  const sweep::DeriveResult result =
      derive("prefix = 55.55.55.0/24 => POST |> count() = 0", model_, inputs_);
  EXPECT_FALSE(result.scoped);
  EXPECT_NE(result.reason.find("no prefix"), std::string::npos) << result.reason;
  EXPECT_TRUE(result.hints.relevantPrefixes.empty());
}

TEST_F(DeriveHintsTest, IrrelevantInjectorIsNotListed) {
  // A second external peer announcing an unrelated prefix: an intent scoped to
  // its announcement lists it (and BR1), but not the first ISP.
  Device isp2;
  isp2.name = Names::id("t-ISP2");
  isp2.role = DeviceRole::kExternalPeer;
  isp2.loopback = *IpAddress::parse("9.0.0.99");
  net_.topology.addDevice(isp2);
  DeviceConfig config;
  config.hostname = isp2.name;
  config.vendor = vendorB().name;
  config.routerId = isp2.loopback;
  config.bgp.asn = 65002;
  net_.configs.mutableDevices().emplace(isp2.name, std::move(config));
  Device* border = net_.topology.findDevice(net_.br1);
  Interface borderItf;
  borderItf.name = Names::id("t-BR1:isp2");
  borderItf.address = *IpAddress::parse("172.21.0.1");
  borderItf.prefixLength = 30;
  border->interfaces.push_back(borderItf);
  Device* peer = net_.topology.findDevice(isp2.name);
  Interface peerItf;
  peerItf.name = Names::id("t-ISP2:e0");
  peerItf.address = *IpAddress::parse("172.21.0.2");
  peerItf.prefixLength = 30;
  peer->interfaces.push_back(peerItf);
  net_.topology.addLink(net_.br1, borderItf.name, isp2.name, peerItf.name);
  BgpNeighbor toPeer;
  toPeer.peerAddress = peerItf.address;
  toPeer.remoteAs = 65002;
  net_.configs.device(net_.br1).bgp.neighbors.push_back(toPeer);
  BgpNeighbor toBorder;
  toBorder.peerAddress = borderItf.address;
  toBorder.remoteAs = 64512;
  net_.configs.device(isp2.name).bgp.neighbors.push_back(toBorder);
  // Without an export filter BR1 re-advertises ISP2's route to ISP1 over the
  // policy-free eBGP session, making ISP1 a holder. A deny-all export toward
  // ISP1 stops the route at BR1, so ISP1 stays genuinely inert.
  {
    const NameId denyAll = Names::id("DENY-ALL");
    RoutePolicy& policy = net_.configs.device(net_.br1).routePolicy(denyAll);
    PolicyNode node;
    node.sequence = 10;
    node.action = PolicyAction::kDeny;
    policy.upsertNode(node);
    for (BgpNeighbor& neighbor : net_.configs.device(net_.br1).bgp.neighbors)
      if (neighbor.remoteAs == 65001) neighbor.exportPolicy = denyAll;
  }
  // A stub peer hanging off ISP1 over a non-IS-IS link: the link touches no
  // relevant device, carries no adjacency, and overlaps nothing relevant, so
  // its failure scenarios are inert and must prune. (External peers are never
  // device-failure candidates, so link inertness is what pruning exercises.)
  Device stub;
  stub.name = Names::id("t-STUB");
  stub.role = DeviceRole::kExternalPeer;
  stub.loopback = *IpAddress::parse("9.0.0.98");
  net_.topology.addDevice(stub);
  DeviceConfig stubConfig;
  stubConfig.hostname = stub.name;
  stubConfig.vendor = vendorB().name;
  stubConfig.routerId = stub.loopback;
  stubConfig.bgp.asn = 65003;
  net_.configs.mutableDevices().emplace(stub.name, std::move(stubConfig));
  Device* isp1Device = net_.topology.findDevice(net_.isp1);
  Interface isp1Itf;
  isp1Itf.name = Names::id("t-ISP1:stub");
  isp1Itf.address = *IpAddress::parse("172.21.0.5");
  isp1Itf.prefixLength = 30;
  isp1Device->interfaces.push_back(isp1Itf);
  Interface stubItf;
  stubItf.name = Names::id("t-STUB:e0");
  stubItf.address = *IpAddress::parse("172.21.0.6");
  stubItf.prefixLength = 30;
  net_.topology.findDevice(stub.name)->interfaces.push_back(stubItf);
  net_.topology.addLink(net_.isp1, isp1Itf.name, stub.name, stubItf.name);
  model_ = net_.model();

  InputRoute announcement;
  announcement.device = isp2.name;
  announcement.route.prefix = *Prefix::parse("200.2.0.0/16");
  announcement.route.protocol = Protocol::kBgp;
  announcement.route.attrs.origin = BgpOrigin::kIgp;
  announcement.route.nexthop = isp2.loopback;
  announcement.route.nexthopDevice = isp2.name;
  inputs_.push_back(announcement);

  const sweep::DeriveResult result = derive(
      "prefix = 200.2.0.0/16 => POST |> count() >= 1", model_, inputs_);
  ASSERT_TRUE(result.scoped) << result.reason;
  EXPECT_TRUE(hasDevice(result.hints, isp2.name));
  EXPECT_TRUE(hasDevice(result.hints, net_.br1));
  EXPECT_FALSE(hasDevice(result.hints, net_.isp1));

  // End to end: the ISP1–STUB link is inert for this intent (neither end is
  // relevant or injects a relevant prefix, no IS-IS, no subnet overlap), so
  // its scenarios prune — and the result stays byte-identical to the oracle.
  const rcl::ParseOutcome outcome =
      rcl::parseIntent("prefix = 200.2.0.0/16 => POST |> count() >= 1");
  ASSERT_TRUE(outcome.ok());
  const rcl::IntentPtr intent = outcome.intent;
  const NetworkProperty property = [intent](const NetworkModel&,
                                            const NetworkRibs& ribs) {
    rcl::GlobalRib rib = rcl::GlobalRib::fromNetworkRibs(ribs);
    return rcl::checkIntent(*intent, rib, rib).satisfied;
  };
  KFailureOptions failure;
  failure.k = 2;
  failure.includeDeviceFailures = true;
  failure.maxCounterexamples = 50;
  const KFailureResult serial = checkKFailures(model_, inputs_, property, failure);

  sweep::SweepOptions options;
  options.failure = failure;
  options.workers = 3;
  const sweep::SweepResult swept =
      sweep::sweepKFailures(model_, inputs_, property, options, result.hints);
  EXPECT_EQ(serial.scenariosChecked, swept.result.scenariosChecked);
  ASSERT_EQ(serial.counterexamples.size(), swept.result.counterexamples.size());
  for (size_t i = 0; i < serial.counterexamples.size(); ++i) {
    EXPECT_EQ(serial.counterexamples[i].failedLinks,
              swept.result.counterexamples[i].failedLinks);
    EXPECT_EQ(serial.counterexamples[i].failedDevices,
              swept.result.counterexamples[i].failedDevices);
  }
  EXPECT_GT(swept.stats.pruned, 0u);
}

TEST(DeriveHintsHoyanTest, IntentSweepDerivesHintsAndMatchesSerial) {
  SmallWan net = buildSmallWan();
  Hoyan hoyan(net.topology, net.configs);
  hoyan.setInputRoutes({ispRoute(net, "100.1.0.0/16")});
  DistSimOptions simOptions;
  simOptions.workers = 2;
  hoyan.setSimulationOptions(simOptions);
  obs::TelemetryOptions telemetryOptions;
  telemetryOptions.journal = true;
  hoyan.configureTelemetry(telemetryOptions);
  hoyan.enableIncremental();
  hoyan.preprocess();

  const std::string spec = "prefix = 100.1.0.0/16 => POST |> count() >= 1";
  const sweep::DeriveResult derived = hoyan.deriveSweepHints(spec);
  ASSERT_TRUE(derived.scoped) << derived.reason;

  const rcl::ParseOutcome outcome = rcl::parseIntent(spec);
  ASSERT_TRUE(outcome.ok());
  const rcl::IntentPtr intent = outcome.intent;
  const NetworkProperty property = [intent](const NetworkModel&,
                                            const NetworkRibs& ribs) {
    rcl::GlobalRib rib = rcl::GlobalRib::fromNetworkRibs(ribs);
    return rcl::checkIntent(*intent, rib, rib).satisfied;
  };
  KFailureOptions failure;
  failure.k = 1;
  failure.maxCounterexamples = 20;
  const KFailureResult serial = hoyan.checkFaultToleranceSerial(property, failure);

  const sweep::SweepResult swept = hoyan.sweepIntentFaultTolerance(spec, failure);
  EXPECT_EQ(serial.scenariosChecked, swept.result.scenariosChecked);
  ASSERT_EQ(serial.counterexamples.size(), swept.result.counterexamples.size());
  for (size_t i = 0; i < serial.counterexamples.size(); ++i) {
    EXPECT_EQ(serial.counterexamples[i].failedLinks,
              swept.result.counterexamples[i].failedLinks);
    EXPECT_EQ(serial.counterexamples[i].failedDevices,
              swept.result.counterexamples[i].failedDevices);
  }
  // The sweep_plan journal event records that the hints were derived.
  ASSERT_NE(hoyan.telemetry(), nullptr);
  const std::string journal = hoyan.telemetry()->journal().toJsonl();
  EXPECT_NE(journal.find("\"ev\":\"sweep_plan\""), std::string::npos);
  EXPECT_NE(journal.find("\"note\":\"derived\""), std::string::npos);

  // CoW accounting: the peak worker footprint stays well under a deep copy.
  EXPECT_GT(swept.stats.workerModelDeepBytes, 0u);
  EXPECT_GT(swept.stats.workerModelPeakBytes, 0u);
  EXPECT_LT(swept.stats.workerModelPeakBytes, swept.stats.workerModelDeepBytes);

  // Warm re-run serves every job from the verdict cache.
  const sweep::SweepResult warm = hoyan.sweepIntentFaultTolerance(spec, failure);
  EXPECT_EQ(warm.stats.evaluated, 0u);
  EXPECT_GT(warm.stats.cacheHits, 0u);

  // An unscopable intent still verifies (unpruned fallback) instead of
  // throwing; a malformed one throws.
  const KFailureResult fallback =
      hoyan.checkIntentFaultTolerance("POST |> count() >= PRE |> count()", failure);
  EXPECT_EQ(fallback.scenariosChecked, serial.scenariosChecked);
  EXPECT_THROW(hoyan.checkIntentFaultTolerance("prefix = ", failure),
               std::invalid_argument);
}

}  // namespace
}  // namespace hoyan
