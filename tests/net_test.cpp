// Unit and property tests for the net module: addresses, prefixes, tries,
// communities, AS paths, routes.
#include <gtest/gtest.h>

#include <random>

#include "net/as_path.h"
#include "net/community.h"
#include "net/flow.h"
#include "net/ip.h"
#include "net/prefix_trie.h"
#include "net/route.h"

namespace hoyan {
namespace {

TEST(IpAddressTest, ParsesAndFormatsV4) {
  const auto addr = IpAddress::parse("10.0.0.1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_TRUE(addr->isV4());
  EXPECT_EQ(addr->v4Value(), 0x0a000001u);
  EXPECT_EQ(addr->str(), "10.0.0.1");
}

TEST(IpAddressTest, RejectsMalformedV4) {
  EXPECT_FALSE(IpAddress::parse("10.0.0").has_value());
  EXPECT_FALSE(IpAddress::parse("10.0.0.256").has_value());
  EXPECT_FALSE(IpAddress::parse("10.0.0.1.2").has_value());
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("a.b.c.d").has_value());
}

TEST(IpAddressTest, ParsesAndFormatsV6) {
  const auto addr = IpAddress::parse("2400:db8::1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_TRUE(addr->isV6());
  EXPECT_EQ(addr->str(), "2400:db8::1");
  const auto full = IpAddress::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->str(), "2001:db8::1");
  const auto zero = IpAddress::parse("::");
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->str(), "::");
}

TEST(IpAddressTest, V6RoundTripProperty) {
  std::mt19937_64 rng(1234);
  for (int i = 0; i < 200; ++i) {
    const IpAddress addr = IpAddress::v6(rng(), rng());
    const auto reparsed = IpAddress::parse(addr.str());
    ASSERT_TRUE(reparsed.has_value()) << addr.str();
    EXPECT_EQ(*reparsed, addr) << addr.str();
  }
}

TEST(IpAddressTest, OrderingIsTotalAndV4BeforeV6) {
  const IpAddress a = *IpAddress::parse("1.2.3.4");
  const IpAddress b = *IpAddress::parse("1.2.3.5");
  const IpAddress c = *IpAddress::parse("::1");
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);  // All V4 sorts before V6.
  EXPECT_FALSE(a < a);
}

TEST(IpAddressTest, BitAccess) {
  const IpAddress addr = IpAddress::v4(0x80000001u);
  EXPECT_TRUE(addr.bit(0));
  EXPECT_FALSE(addr.bit(1));
  EXPECT_TRUE(addr.bit(31));
}

TEST(PrefixTest, ParseCanonicalisesHostBits) {
  const auto prefix = Prefix::parse("10.1.2.3/24");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_EQ(prefix->str(), "10.1.2.0/24");
  EXPECT_EQ(prefix->length(), 24);
}

TEST(PrefixTest, BareAddressIsHostRoute) {
  const auto prefix = Prefix::parse("10.1.2.3");
  ASSERT_TRUE(prefix.has_value());
  EXPECT_TRUE(prefix->isHostRoute());
  EXPECT_EQ(prefix->length(), 32);
}

TEST(PrefixTest, ContainsAddressesAndPrefixes) {
  const Prefix p = *Prefix::parse("10.0.0.0/8");
  EXPECT_TRUE(p.contains(*IpAddress::parse("10.255.1.2")));
  EXPECT_FALSE(p.contains(*IpAddress::parse("11.0.0.0")));
  EXPECT_TRUE(p.contains(*Prefix::parse("10.3.0.0/16")));
  EXPECT_FALSE(p.contains(*Prefix::parse("0.0.0.0/0")));
  EXPECT_TRUE(Prefix::parse("0.0.0.0/0")->contains(p));
  // Family mismatch never contains.
  EXPECT_FALSE(p.contains(*IpAddress::parse("2400::1")));
}

TEST(PrefixTest, FirstLastAddresses) {
  const Prefix p = *Prefix::parse("10.0.0.0/30");
  EXPECT_EQ(p.firstAddress().str(), "10.0.0.0");
  EXPECT_EQ(p.lastAddress().str(), "10.0.0.3");
  const Prefix v6 = *Prefix::parse("2400::/16");
  EXPECT_EQ(v6.lastAddress().str(), "2400:ffff:ffff:ffff:ffff:ffff:ffff:ffff");
}

TEST(PrefixTest, DefaultRouteContainsEverythingOfItsFamily) {
  const Prefix def = *Prefix::parse("0.0.0.0/0");
  EXPECT_TRUE(def.isDefaultRoute());
  EXPECT_TRUE(def.contains(*IpAddress::parse("255.255.255.255")));
  EXPECT_FALSE(def.contains(*IpAddress::parse("::1")));
}

TEST(IpRangeTest, OverlapAndExtend) {
  IpRange r{*IpAddress::parse("10.0.0.0"), *IpAddress::parse("10.0.0.0")};
  r.extend(*Prefix::parse("10.5.0.0/16"));
  EXPECT_EQ(r.first.str(), "10.0.0.0");
  EXPECT_EQ(r.last.str(), "10.5.255.255");
  const IpRange other{*IpAddress::parse("10.5.255.255"), *IpAddress::parse("11.0.0.0")};
  EXPECT_TRUE(r.overlaps(other));
  const IpRange disjoint{*IpAddress::parse("12.0.0.0"), *IpAddress::parse("13.0.0.0")};
  EXPECT_FALSE(r.overlaps(disjoint));
}

// --- PrefixTrie property test against a linear-scan oracle -------------------

TEST(PrefixTrieTest, ExactAndLongestMatch) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("10.0.0.0/8"), 8);
  trie.insert(*Prefix::parse("10.1.0.0/16"), 16);
  trie.insert(*Prefix::parse("10.1.2.0/24"), 24);
  EXPECT_EQ(*trie.exactMatch(*Prefix::parse("10.1.0.0/16")), 16);
  EXPECT_EQ(trie.exactMatch(*Prefix::parse("10.2.0.0/16")), nullptr);
  const auto match = trie.longestMatch(*IpAddress::parse("10.1.2.3"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(*match->value, 24);
  EXPECT_EQ(match->prefix.str(), "10.1.2.0/24");
  const auto shallow = trie.longestMatch(*IpAddress::parse("10.9.0.1"));
  ASSERT_TRUE(shallow.has_value());
  EXPECT_EQ(*shallow->value, 8);
  EXPECT_FALSE(trie.longestMatch(*IpAddress::parse("11.0.0.1")).has_value());
}

TEST(PrefixTrieTest, DefaultRouteMatchesAll) {
  PrefixTrie<int> trie;
  trie.insert(*Prefix::parse("0.0.0.0/0"), 0);
  const auto match = trie.longestMatch(*IpAddress::parse("203.0.113.9"));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(*match->value, 0);
}

TEST(PrefixTrieTest, LongestMatchAgreesWithLinearScanOracle) {
  std::mt19937 rng(99);
  std::vector<std::pair<Prefix, int>> prefixes;
  PrefixTrie<int> trie;
  for (int i = 0; i < 300; ++i) {
    const uint32_t addr = rng();
    const uint8_t length = static_cast<uint8_t>(rng() % 25 + 8);
    const Prefix prefix(IpAddress::v4(addr), length);
    prefixes.emplace_back(prefix, i);
    trie.insert(prefix, i);
  }
  for (int probe = 0; probe < 2000; ++probe) {
    const IpAddress addr = IpAddress::v4(rng());
    // Oracle: most specific containing prefix, latest insert wins ties.
    int bestValue = -1;
    int bestLength = -1;
    for (const auto& [prefix, value] : prefixes) {
      if (prefix.contains(addr) && static_cast<int>(prefix.length()) >= bestLength) {
        bestLength = prefix.length();
        bestValue = value;
      }
    }
    const auto match = trie.longestMatch(addr);
    if (bestLength < 0) {
      EXPECT_FALSE(match.has_value());
    } else {
      ASSERT_TRUE(match.has_value());
      EXPECT_EQ(static_cast<int>(match->prefix.length()), bestLength);
      EXPECT_EQ(*match->value, bestValue);
    }
  }
}

TEST(PrefixTrieTest, VisitEnumeratesAllInsertedPrefixes) {
  PrefixTrie<int> trie;
  std::vector<std::string> inserted = {"10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/24"};
  for (const auto& text : inserted) trie.insert(*Prefix::parse(text), 1);
  std::vector<std::string> visited;
  trie.visit(IpFamily::kV4,
             [&](const Prefix& prefix, const int&) { visited.push_back(prefix.str()); });
  std::sort(inserted.begin(), inserted.end());
  std::sort(visited.begin(), visited.end());
  EXPECT_EQ(visited, inserted);
  EXPECT_EQ(trie.size(), 3u);
}

// --- Communities -----------------------------------------------------------

TEST(CommunityTest, ParseAndRender) {
  const auto c = Community::parse("100:1");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->asn(), 100);
  EXPECT_EQ(c->value(), 1);
  EXPECT_EQ(c->str(), "100:1");
  EXPECT_FALSE(Community::parse("100").has_value());
  EXPECT_FALSE(Community::parse("100:70000").has_value());
  EXPECT_FALSE(Community::parse(":1").has_value());
}

TEST(CommunitySetTest, SortedDeduplicatedAndHashable) {
  CommunitySet set;
  set.insert(Community(200, 1));
  set.insert(Community(100, 1));
  set.insert(Community(100, 1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_EQ(set.str(), "100:1 200:1");
  EXPECT_TRUE(set.contains(Community(200, 1)));
  set.erase(Community(200, 1));
  EXPECT_FALSE(set.contains(Community(200, 1)));
  CommunitySet same{Community(100, 1)};
  EXPECT_EQ(set, same);
  EXPECT_EQ(set.hashValue(), same.hashValue());
}

// --- AS paths -----------------------------------------------------------------

TEST(AsPathTest, PrependAndLength) {
  AsPath path({200, 300});
  EXPECT_EQ(path.length(), 2u);
  path.prepend(100);
  EXPECT_EQ(path.length(), 3u);
  EXPECT_EQ(path.str(), "100 200 300");
  EXPECT_EQ(path.firstAsn(), 100u);
  EXPECT_EQ(path.originAsn(), 300u);
  EXPECT_TRUE(path.contains(200));
  EXPECT_FALSE(path.contains(999));
}

TEST(AsPathTest, AsSetCountsAsOneHop) {
  AsPath path({100});
  path.appendSet({300, 400});
  EXPECT_EQ(path.length(), 2u);
  EXPECT_EQ(path.str(), "100 {300,400}");
  EXPECT_TRUE(path.contains(400));
}

TEST(AsPathTest, EmptyPath) {
  const AsPath path;
  EXPECT_TRUE(path.empty());
  EXPECT_EQ(path.length(), 0u);
  EXPECT_EQ(path.firstAsn(), 0u);
  EXPECT_EQ(path.originAsn(), 0u);
}

// --- Routes -------------------------------------------------------------------

TEST(RouteTest, EqualityIgnoresComputedType) {
  Route a;
  a.prefix = *Prefix::parse("10.0.0.0/24");
  a.nexthop = *IpAddress::parse("1.2.3.4");
  Route b = a;
  b.type = RouteType::kEcmp;
  EXPECT_EQ(a, b);
  b.attrs.localPref = 300;
  EXPECT_FALSE(a == b);
}

TEST(VrfRibTest, LongestMatchUsesOnlyForwardingEntries) {
  VrfRib rib;
  Route best;
  best.prefix = *Prefix::parse("10.0.0.0/16");
  best.type = RouteType::kBest;
  rib.routesFor(best.prefix).push_back(best);
  Route alt;
  alt.prefix = *Prefix::parse("10.0.1.0/24");
  alt.type = RouteType::kAlternate;
  rib.routesFor(alt.prefix).push_back(alt);
  rib.buildForwardingIndex();
  const auto* routes = rib.longestMatch(*IpAddress::parse("10.0.1.5"));
  ASSERT_NE(routes, nullptr);
  // The /24 holds only an alternate, so the /16 must win the LPM.
  EXPECT_EQ(routes->front().prefix.str(), "10.0.0.0/16");
}

TEST(NetworkRibsTest, MergeConcatenatesRouteLists) {
  const NameId device = Names::id("R1");
  NetworkRibs a;
  Route routeA;
  routeA.prefix = *Prefix::parse("10.0.0.0/24");
  a.device(device).vrf(kInvalidName).routesFor(routeA.prefix).push_back(routeA);
  NetworkRibs b;
  Route routeB = routeA;
  routeB.nexthop = *IpAddress::parse("9.9.9.9");
  b.device(device).vrf(kInvalidName).routesFor(routeB.prefix).push_back(routeB);
  a.merge(b);
  EXPECT_EQ(a.routeCount(), 2u);
}

TEST(FlowPathTest, DevicesVisitedAndLinkUse) {
  FlowPath path;
  const NameId a = Names::id("A"), b = Names::id("B"), c = Names::id("C");
  path.hops.push_back({a, b, {}, 1.0});
  path.hops.push_back({b, c, {}, 1.0});
  EXPECT_TRUE(path.usesLink(a, b));
  EXPECT_FALSE(path.usesLink(b, a));
  const auto visited = path.devicesVisited();
  EXPECT_EQ(visited.size(), 3u);
}

TEST(NamesTest, InterningIsStableAndBidirectional) {
  const NameId id1 = Names::id("some-router");
  const NameId id2 = Names::id("some-router");
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(Names::str(id1), "some-router");
  EXPECT_NE(Names::id("other"), id1);
}

}  // namespace
}  // namespace hoyan
