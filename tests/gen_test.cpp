// Generator invariants: address uniqueness, session symmetry, deterministic
// workloads, DCN scoping, and corpus/state sanity across spec sizes.
#include <gtest/gtest.h>

#include <set>

#include "gen/rcl_corpus.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "sim/route_sim.h"

namespace hoyan {
namespace {

class GenTest : public ::testing::TestWithParam<size_t> {
 protected:
  WanSpec spec() const {
    WanSpec s;
    s.regions = GetParam();
    return s;
  }
};

TEST_P(GenTest, LoopbacksAndInterfaceAddressesAreUnique) {
  const GeneratedWan wan = generateWan(spec());
  std::set<uint32_t> addresses;
  for (const auto& [name, device] : wan.topology.devices()) {
    EXPECT_TRUE(addresses.insert(device.loopback.v4Value()).second)
        << Names::str(name) << " loopback collides";
    for (const Interface& itf : device.interfaces)
      EXPECT_TRUE(addresses.insert(itf.address.v4Value()).second)
          << Names::str(name) << " interface address collides";
  }
}

TEST_P(GenTest, EverySessionIsSymmetricAndEstablishes) {
  const GeneratedWan wan = generateWan(spec());
  const NetworkModel model = wan.buildModel();
  EXPECT_TRUE(model.sessionProblems.empty())
      << (model.sessionProblems.empty() ? "" : model.sessionProblems.front());
  // Directed sessions come in pairs.
  EXPECT_EQ(model.sessions.size() % 2, 0u);
  size_t reversed = 0;
  for (const BgpSession& session : model.sessions)
    for (const BgpSession& other : model.sessions)
      if (other.local == session.peer && other.peer == session.local) {
        ++reversed;
        break;
      }
  EXPECT_EQ(reversed, model.sessions.size());
}

TEST_P(GenTest, DeviceCountMatchesSpecFormula) {
  const WanSpec s = spec();
  const GeneratedWan wan = generateWan(s);
  EXPECT_EQ(wan.topology.deviceCount(), s.deviceCount());
  EXPECT_EQ(wan.routeReflectors.size(), s.regions);
  EXPECT_EQ(wan.cores.size(), s.regions * s.coresPerRegion);
  EXPECT_EQ(wan.borders.size(), s.regions * s.bordersPerRegion);
  EXPECT_EQ(wan.externals.size(),
            s.regions * s.bordersPerRegion * s.ispsPerBorder);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GenTest, ::testing::Values(1, 2, 4, 6));

TEST(GenWorkloadTest, InputsAreDeterministic) {
  WanSpec spec;
  spec.regions = 2;
  const GeneratedWan wan = generateWan(spec);
  WorkloadSpec workload;
  workload.prefixesPerIsp = 8;
  const auto a = generateInputRoutes(wan, workload);
  const auto b = generateInputRoutes(wan, workload);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]) << i;
  const auto flowsA = generateFlows(wan, workload, 500);
  const auto flowsB = generateFlows(wan, workload, 500);
  ASSERT_EQ(flowsA.size(), flowsB.size());
  for (size_t i = 0; i < flowsA.size(); ++i) EXPECT_TRUE(flowsA[i] == flowsB[i]) << i;
}

TEST(GenWorkloadTest, AttrGroupsBoundEcCount) {
  WanSpec spec;
  spec.regions = 2;
  const GeneratedWan wan = generateWan(spec);
  const NetworkModel model = wan.buildModel();
  WorkloadSpec workload;
  workload.prefixesPerIsp = 32;
  workload.prefixesPerDc = 16;
  workload.attrGroupSize = 8;
  workload.v6Share = 0;
  const auto inputs = generateInputRoutes(wan, workload);
  EcStats stats;
  buildRouteEcs(model, inputs, &stats);
  // Reduction at least half the group size (policy signatures may split
  // groups whose prefixes match filters differently).
  EXPECT_GT(stats.reductionFactor(), 4.0);
}

TEST(GenWorkloadTest, FlowDestinationsAreAnnouncedPrefixes) {
  WanSpec spec;
  spec.regions = 2;
  const GeneratedWan wan = generateWan(spec);
  WorkloadSpec workload;
  workload.prefixesPerIsp = 8;
  workload.prefixesPerDc = 4;
  workload.v6Share = 0.5;  // Half the ISP slots are v6.
  const auto inputs = generateInputRoutes(wan, workload);
  PrefixTrie<char> announced;
  for (const InputRoute& input : inputs)
    if (input.route.prefix.family() == IpFamily::kV4)
      announced.insert(input.route.prefix, 1);
  for (const Flow& flow : generateFlows(wan, workload, 300))
    EXPECT_TRUE(announced.longestMatch(flow.dst).has_value()) << flow.str();
}

TEST(GenWorkloadTest, DcnCoresGetScopedTables) {
  WanSpec spec;
  spec.regions = 2;
  spec.dcnCoresPerDc = 2;
  const GeneratedWan wan = generateWan(spec);
  ASSERT_EQ(wan.dcnCores.size(), 8u);  // 2 regions x 2 DCs x 2 cores.
  const NetworkModel model = wan.buildModel();
  WorkloadSpec workload;
  workload.prefixesPerIsp = 8;
  workload.prefixesPerDc = 4;
  workload.prefixesPerDcnCore = 2;
  workload.v6Share = 0;
  const auto inputs = generateInputRoutes(wan, workload);
  RouteSimOptions options;
  options.includeLocalRoutes = true;
  const RouteSimResult result = simulateRoutes(model, inputs, options);
  // The DCN core sees DC-space routes but not the full ISP table (the DCGW's
  // DCN-OUT export policy scopes it).
  const DeviceRib* dcnRib = result.ribs.findDevice(wan.dcnCores[0]);
  ASSERT_NE(dcnRib, nullptr);
  const VrfRib* vrf = dcnRib->findVrf(kInvalidName);
  ASSERT_NE(vrf, nullptr);
  size_t ispRoutes = 0, dcRoutes = 0;
  for (const auto& [prefix, routes] : vrf->routes()) {
    if (Prefix::parse("100.0.0.0/8")->contains(prefix)) ++ispRoutes;
    if (Prefix::parse("20.0.0.0/8")->contains(prefix)) ++dcRoutes;
  }
  EXPECT_EQ(ispRoutes, 0u);
  EXPECT_GT(dcRoutes, 0u);
  // And DCN prefixes propagate up into the WAN.
  const DeviceRib* coreRib = result.ribs.findDevice(wan.cores[0]);
  const auto* dcnPrefix =
      coreRib->findVrf(kInvalidName)->find(*Prefix::parse("30.0.0.0/24"));
  ASSERT_NE(dcnPrefix, nullptr);
}

TEST(GenCorpusTest, CorpusIsDeterministicAndScoped) {
  WanSpec spec;
  spec.regions = 2;
  const GeneratedWan wan = generateWan(spec);
  const auto a = generateRclCorpus(wan, 30);
  const auto b = generateRclCorpus(wan, 30);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 30u);
}

}  // namespace
}  // namespace hoyan
