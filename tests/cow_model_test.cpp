// Copy-on-write worker-model tests: a NetworkModel sharing the base model's
// topology/config/address storage, degraded through a FailureOverlay and
// rebuildDerivedForFailures(), must be semantically identical to the serial
// oracle's deep-copy + setLinkState/failDevice + rebuildDerived() path — for
// every overlay shape — and must materialize O(impact) bytes, not O(model).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "proto/network_model.h"
#include "rcl/global_rib.h"
#include "sim/route_sim.h"
#include "test_fixtures.h"
#include "topo/topology.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

// Canonical rendering of the simulated global RIB: byte-identical fingerprints
// mean byte-identical verification inputs.
std::string ribFingerprint(const NetworkModel& model,
                           std::span<const InputRoute> inputs) {
  RouteSimOptions options;
  options.includeLocalRoutes = true;
  RouteSimResult sim = simulateRoutes(model, inputs, options);
  const rcl::GlobalRib rib = rcl::GlobalRib::fromNetworkRibs(sim.ribs);
  std::string out;
  for (const rcl::RibRow& row : rib.rows()) {
    out += row.str();
    out += '\n';
  }
  return out;
}

// The serial oracle's degraded model: fresh tables, physical link-state flips,
// full derived-state rebuild.
NetworkModel deepDegraded(const NetworkModel& base,
                          const std::vector<std::pair<NameId, NameId>>& links,
                          const std::vector<NameId>& devices) {
  NetworkModel degraded;
  degraded.topology = base.topology;
  degraded.configs = base.configs;
  for (const auto& [a, b] : links) degraded.topology.setLinkState(a, b, false);
  for (const NameId device : devices) degraded.topology.failDevice(device);
  degraded.rebuildDerived();
  return degraded;
}

// The sweep worker's degraded model: shared tables, overlay mask, partial
// rebuild.
NetworkModel cowDegraded(const NetworkModel& base, FailureOverlay& overlay) {
  NetworkModel degraded;
  degraded.topology = base.topology;
  degraded.configs = base.configs;
  degraded.addresses = base.addresses;
  overlay.apply(degraded.topology);
  degraded.rebuildDerivedForFailures();
  return degraded;
}

void expectEquivalent(const NetworkModel& deep, const NetworkModel& cow,
                      std::span<const InputRoute> inputs,
                      const std::string& label) {
  // Effective topology view.
  ASSERT_EQ(deep.topology.links().size(), cow.topology.links().size()) << label;
  for (size_t i = 0; i < deep.topology.links().size(); ++i)
    EXPECT_EQ(deep.topology.linkUp(i), cow.topology.linkUp(i)) << label << " link " << i;
  for (const auto& [name, device] : deep.topology.devices()) {
    (void)device;
    EXPECT_EQ(deep.topology.deviceActive(name), cow.topology.deviceActive(name))
        << label << " device " << Names::str(name);
    const auto deepAdj = deep.topology.adjacenciesOf(name);
    const auto cowAdj = cow.topology.adjacenciesOf(name);
    ASSERT_EQ(deepAdj.size(), cowAdj.size()) << label << " " << Names::str(name);
    for (size_t i = 0; i < deepAdj.size(); ++i) {
      EXPECT_EQ(deepAdj[i].neighbor, cowAdj[i].neighbor) << label;
      EXPECT_EQ(deepAdj[i].linkIndex, cowAdj[i].linkIndex) << label;
    }
  }
  // Derived state: session set and the simulated global RIB.
  ASSERT_EQ(deep.sessions.size(), cow.sessions.size()) << label;
  for (size_t i = 0; i < deep.sessions.size(); ++i) {
    EXPECT_EQ(deep.sessions[i].local, cow.sessions[i].local) << label << " session " << i;
    EXPECT_EQ(deep.sessions[i].peer, cow.sessions[i].peer) << label << " session " << i;
  }
  EXPECT_EQ(ribFingerprint(deep, inputs), ribFingerprint(cow, inputs)) << label;
}

class CowModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = buildSmallWan();
    // A parallel C1-C2 link so the parallel-link overlay shape exists.
    Device* c1 = net_.topology.findDevice(net_.c1);
    Device* c2 = net_.topology.findDevice(net_.c2);
    Interface itfA;
    itfA.name = Names::id("t-C1:par");
    itfA.address = *IpAddress::parse("172.22.0.1");
    itfA.prefixLength = 30;
    itfA.isisEnabled = true;
    itfA.isisCost = 10;
    c1->interfaces.push_back(itfA);
    Interface itfB;
    itfB.name = Names::id("t-C2:par");
    itfB.address = *IpAddress::parse("172.22.0.2");
    itfB.prefixLength = 30;
    itfB.isisEnabled = true;
    itfB.isisCost = 10;
    c2->interfaces.push_back(itfB);
    net_.topology.addLink(net_.c1, itfA.name, net_.c2, itfB.name);
    model_ = net_.model();
    inputs_ = {ispRoute(net_, "100.1.0.0/16")};
  }

  SmallWan net_;
  NetworkModel model_;
  std::vector<InputRoute> inputs_;
};

TEST_F(CowModelTest, CopySharesStorageUntilStructurallyWritten) {
  NetworkModel copy;
  copy.topology = model_.topology;
  copy.configs = model_.configs;
  copy.addresses = model_.addresses;
  EXPECT_TRUE(copy.topology.sharesStorageWith(model_.topology));
  EXPECT_TRUE(copy.configs.sharesStorageWith(model_.configs));
  EXPECT_TRUE(copy.addresses.sharesStorageWith(model_.addresses));

  // Masking is per instance: no detach, base unaffected.
  copy.topology.maskLinkDown(0);
  EXPECT_TRUE(copy.topology.sharesStorageWith(model_.topology));
  EXPECT_FALSE(copy.topology.linkUp(0));
  EXPECT_TRUE(model_.topology.linkUp(0));
  copy.topology.unmaskLink(0);

  // Device failure is per instance too.
  copy.topology.failDevice(net_.c1);
  EXPECT_TRUE(copy.topology.sharesStorageWith(model_.topology));
  EXPECT_FALSE(copy.topology.deviceActive(net_.c1));
  EXPECT_TRUE(model_.topology.deviceActive(net_.c1));
  copy.topology.restoreDevice(net_.c1);

  // A structural write detaches the written table only — and never the base.
  copy.topology.setLinkState(net_.c1, net_.c2, false);
  EXPECT_FALSE(copy.topology.sharesStorageWith(model_.topology));
  EXPECT_TRUE(model_.topology.linkUp(0));
  copy.configs.mutableDevices();
  EXPECT_FALSE(copy.configs.sharesStorageWith(model_.configs));
}

TEST_F(CowModelTest, OverlayShapesMatchDeepCopyModels) {
  struct Shape {
    std::string label;
    std::vector<std::pair<NameId, NameId>> links;
    std::vector<NameId> devices;
  };
  const std::vector<Shape> shapes = {
      {"links-only", {{net_.br1, net_.c1}}, {}},
      {"parallel-links", {{net_.c1, net_.c2}}, {}},
      {"two-links", {{net_.c1, net_.rr1}, {net_.br1, net_.isp1}}, {}},
      {"device-only", {}, {net_.rr1}},
      {"mixed", {{net_.c1, net_.c2}}, {net_.br1}},
      {"external-device", {}, {net_.isp1}},
  };
  for (const Shape& shape : shapes) {
    const NetworkModel deep = deepDegraded(model_, shape.links, shape.devices);
    FailureOverlay overlay;
    for (const auto& [a, b] : shape.links) overlay.addLink(a, b);
    for (const NameId device : shape.devices) overlay.addDevice(device);
    NetworkModel cow = cowDegraded(model_, overlay);
    EXPECT_TRUE(cow.topology.sharesStorageWith(model_.topology)) << shape.label;
    EXPECT_TRUE(cow.addresses.sharesStorageWith(model_.addresses)) << shape.label;
    expectEquivalent(deep, cow, inputs_, shape.label);
    overlay.revert(cow.topology);
  }
}

TEST_F(CowModelTest, OverlayOverPreexistingFailuresMatchesDeepCopy) {
  // Base already has a down link and a failed device; the overlay adds more,
  // including elements already down (which it must leave untouched).
  NetworkModel base = model_;
  base.topology.setLinkState(net_.c2, net_.rr1, false);
  base.topology.failDevice(net_.isp1);
  base.rebuildDerived();

  const NetworkModel deep =
      deepDegraded(base, {{net_.c1, net_.c2}, {net_.c2, net_.rr1}}, {net_.isp1, net_.br1});
  FailureOverlay overlay;
  overlay.addLink(net_.c1, net_.c2);
  overlay.addLink(net_.c2, net_.rr1);  // Already down.
  overlay.addDevice(net_.isp1);        // Already failed.
  overlay.addDevice(net_.br1);
  NetworkModel cow = cowDegraded(base, overlay);
  expectEquivalent(deep, cow, inputs_, "preexisting");

  // Revert restores exactly the pre-overlay degraded state.
  overlay.revert(cow.topology);
  cow.rebuildDerivedForFailures();
  expectEquivalent(base, cow, inputs_, "preexisting-revert");
}

TEST_F(CowModelTest, RevertRestoresBaseIdentity) {
  FailureOverlay overlay;
  overlay.addLink(net_.br1, net_.c1);
  overlay.addDevice(net_.rr1);
  NetworkModel cow = cowDegraded(model_, overlay);
  EXPECT_GT(cow.topology.overlayMaskedLinks(), 0u);

  overlay.revert(cow.topology);
  cow.rebuildDerivedForFailures();
  EXPECT_EQ(cow.topology.overlayMaskedLinks(), 0u);
  EXPECT_TRUE(cow.topology.sharesStorageWith(model_.topology));
  expectEquivalent(model_, cow, inputs_, "revert");

  // The overlay is reusable after revert (the worker loop reuses one model).
  overlay.apply(cow.topology);
  cow.rebuildDerivedForFailures();
  const NetworkModel deep = deepDegraded(model_, {{net_.br1, net_.c1}}, {net_.rr1});
  expectEquivalent(deep, cow, inputs_, "reuse");
  overlay.revert(cow.topology);
}

TEST_F(CowModelTest, AddressIndexIsFailureIndependent) {
  // Ownership is inventory-derived: the degraded model keeps the base index
  // (shared storage) and it still resolves addresses of failed elements.
  FailureOverlay overlay;
  overlay.addDevice(net_.br1);
  overlay.addLink(net_.c1, net_.c2);
  NetworkModel cow = cowDegraded(model_, overlay);
  ASSERT_TRUE(cow.addresses.sharesStorageWith(model_.addresses));
  const Device* border = model_.topology.findDevice(net_.br1);
  EXPECT_EQ(cow.addresses.owner(border->loopback), net_.br1);
  // Rebuilding from the masked topology yields the same ownership.
  const AddressIndex rebuilt = AddressIndex::build(cow.topology);
  EXPECT_EQ(rebuilt.owner(border->loopback), net_.br1);
  EXPECT_EQ(rebuilt.owner(net_.ispLinkAddr), cow.addresses.owner(net_.ispLinkAddr));
  overlay.revert(cow.topology);
}

TEST(CowMemoryTest, MaterializedBytesScaleWithImpactNotModel) {
  WanSpec smallSpec;
  smallSpec.regions = 1;
  smallSpec.coresPerRegion = 2;
  smallSpec.bordersPerRegion = 1;
  smallSpec.dcsPerRegion = 1;
  smallSpec.ispsPerBorder = 1;
  WanSpec largeSpec;
  largeSpec.regions = 4;
  largeSpec.coresPerRegion = 3;
  largeSpec.bordersPerRegion = 2;
  largeSpec.dcsPerRegion = 2;
  largeSpec.ispsPerBorder = 2;

  const auto workerBytes = [](const WanSpec& spec) {
    const GeneratedWan wan = generateWan(spec);
    const NetworkModel base = wan.buildModel();
    NetworkModel worker;
    worker.topology = base.topology;
    worker.configs = base.configs;
    worker.addresses = base.addresses;
    FailureOverlay overlay;
    overlay.addLink(wan.cores[0], wan.cores[1]);
    overlay.apply(worker.topology);
    worker.rebuildDerivedForFailures();
    const size_t materialized = worker.materializedBytes(base);
    const size_t deep = base.approxDeepBytes();
    const size_t topoOnly = worker.topology.materializedBytes(base.topology);
    overlay.revert(worker.topology);
    return std::tuple{materialized, deep, topoOnly};
  };

  const auto [smallMat, smallDeep, smallTopo] = workerBytes(smallSpec);
  const auto [largeMat, largeDeep, largeTopo] = workerBytes(largeSpec);

  // CoW sharing: a worker materializes well under half of a deep copy.
  EXPECT_LT(smallMat * 2, smallDeep);
  EXPECT_LT(largeMat * 2, largeDeep);

  // The topology overlay itself is O(impact): a one-link overlay costs the
  // same few bytes on a 7-device WAN as on a 50+-device WAN, while the deep
  // model size keeps growing.
  EXPECT_GT(largeDeep, smallDeep * 2);
  EXPECT_LE(largeTopo, 256u);
  EXPECT_LE(smallTopo, 256u);

  // Shape check: a bigger overlay materializes more mask bytes.
  const GeneratedWan wan = generateWan(largeSpec);
  const NetworkModel base = wan.buildModel();
  Topology oneLink = base.topology;
  oneLink.maskLinkDown(0);
  Topology manyLinks = base.topology;
  for (size_t i = 0; i < 8; ++i) manyLinks.maskLinkDown(i);
  EXPECT_GE(manyLinks.materializedBytes(base.topology),
            oneLink.materializedBytes(base.topology));
}

}  // namespace
}  // namespace hoyan
