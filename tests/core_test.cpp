// Tests for the Hoyan facade: config-text construction, change-plan command
// application, preprocessing, verification plumbing, audits, RCL corpus.
#include <gtest/gtest.h>

#include "config/printer.h"
#include "core/hoyan.h"
#include "gen/rcl_corpus.h"
#include "gen/wan_gen.h"
#include "gen/workload_gen.h"
#include "rcl/parser.h"
#include "test_fixtures.h"

namespace hoyan {
namespace {

using testing::buildSmallWan;
using testing::ispRoute;
using testing::SmallWan;

TEST(ChangeCommandsTest, SectionsRouteToTargetDevices) {
  SmallWan net = buildSmallWan();
  const auto errors = applyChangeCommands(net.topology, net.configs,
                                          "device t-C1\n"
                                          "static-route 60.0.0.0/8 discard\n"
                                          "device t-C2\n"
                                          "static-route 61.0.0.0/8 discard\n");
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(net.configs.device(net.c1).staticRoutes.size(), 1u);
  EXPECT_EQ(net.configs.device(net.c2).staticRoutes.size(), 1u);
  EXPECT_EQ(net.configs.device(net.c1).staticRoutes[0].prefix.str(), "60.0.0.0/8");
}

TEST(ChangeCommandsTest, UnknownDeviceAndStraySectionsError) {
  SmallWan net = buildSmallWan();
  const auto errors = applyChangeCommands(net.topology, net.configs,
                                          "static-route 60.0.0.0/8 discard\n"
                                          "device t-NOPE\n"
                                          "static-route 61.0.0.0/8 discard\n");
  EXPECT_EQ(errors.size(), 2u);  // Command outside a section + unknown device.
}

TEST(ChangeCommandsTest, ErrorsCarrySectionLineNumbers) {
  SmallWan net = buildSmallWan();
  const auto errors = applyChangeCommands(net.topology, net.configs,
                                          "device t-C1\n"
                                          "static-route 60.0.0.0/8 discard\n"
                                          "not-a-command\n");
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].line, 3);
}

class HoyanFacadeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = buildSmallWan();
    hoyan_ = std::make_unique<Hoyan>(net_.topology, net_.configs);
    hoyan_->setInputRoutes({ispRoute(net_, "100.1.0.0/16"),
                            ispRoute(net_, "100.2.0.0/16")});
    Flow flow;
    flow.ingressDevice = net_.c2;
    flow.src = *IpAddress::parse("20.0.0.1");
    flow.dst = *IpAddress::parse("100.1.2.3");
    flow.dstPort = 80;
    flow.volumeBps = 1000;
    hoyan_->setInputFlows({flow});
    hoyan_->preprocess();
  }

  SmallWan net_;
  std::unique_ptr<Hoyan> hoyan_;
};

TEST_F(HoyanFacadeTest, PreprocessBuildsBaseState) {
  EXPECT_GT(hoyan_->baseRibs().routeCount(), 0u);
  EXPECT_GT(hoyan_->baseGlobalRib().size(), 0u);
  EXPECT_GT(hoyan_->baseLinkLoads().size(), 0u);
}

TEST_F(HoyanFacadeTest, VerifyRequiresPreprocess) {
  Hoyan fresh(net_.topology, net_.configs);
  EXPECT_THROW(fresh.verifyChange({}, {}), std::logic_error);
}

TEST_F(HoyanFacadeTest, NoOpChangeSatisfiesUnchangedIntent) {
  ChangePlan plan;
  IntentSet intents;
  intents.rclIntents = {"PRE = POST"};
  const ChangeVerificationResult result = hoyan_->verifyChange(plan, intents);
  EXPECT_TRUE(result.satisfied()) << result.report();
}

TEST_F(HoyanFacadeTest, CommandErrorFailsVerification) {
  ChangePlan plan;
  plan.commands = "device t-BR1\nbroken-command\n";
  IntentSet intents;
  const ChangeVerificationResult result = hoyan_->verifyChange(plan, intents);
  EXPECT_FALSE(result.satisfied());
  ASSERT_EQ(result.commandErrors.size(), 1u);
}

TEST_F(HoyanFacadeTest, ViolationProducesCounterexampleRoutes) {
  ChangePlan plan;
  plan.commands = "device t-BR1\n"
                  "route-policy ISP-BLOCK node 10 deny\n"
                  "router bgp 64512\n"
                  " neighbor " + net_.ispLinkAddr.str() + " import-policy ISP-BLOCK\n";
  IntentSet intents;
  intents.rclIntents = {"PRE = POST"};
  const ChangeVerificationResult result = hoyan_->verifyChange(plan, intents);
  EXPECT_FALSE(result.satisfied());
  ASSERT_FALSE(result.rclOutcomes.empty());
  const auto& violations = result.rclOutcomes[0].result.violations;
  ASSERT_FALSE(violations.empty());
  EXPECT_FALSE(violations[0].exampleRows.empty());
}

TEST_F(HoyanFacadeTest, AuditTasksRunOnBaseRibs) {
  const auto outcomes = hoyan_->runAuditTasks({
      "POST |> count() >= 1",                       // Holds.
      "POST || prefix = 100.1.0.0/16 |> distCnt(device) >= 4",  // Holds.
      "POST || prefix = 55.0.0.0/8 |> count() >= 1",            // Violated.
  });
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].result.satisfied);
  EXPECT_TRUE(outcomes[1].result.satisfied);
  EXPECT_FALSE(outcomes[2].result.satisfied);
}

TEST_F(HoyanFacadeTest, FaultToleranceFacade) {
  const KFailureResult result = hoyan_->checkFaultTolerance(
      [&](const NetworkModel& model, const NetworkRibs& ribs) {
        return dataPlaneReachable(model, ribs, net_.c2,
                                  *IpAddress::parse("100.1.2.3"));
      },
      KFailureOptions{.k = 1, .maxCounterexamples = 3});
  EXPECT_FALSE(result.holds());  // The single-homed ISP link is a SPOF.
}

TEST(HoyanFromTextTest, BuildsFromRenderedConfigs) {
  WanSpec spec;
  spec.regions = 2;
  const GeneratedWan wan = generateWan(spec);
  std::vector<std::string> texts;
  for (const auto& [name, config] : wan.configs.devices())
    texts.push_back(printDeviceConfig(config, wan.topology.findDevice(name)));
  // Strip configs: keep only topology skeleton (devices/links); interfaces
  // come back from the parsed text.
  Topology bare = wan.topology;
  Hoyan hoyan = Hoyan::fromConfigTexts(std::move(bare), texts);
  WorkloadSpec workload;
  workload.prefixesPerIsp = 4;
  workload.prefixesPerDc = 2;
  workload.v6Share = 0;
  hoyan.setInputRoutes(generateInputRoutes(wan, workload));
  hoyan.preprocess();
  EXPECT_GT(hoyan.baseRibs().routeCount(), 0u);
  // The text-built model derives the same session count as the direct model.
  EXPECT_EQ(hoyan.baseModel().sessions.size(), wan.buildModel().sessions.size());
}

TEST(RclCorpusTest, FiftySpecsParseWithPaperSizeProfile) {
  WanSpec spec;
  spec.regions = 3;
  const GeneratedWan wan = generateWan(spec);
  const auto corpus = generateRclCorpus(wan, 50);
  ASSERT_EQ(corpus.size(), 50u);
  size_t below15 = 0;
  for (const std::string& specText : corpus) {
    const rcl::ParseOutcome outcome = rcl::parseIntent(specText);
    ASSERT_TRUE(outcome.ok()) << specText << ": " << outcome.error;
    if (outcome.intent->internalNodes() < 15) ++below15;
  }
  // Fig. 8 (left): > 90% of specifications are smaller than 15.
  EXPECT_GE(below15 * 100, 90 * corpus.size());
}

}  // namespace
}  // namespace hoyan
